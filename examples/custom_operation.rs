//! Define a custom operation in the DSL, learn its fingerprint
//! incrementally, and let GRETEL diagnose a fault in it.
//!
//! ```sh
//! cargo run --release --example custom_operation
//! ```
//!
//! This exercises two of the paper's limitations head-on: Limitation 4
//! (coverage is predicated on the test suite — here we *add* an operation
//! Tempest does not cover) and Limitation 7 (new operations require new
//! fingerprints — learned incrementally, no retraining).

use gretel::model::{parse_dsl, OpInstanceId};
use gretel::prelude::*;

const CUSTOM_OPS: &str = r#"
# A composite workload our integration suite does not cover:
# boot a VM, tag it, then snapshot it to a new image.
operation compute.boot_tag_snapshot compute
  horizon -> nova: POST /v2.1/servers [medium, 1024b]
  nova -> nova-compute: rpc build_and_run_instance [boot]
  nova -> neutron: GET /v2.0/networks.json
  nova -> neutron: POST /v2.0/ports.json [medium]
  horizon -> nova: POST /v2.1/servers/{id}/metadata
  horizon -> nova: POST /v2.1/servers/{id}/action [medium]
  nova -> nova-compute: rpc snapshot_instance [boot]
  nova-compute -> glance: POST /v2/images [medium]
  nova-compute -> glance: PUT /v2/images/{id}/file [slow, 1048576b]
"#;

fn main() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());

    // Start from an existing library of canonical operations...
    let mut specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
    let (mut library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &specs, &deployment, 3, 7);
    println!("baseline library: {} fingerprints", library.len());

    // ...then add the DSL-defined operation incrementally (Limitation 7).
    let custom = parse_dsl(&catalog, CUSTOM_OPS, OpSpecId(2)).expect("DSL parses");
    library.extend_characterize(&custom, &deployment, 3, 11);
    specs.extend(custom);
    println!(
        "extended library: {} fingerprints; new regex: {}",
        library.len(),
        library.get(OpSpecId(2)).regex_string()
    );

    // Break the custom operation: the snapshot upload to Glance fails.
    let put_file = catalog.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: put_file,
        scope: FaultScope::Instance(OpInstanceId(2)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 413, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog, &deployment, &plan, RunConfig::default()).run(&refs);

    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    for d in &diagnoses {
        print!("{}", d.render(&specs));
    }
    let hit = diagnoses.iter().any(|d| d.matched.contains(&OpSpecId(2)));
    assert!(hit, "the custom operation is identified");
    println!("\nGRETEL identified the DSL-defined operation as the failed task.");
}

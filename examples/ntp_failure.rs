//! §7.2.4 — NTP failure: the root cause is upstream of the error.
//!
//! ```sh
//! cargo run --release --example ntp_failure
//! ```
//!
//! `cinder list` fails with "Unable to establish connection to Keystone";
//! Keystone's logs are clean and Cinder's only show a timeout. GRETEL
//! sees the 401 relayed from Keystone, finds nothing wrong on the error
//! nodes' resources, and — expanding the search to the other nodes of the
//! operation (Algorithm 3's second pass) — finds the stopped NTP agent on
//! the Cinder host.

use gretel::model::Dependency;
use gretel::prelude::*;
use gretel::sim::scenario::ntp_failure;

fn main() {
    let catalog = Catalog::openstack();
    let scenario = ntp_failure(&catalog, 42, 6);
    println!("{}\n", scenario.description);

    let (library, _) = FingerprintLibrary::characterize(
        catalog.clone(),
        &scenario.specs,
        &scenario.deployment,
        3,
        7,
    );

    let exec = scenario.run(catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(library.fp_max(), p_rate, 2.0);
    let mut analyzer = Analyzer::new(&library, cfg).with_rca(RcaContext {
        deployment: &scenario.deployment,
        telemetry: &telemetry,
        specs: &scenario.specs,
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    for d in &diagnoses {
        print!("{}", d.render(&scenario.specs));
    }

    let ntp_found = diagnoses
        .iter()
        .flat_map(|d| &d.root_causes)
        .any(|rc| matches!(rc.cause, CauseKind::Dependency(Dependency::NtpAgent)));
    assert!(ntp_found, "stopped NTP agent identified");
    println!(
        "\nroot cause confirmed: stopped NTP agent on the Cinder host — found by \
         expanding beyond the error nodes (paper §7.2.4)"
    );
}

//! Capture simulated control traffic to a pcap-style file and read it
//! back — the `gretel-netcap` substrate in isolation.
//!
//! ```sh
//! cargo run --release --example capture_to_pcap
//! ```

use gretel::netcap::{capture_and_merge, pcap};
use gretel::prelude::*;

fn main() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());
    let specs =
        [wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &FaultPlan::none(), RunConfig::default())
        .run(&refs);

    // Per-node egress agents capture and the receiver merges.
    let nodes: Vec<_> = deployment.nodes().iter().map(|n| n.id).collect();
    let (merged, wire_bytes) =
        capture_and_merge(&nodes, &exec.messages).expect("agent frames decode");
    println!(
        "captured {} relevant messages ({} wire bytes) across {} agents",
        merged.len(),
        wire_bytes,
        nodes.len()
    );

    // Persist to a pcap-style dump and read it back.
    let path = std::env::temp_dir().join("gretel-capture.pcap");
    let mut file = std::fs::File::create(&path).expect("create pcap");
    pcap::write_capture(&mut file, &merged).expect("write pcap");
    drop(file);

    let mut file = std::fs::File::open(&path).expect("open pcap");
    let restored = pcap::read_capture(&mut file).expect("read pcap");
    assert_eq!(restored, merged, "pcap round-trip is lossless");
    println!(
        "wrote and re-read {} records via {} — lossless",
        restored.len(),
        path.display()
    );

    for m in restored.iter().take(8) {
        println!("  {m}");
    }
    std::fs::remove_file(&path).ok();
}

//! §3.1.3 — Multiple parallel operations: find the one that failed.
//!
//! ```sh
//! cargo run --release --example parallel_operations
//! ```
//!
//! Sixty concurrent operations (a realistic mix) run at once; exactly one
//! VM create fails. GRETEL pinpoints the faulty operation from its
//! snapshot in sub-second stream time; HANSEL, run on the same capture,
//! stitches a chain through shared identifiers and sits on the report for
//! its 30-second bucket window.

use gretel::hansel::{Hansel, HanselConfig};
use gretel::model::OpInstanceId;
use gretel::prelude::*;

fn main() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());

    // A mixed fleet: instance 0 is the one that will fail.
    let mut specs: Vec<OperationSpec> = Vec::new();
    for i in 0..60u16 {
        let mut s = match i % 4 {
            0 => wf.vm_create_spec(OpSpecId(i)),
            1 => wf.image_upload_spec(OpSpecId(i)),
            2 => wf.cinder_list_spec(OpSpecId(i)),
            _ => wf.vm_create_spec(OpSpecId(i)),
        };
        s.id = OpSpecId(i);
        s.name = format!("{}#{}", s.name, i);
        specs.push(s);
    }
    // Library over the distinct operation *kinds*.
    let kinds = vec![
        wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2)),
    ];
    let (library, _) = FingerprintLibrary::characterize(catalog.clone(), &kinds, &deployment, 3, 7);

    let ports_post = catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: ports_post,
        scope: FaultScope::Instance(OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 500, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &plan, RunConfig::default()).run(&refs);
    let failed = exec.outcomes.iter().filter(|o| o.aborted).count();
    println!(
        "{} concurrent operations, {} failed, {} messages captured",
        refs.len(),
        failed,
        exec.messages.len()
    );

    // GRETEL.
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let auto = GretelConfig::auto(library.fp_max(), p_rate, 2.0);
    // Never go below the paper's default window.
    let cfg = GretelConfig { alpha: auto.alpha.max(768), ..auto };
    let mut analyzer = Analyzer::new(&library, cfg);
    let mut gretel_latency_us: Option<u64> = None;
    let mut hit = false;
    for m in &exec.messages {
        for d in analyzer.process(m) {
            if matches!(d.kind, FaultKind::Operational { .. }) && gretel_latency_us.is_none() {
                gretel_latency_us = Some(m.ts_us.saturating_sub(d.ts));
                hit |= d.matched.contains(&OpSpecId(0));
                println!("\nGRETEL diagnosis:");
                print!("{}", d.render(&kinds));
            }
        }
    }
    for d in analyzer.finish() {
        if matches!(d.kind, FaultKind::Operational { .. }) && gretel_latency_us.is_none() {
            hit |= d.matched.contains(&OpSpecId(0));
            println!("\nGRETEL diagnosis (at stream end):");
            print!("{}", d.render(&kinds));
        }
    }
    assert!(hit, "GRETEL identified the failed VM create among 60 parallel ops");

    // HANSEL on the same capture.
    let mut hansel = Hansel::new(HanselConfig::default());
    let mut reports = Vec::new();
    for m in &exec.messages {
        reports.extend(hansel.process(m));
    }
    reports.extend(hansel.finish());
    if let Some(r) = reports.first() {
        println!(
            "\nHANSEL: chain of {} messages, reported {:.1}s after the error \
             (bucket window)",
            r.chain.len(),
            r.latency_us() as f64 / 1e6
        );
    }
    if let Some(lat) = gretel_latency_us {
        println!("GRETEL: named the operation {:.2}s after the error", lat as f64 / 1e6);
    }
}

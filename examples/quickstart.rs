//! Quickstart: learn fingerprints, break something, let GRETEL find it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper end to end:
//! 1. **Characterize** (offline, §7.1): run each operation in isolation on
//!    the simulated deployment and learn its operational fingerprint.
//! 2. **Break** something: inject an HTTP 500 into Neutron's port-create
//!    API for one VM-create instance among concurrent operations.
//! 3. **Analyze** (online, §5): stream the captured traffic through
//!    GRETEL; it detects the error, freezes a snapshot, identifies the
//!    failed high-level operation, and runs root cause analysis.

use gretel::prelude::*;
use gretel_model::OpInstanceId;

fn main() {
    // ---- 1. Offline characterization -----------------------------------
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());

    // A small operation library: three canonical administrative tasks.
    let specs = vec![
        wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2)),
    ];
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &specs, &deployment, 3, 7);
    println!("learned {} fingerprints (largest: {} atoms)", library.len(), library.fp_max());
    for fp in library.iter() {
        println!("  {} -> {}", specs[fp.op.index()].name, fp.regex_string());
    }

    // ---- 2. Break something --------------------------------------------
    // The paper's running example: POST /v2.0/ports.json fails while a VM
    // is being created (step 6 of §2.1).
    let ports_post = catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: ports_post,
        scope: FaultScope::Instance(OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 500, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &plan, RunConfig::default()).run(&refs);
    println!(
        "\nsimulated {} messages across {} concurrent operations",
        exec.messages.len(),
        refs.len()
    );

    // ---- 3. Online analysis --------------------------------------------
    let telemetry = TelemetryStore::from_execution(&exec);
    // The paper's default window (α = 768) comfortably covers this small
    // run; `GretelConfig::auto` would derive α from the observed packet
    // rate instead (see the bench binaries).
    let cfg = GretelConfig::default();
    let mut analyzer = Analyzer::new(&library, cfg).with_rca(RcaContext {
        deployment: &deployment,
        telemetry: &telemetry,
        specs: &specs,
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    println!("\n{} diagnosis/es:", diagnoses.len());
    for d in &diagnoses {
        print!("{}", d.render(&specs));
    }
    assert!(
        diagnoses.iter().any(|d| d.matched.contains(&OpSpecId(0))),
        "GRETEL identifies the failed VM create"
    );
    println!("\nGRETEL correctly identified the failed operation: {}", specs[0].name);
}

//! The distributed monitoring pipeline (paper Fig 3), threaded.
//!
//! ```sh
//! cargo run --release --example threaded_pipeline
//! ```
//!
//! One capture-agent thread per node encodes its egress traffic into
//! frames; the event receiver k-way-merges the agent streams back into
//! one ordered stream and drives the analyzer — the deployment shape the
//! paper's Bro + Broccoli + analyzer service has.

use gretel::core::run_service;
use gretel::model::OpInstanceId;
use gretel::prelude::*;

fn main() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());

    // Twenty concurrent operations; one of them will fail.
    let mut specs: Vec<OperationSpec> = Vec::new();
    for i in 0..20u16 {
        let mut s = match i % 3 {
            0 => wf.vm_create_spec(OpSpecId(i)),
            1 => wf.image_upload_spec(OpSpecId(i)),
            _ => wf.cinder_list_spec(OpSpecId(i)),
        };
        s.id = OpSpecId(i);
        specs.push(s);
    }
    let kinds = vec![
        wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2)),
    ];
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &kinds, &deployment, 3, 7);

    let ports_post = catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: ports_post,
        scope: FaultScope::Instance(OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 500, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog, &deployment, &plan, RunConfig::default()).run(&refs);

    // Run the Fig-3 pipeline: 7 agent threads -> merge -> analyzer.
    let nodes: Vec<_> = deployment.nodes().iter().map(|n| n.id).collect();
    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let (diagnoses, svc, stats) = run_service(&mut analyzer, &nodes, &exec.messages, 256);

    println!(
        "{} agents shipped {} frames ({} KB) to the analyzer; {} messages processed",
        nodes.len(),
        svc.frames,
        svc.bytes / 1024,
        stats.messages
    );
    println!("{} diagnosis/es:", diagnoses.len());
    for d in &diagnoses {
        print!("{}", d.render(&kinds));
    }
    assert!(
        diagnoses.iter().any(|d| d.matched.contains(&OpSpecId(0))),
        "the failed VM create is identified through the threaded pipeline"
    );
    println!("\nthreaded pipeline reached the same diagnosis as inline analysis.");
}

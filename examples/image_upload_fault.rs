//! §7.2.1 — Failed image uploads, end to end.
//!
//! ```sh
//! cargo run --release --example image_upload_fault
//! ```
//!
//! Horizon shows "Unable to create new image"; the Glance logs are empty.
//! GRETEL sees the REST 413 on `PUT /v2/images/{id}/file`, narrows the
//! fault to the image-upload operation, and root cause analysis finds the
//! nearly-full disk on the Glance server.

use gretel::prelude::*;
use gretel::sim::scenario::failed_image_upload;

fn main() {
    let catalog = Catalog::openstack();
    let scenario = failed_image_upload(&catalog, 42, 6);
    println!("{}\n", scenario.description);

    // Learn fingerprints for the operations this deployment runs.
    let (library, _) = FingerprintLibrary::characterize(
        catalog.clone(),
        &scenario.specs,
        &scenario.deployment,
        3,
        7,
    );

    // Run the scenario and analyze the captured traffic + telemetry.
    let exec = scenario.run(catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(library.fp_max(), p_rate, 2.0);
    let mut analyzer = Analyzer::new(&library, cfg).with_rca(RcaContext {
        deployment: &scenario.deployment,
        telemetry: &telemetry,
        specs: &scenario.specs,
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    for d in &diagnoses {
        print!("{}", d.render(&scenario.specs));
    }

    let found_disk = diagnoses.iter().flat_map(|d| &d.root_causes).any(|rc| {
        matches!(rc.cause, CauseKind::Resource(gretel::sim::ResourceKind::DiskFreeGb))
    });
    assert!(found_disk, "root cause analysis finds the full disk");
    println!("\nroot cause confirmed: low free disk on the Glance server (paper §7.2.1)");
}

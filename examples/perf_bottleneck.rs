//! §3.1.2 / §7.2.2 — API bottleneck: a pure performance fault.
//!
//! ```sh
//! cargo run --release --example perf_bottleneck
//! ```
//!
//! Creating many VMs in parallel succeeds but slows down; log analysis
//! shows nothing (there is no error), and error-triggered tools are never
//! invoked. GRETEL's level-shift detector flags the latency anomaly on
//! the Neutron APIs, fingerprints identify the operation as VM creation,
//! and root cause analysis confirms the CPU surge on the Neutron server.

use gretel::prelude::*;
use gretel::sim::scenario::neutron_api_latency_with_window;
use gretel::sim::secs;
use gretel::telemetry::LevelShiftConfig;

fn main() {
    let catalog = Catalog::openstack();
    let scenario = neutron_api_latency_with_window(&catalog, 42, 120, secs(40), secs(90));
    println!("{}\n", scenario.description);

    // One spec kind (VM create) — learn its fingerprint once.
    let (library, _) = FingerprintLibrary::characterize(
        catalog.clone(),
        &scenario.specs[..1],
        &scenario.deployment,
        3,
        7,
    );

    let exec = scenario.run(catalog.clone());
    // No operation aborted: this is not an operational fault.
    assert!(exec.outcomes.iter().all(|o| !o.aborted));
    println!("all {} operations completed (slowly) — no error anywhere", exec.outcomes.len());

    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(library.fp_max(), p_rate, 2.0);
    let ls = LevelShiftConfig { baseline_window: 20, test_window: 4, ..Default::default() };
    let mut analyzer = gretel::core::Analyzer::with_perf_config(&library, cfg, ls, true)
        .with_rca(RcaContext {
            deployment: &scenario.deployment,
            telemetry: &telemetry,
            specs: &scenario.specs,
        });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    let perf: Vec<_> = diagnoses
        .iter()
        .filter(|d| matches!(d.kind, FaultKind::Performance { .. }))
        .collect();
    println!("\n{} performance diagnoses; first:", perf.len());
    if let Some(d) = perf.first() {
        print!("{}", d.render(&scenario.specs));
    }

    let cpu_found = perf.iter().flat_map(|d| &d.root_causes).any(|rc| {
        matches!(rc.cause, CauseKind::Resource(gretel::sim::ResourceKind::CpuPercent))
    });
    assert!(!perf.is_empty(), "latency anomaly detected");
    assert!(cpu_found, "CPU surge identified");
    println!("\nroot cause confirmed: CPU surge on the Neutron server (paper §7.2.2)");
}

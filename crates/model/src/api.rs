//! API definitions: the finite alphabet of OpenStack interactions.
//!
//! GRETEL's key observation (paper §5) is that OpenStack components interact
//! through a *finite* set of REST and RPC interfaces, so every high-level
//! administrative task is a sequence over a finite alphabet. Each API is
//! assigned a dense [`ApiId`] which maps one-to-one onto a Unicode symbol
//! (see [`crate::symbol`]) for regular-expression matching.

use crate::service::Service;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of an API in the [catalog](crate::catalog::Catalog).
///
/// Ids are stable for a given catalog build and index directly into its
/// definition table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ApiId(pub u16);

impl ApiId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ApiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "api{}", self.0)
    }
}

/// HTTP method of a REST API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are self-describing HTTP verbs
pub enum HttpMethod {
    Get,
    Post,
    Put,
    Delete,
    Patch,
    Head,
}

impl HttpMethod {
    /// Whether this method mutates state. GRETEL prioritises state-change
    /// APIs when generating and matching fingerprints (paper §5.3.1).
    pub fn is_state_change(self) -> bool {
        matches!(self, HttpMethod::Post | HttpMethod::Put | HttpMethod::Delete | HttpMethod::Patch)
    }

    /// Whether repeat invocations for the same URI are idempotent and
    /// therefore candidates for noise pruning (paper §5, "repeat occurrences
    /// of idempotent REST actions for a specific URI").
    pub fn is_idempotent_read(self) -> bool {
        matches!(self, HttpMethod::Get | HttpMethod::Head)
    }

    /// Canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
            HttpMethod::Patch => "PATCH",
            HttpMethod::Head => "HEAD",
        }
    }
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How an RPC is invoked through the broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RpcStyle {
    /// Request/response: the caller blocks for a reply (oslo.messaging
    /// `call`). Latency is measured by pairing on the message identifier.
    Call,
    /// Fire-and-forget (oslo.messaging `cast`). No response message.
    Cast,
}

/// The kind of interface an API belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiKind {
    /// A REST endpoint: method plus URI template (`{id}` placeholders for
    /// path parameters).
    Rest {
        /// HTTP verb.
        method: HttpMethod,
        /// URI template with `{param}` placeholders.
        uri: String,
    },
    /// An RPC method routed through RabbitMQ.
    Rpc {
        /// oslo.messaging method name.
        method: String,
        /// Call (request/reply) or cast (one-way).
        style: RpcStyle,
    },
}

impl ApiKind {
    /// See [`ApiDef::is_state_change`].
    pub fn is_state_change(&self) -> bool {
        match self {
            // All RPCs are treated as state-change-priority symbols
            // (paper §5.3.1: "RPCs and POST, PUT and DELETE REST calls").
            ApiKind::Rpc { .. } => true,
            ApiKind::Rest { method, .. } => method.is_state_change(),
        }
    }

    /// Whether this is an RPC interface.
    pub fn is_rpc(&self) -> bool {
        matches!(self, ApiKind::Rpc { .. })
    }
}

/// Why a message stream element is uninteresting for fingerprinting.
///
/// Routine chatter "does not contribute in any meaningful way to segregate
/// user-level operations" (paper §5) and is pruned by the noise filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseClass {
    /// Periodic liveness heartbeat RPC (e.g. `report_state`).
    Heartbeat,
    /// Periodic status-update RPC (e.g. `update_service_capabilities`).
    StatusUpdate,
    /// Common Keystone REST invocations (token issue/validate).
    KeystoneCommon,
}

/// Full definition of one API in the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiDef {
    /// Dense id; equals this definition's index in the catalog.
    pub id: ApiId,
    /// The service that *exposes* the API (handles the request).
    pub service: Service,
    /// REST or RPC shape.
    pub kind: ApiKind,
    /// If set, invocations of this API are background noise of the given
    /// class and never part of an operational fingerprint.
    pub noise: Option<NoiseClass>,
}

impl ApiDef {
    /// Whether the API mutates state (POST/PUT/DELETE/PATCH REST, or any
    /// RPC). State-change APIs become plain literals in fingerprint regexes;
    /// everything else is starred (`X*`, optional) per Algorithm 1.
    pub fn is_state_change(&self) -> bool {
        self.kind.is_state_change()
    }

    /// Whether the API is an RPC.
    pub fn is_rpc(&self) -> bool {
        self.kind.is_rpc()
    }

    /// A stable human-readable name, e.g. `POST nova /v2.1/servers` or
    /// `RPC nova-compute build_and_run_instance`.
    pub fn label(&self) -> String {
        match &self.kind {
            ApiKind::Rest { method, uri } => {
                format!("{} {} {}", method, self.service.name(), uri)
            }
            ApiKind::Rpc { method, style } => {
                let style = match style {
                    RpcStyle::Call => "call",
                    RpcStyle::Cast => "cast",
                };
                format!("RPC({style}) {} {}", self.service.name(), method)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rest(method: HttpMethod, uri: &str) -> ApiDef {
        ApiDef {
            id: ApiId(0),
            service: Service::Nova,
            kind: ApiKind::Rest { method, uri: uri.to_string() },
            noise: None,
        }
    }

    #[test]
    fn state_change_classification() {
        assert!(rest(HttpMethod::Post, "/v2.1/servers").is_state_change());
        assert!(rest(HttpMethod::Put, "/v2.1/servers/{id}").is_state_change());
        assert!(rest(HttpMethod::Delete, "/v2.1/servers/{id}").is_state_change());
        assert!(!rest(HttpMethod::Get, "/v2.1/servers").is_state_change());
        assert!(!rest(HttpMethod::Head, "/v2.1/servers").is_state_change());
    }

    #[test]
    fn all_rpcs_are_state_change_priority() {
        let def = ApiDef {
            id: ApiId(1),
            service: Service::NovaCompute,
            kind: ApiKind::Rpc { method: "build_and_run_instance".into(), style: RpcStyle::Cast },
            noise: None,
        };
        assert!(def.is_state_change());
        assert!(def.is_rpc());
    }

    #[test]
    fn labels_are_informative() {
        let def = rest(HttpMethod::Post, "/v2.1/servers");
        assert_eq!(def.label(), "POST nova /v2.1/servers");
        let rpc = ApiDef {
            id: ApiId(2),
            service: Service::Neutron,
            kind: ApiKind::Rpc { method: "get_devices_details_list".into(), style: RpcStyle::Call },
            noise: None,
        };
        assert!(rpc.label().contains("get_devices_details_list"));
        assert!(rpc.label().contains("call"));
    }

    #[test]
    fn idempotent_reads() {
        assert!(HttpMethod::Get.is_idempotent_read());
        assert!(HttpMethod::Head.is_idempotent_read());
        assert!(!HttpMethod::Post.is_idempotent_read());
    }
}

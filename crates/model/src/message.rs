//! Network messages: the unit GRETEL observes.
//!
//! GRETEL never instruments OpenStack; its only runtime input is the stream
//! of REST and RPC messages captured on the wire, plus node metrics. A
//! [`Message`] is one captured request or response. Fields marked *ground
//! truth* exist only so the evaluation can score GRETEL — the analyzer
//! itself never reads them (enforced by the `truth` accessor naming and by
//! tests in `gretel-core`).

use crate::api::{ApiId, HttpMethod};
use crate::service::{NodeId, Service};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Monotonic message identifier assigned at emission.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MessageId(pub u64);

/// Identifier of one *instance* of an operation (a concrete run of an
/// [`crate::operation::OperationSpec`]). Ground truth only.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OpInstanceId(pub u64);

/// Identifier of the tenant (Keystone project) an operation instance runs
/// under. OpenStack scopes every API call to a project; the simulator
/// assigns instances to projects so faults can target one tenant's traffic
/// (`FaultScope::Project`) and the sharded pipeline can partition by
/// tenant. Unlike the `truth_*` fields this is *wire-visible* — a real
/// capture can read the project from the Keystone token scope on every
/// request — so [`Message::project`] may be used for shard routing.
/// Detection itself still never reads it: within a shard the analyzer is
/// project-blind.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ProjectId(pub u32);

impl fmt::Display for ProjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "project-{}", self.0)
    }
}

/// Request or response half of an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are self-describing
pub enum Direction {
    Request,
    Response,
}

/// TCP connection metadata used to pair REST requests with responses
/// (paper §5.3: "REST latencies are computed by pairing request and
/// response messages based on TCP connection metadata, like IP and port").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ConnKey {
    /// Source node.
    pub src: NodeId,
    /// Source TCP port.
    pub src_port: u16,
    /// Destination node.
    pub dst: NodeId,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl ConnKey {
    /// The same connection viewed from the opposite direction; a response
    /// travels on the reversed key of its request.
    pub fn reversed(self) -> ConnKey {
        ConnKey {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }

    /// Direction-independent form: both directions of one connection
    /// normalise to the same key.
    pub fn canonical(self) -> ConnKey {
        if (self.src.0, self.src_port) <= (self.dst.0, self.dst_port) {
            self
        } else {
            self.reversed()
        }
    }
}

/// Protocol-specific part of a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireKind {
    /// An HTTP REST message. `status` is set on responses only.
    Rest {
        /// HTTP verb.
        method: HttpMethod,
        /// Concrete URI with path parameters substituted.
        uri: String,
        /// HTTP status code; `None` on requests.
        status: Option<u16>,
    },
    /// An oslo.messaging RPC transiting the RabbitMQ broker.
    Rpc {
        /// oslo.messaging method name.
        method: String,
        /// Correlation id unique to a call/reply pair (paper: "RPC latencies
        /// are computed using IP and message identifier").
        msg_id: u64,
        /// Set when the reply carries a serialized exception.
        error: Option<String>,
    },
}

impl WireKind {
    /// True for RPC messages.
    pub fn is_rpc(&self) -> bool {
        matches!(self, WireKind::Rpc { .. })
    }
}

/// One captured network message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Monotonic id in emission order.
    pub id: MessageId,
    /// Emission timestamp, microseconds of simulated time.
    pub ts_us: u64,
    /// Node the message left from.
    pub src_node: NodeId,
    /// Node the message is addressed to (the broker node for RPCs).
    pub dst_node: NodeId,
    /// Emitting service.
    pub src_service: Service,
    /// Receiving service.
    pub dst_service: Service,
    /// The API this message belongs to.
    pub api: ApiId,
    /// Request or response.
    pub direction: Direction,
    /// Protocol detail.
    pub wire: WireKind,
    /// TCP connection for REST pairing. For RPCs this is the hop to/from
    /// the broker.
    pub conn: ConnKey,
    /// Raw payload bytes as they would appear on the wire. GRETEL scans
    /// these with byte-pattern checks only — never structured parsing.
    pub payload: Vec<u8>,
    /// Correlation identifier tying together the requests and responses
    /// of one operation across services, when the deployment propagates
    /// one (paper §5.3.1: OpenStack was introducing `correlation_id`;
    /// GRETEL "can exploit these … to increase its precision"). `None`
    /// when the deployment does not propagate ids — GRETEL must work
    /// either way.
    pub correlation_id: Option<u64>,
    /// Keystone project the call is scoped to, read from the request's
    /// auth token on the wire. `None` for traffic with no project scope
    /// (service heartbeats, token issuance itself). Used only to route
    /// messages to pipeline shards — detection never reads it.
    pub project: Option<ProjectId>,
    /// Ground truth: which operation instance produced this message.
    /// `None` for background noise. **Evaluation only.**
    pub truth_op: Option<OpInstanceId>,
    /// Ground truth: whether the message is background noise.
    /// **Evaluation only.**
    pub truth_noise: bool,
}

impl Message {
    /// Whether this is an HTTP response carrying an error status (>= 400).
    ///
    /// This mirrors what the anomaly detector derives *from the payload
    /// bytes*; it is provided for tests and ground-truth checks.
    pub fn is_rest_error(&self) -> bool {
        matches!(self.wire, WireKind::Rest { status: Some(s), .. } if s >= 400)
    }

    /// Whether this is an RPC reply carrying an exception.
    pub fn is_rpc_error(&self) -> bool {
        matches!(&self.wire, WireKind::Rpc { error: Some(_), .. })
    }

    /// Total bytes of the message as framed on the wire (payload only;
    /// framing overhead is added by the codec).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.wire {
            WireKind::Rest { method, uri, status } => write!(
                f,
                "[{} us] {}->{} {method} {uri}{}",
                self.ts_us,
                self.src_service,
                self.dst_service,
                status.map(|s| format!(" => {s}")).unwrap_or_default()
            ),
            WireKind::Rpc { method, msg_id, error } => write!(
                f,
                "[{} us] {}->{} RPC {method} (msg {msg_id}){}",
                self.ts_us,
                self.src_service,
                self.dst_service,
                if error.is_some() { " [error]" } else { "" }
            ),
        }
    }
}

/// Render an HTTP response payload the way the simulator puts it on the
/// wire: a status line, a few headers, and an opaque body. The anomaly
/// detector's byte-level scan looks for the status line pattern.
pub fn render_rest_response_payload(status: u16, reason: &str, body_len: usize) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {body_len}\r\n\r\n"
    )
    .into_bytes();
    out.resize(out.len() + body_len, b'x');
    out
}

/// Render an HTTP request payload (request line + headers + body).
pub fn render_rest_request_payload(method: HttpMethod, uri: &str, body_len: usize) -> Vec<u8> {
    let mut out = format!(
        "{method} {uri} HTTP/1.1\r\nX-Auth-Token: tok\r\nContent-Length: {body_len}\r\n\r\n"
    )
    .into_bytes();
    out.resize(out.len() + body_len, b'x');
    out
}

/// Render an oslo.messaging payload. Errors are embedded the way oslo
/// serializes exceptions, so GRETEL's byte-pattern check can find them
/// without JSON parsing.
pub fn render_rpc_payload(method: &str, msg_id: u64, error: Option<&str>, body_len: usize) -> Vec<u8> {
    let mut out = match error {
        Some(e) => format!(
            "{{\"oslo.message\": {{\"method\": \"{method}\", \"_msg_id\": \"{msg_id}\", \"failure\": {{\"class\": \"{e}\", \"kwargs\": {{}}}}"
        ),
        None => format!(
            "{{\"oslo.message\": {{\"method\": \"{method}\", \"_msg_id\": \"{msg_id}\", \"args\": {{}}"
        ),
    }
    .into_bytes();
    out.resize(out.len() + body_len, b'x');
    out.extend_from_slice(b"}}");
    out
}

/// Canonical HTTP reason phrase for the statuses the simulator emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Request Entity Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_key_reversal_and_canonicalisation() {
        let k = ConnKey { src: NodeId(1), src_port: 5000, dst: NodeId(2), dst_port: 80 };
        let r = k.reversed();
        assert_eq!(r.src, NodeId(2));
        assert_eq!(r.dst_port, 5000);
        assert_eq!(k.canonical(), r.canonical());
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn rest_error_detection() {
        let mut m = Message {
            id: MessageId(1),
            ts_us: 0,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Nova,
            dst_service: Service::Horizon,
            api: ApiId(0),
            direction: Direction::Response,
            wire: WireKind::Rest { method: HttpMethod::Post, uri: "/v2.1/servers".into(), status: Some(500) },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        };
        assert!(m.is_rest_error());
        m.wire = WireKind::Rest { method: HttpMethod::Post, uri: "/v2.1/servers".into(), status: Some(202) };
        assert!(!m.is_rest_error());
        assert!(!m.is_rpc_error());
    }

    #[test]
    fn payload_renderers_embed_detectable_patterns() {
        let p = render_rest_response_payload(413, reason_phrase(413), 64);
        let s = String::from_utf8_lossy(&p);
        assert!(s.starts_with("HTTP/1.1 413 Request Entity Too Large"));
        assert!(p.len() > 64);

        let p = render_rpc_payload("create_volume", 42, Some("VolumeLimitExceeded"), 16);
        let s = String::from_utf8_lossy(&p);
        assert!(s.contains("\"failure\""));
        assert!(s.contains("VolumeLimitExceeded"));
        assert!(s.contains("\"_msg_id\": \"42\""));

        let ok = render_rpc_payload("create_volume", 43, None, 16);
        assert!(!String::from_utf8_lossy(&ok).contains("failure"));
    }

    #[test]
    fn request_payload_contains_method_and_uri() {
        let p = render_rest_request_payload(HttpMethod::Put, "/v2/images/abc/file", 10);
        let s = String::from_utf8_lossy(&p);
        assert!(s.starts_with("PUT /v2/images/abc/file HTTP/1.1"));
    }

    #[test]
    fn display_is_compact() {
        let m = Message {
            id: MessageId(7),
            ts_us: 1234,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Horizon,
            dst_service: Service::Nova,
            api: ApiId(3),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Post, uri: "/v2.1/servers".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: Some(OpInstanceId(9)),
            truth_noise: false,
        };
        let s = m.to_string();
        assert!(s.contains("horizon->nova"));
        assert!(s.contains("POST /v2.1/servers"));
    }
}

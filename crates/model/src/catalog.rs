//! The OpenStack API catalog: the full alphabet of REST and RPC interfaces.
//!
//! The paper reports that OpenStack components expose **643 public REST
//! APIs** through their clients and CLIs (§6, §7.1), plus the internal RPC
//! methods each service uses over RabbitMQ, plus routine background chatter
//! (heartbeats, status updates, Keystone token traffic) that GRETEL's noise
//! filter removes. This module constructs that alphabet: a hand-written set
//! of real LIBERTY-era endpoints for every service, topped up with
//! systematically generated extension endpoints so the public REST count is
//! exactly [`PUBLIC_REST_APIS`] — preserving the symbol-table size and the
//! matching costs the paper measures.

use crate::api::{ApiDef, ApiId, ApiKind, HttpMethod, NoiseClass, RpcStyle};
use crate::service::Service;
use std::collections::HashMap;
use std::sync::Arc;

/// Number of public REST APIs in the catalog (paper: 643).
pub const PUBLIC_REST_APIS: usize = 643;

/// Immutable API catalog. Build once with [`Catalog::openstack`] and share
/// (cheaply clonable via `Arc`).
#[derive(Debug)]
pub struct Catalog {
    defs: Vec<ApiDef>,
    rest_index: HashMap<(Service, HttpMethod, String), ApiId>,
    rpc_index: HashMap<(Service, String), ApiId>,
    public_rest: usize,
    rpc_count: usize,
}

impl Catalog {
    /// Build the full OpenStack LIBERTY catalog.
    pub fn openstack() -> Arc<Catalog> {
        let mut b = Builder::default();
        b.add_keystone();
        b.add_nova_rest();
        b.add_neutron_rest();
        b.add_glance_rest();
        b.add_cinder_rest();
        b.add_swift_rest();
        b.fill_extensions();
        b.add_rpcs();
        b.add_noise();
        Arc::new(b.finish())
    }

    /// Number of APIs (REST + RPC + noise definitions).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when the catalog holds no definitions (never for `openstack()`).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Number of public (non-noise) REST APIs; equals [`PUBLIC_REST_APIS`]
    /// for the OpenStack catalog.
    pub fn public_rest_count(&self) -> usize {
        self.public_rest
    }

    /// Number of RPC methods (excluding noise RPCs).
    pub fn rpc_count(&self) -> usize {
        self.rpc_count
    }

    /// Definition for an id.
    ///
    /// # Panics
    /// Panics if the id is not in this catalog.
    pub fn get(&self, id: ApiId) -> &ApiDef {
        &self.defs[id.index()]
    }

    /// Iterate over all definitions.
    pub fn iter(&self) -> impl Iterator<Item = &ApiDef> {
        self.defs.iter()
    }

    /// Look up a REST API by exposing service, method and URI template.
    pub fn rest(&self, service: Service, method: HttpMethod, uri: &str) -> Option<ApiId> {
        self.rest_index.get(&(service, method, uri.to_string())).copied()
    }

    /// Like [`Catalog::rest`] but panics with a useful message; for use in
    /// workflow builders where the endpoint must exist.
    pub fn rest_expect(&self, service: Service, method: HttpMethod, uri: &str) -> ApiId {
        self.rest(service, method, uri)
            .unwrap_or_else(|| panic!("no REST API {method} {uri} on {service}"))
    }

    /// Look up an RPC by service and method name.
    pub fn rpc(&self, service: Service, method: &str) -> Option<ApiId> {
        self.rpc_index.get(&(service, method.to_string())).copied()
    }

    /// Like [`Catalog::rpc`] but panics when missing.
    pub fn rpc_expect(&self, service: Service, method: &str) -> ApiId {
        self.rpc(service, method)
            .unwrap_or_else(|| panic!("no RPC {method} on {service}"))
    }

    /// All non-noise REST API ids exposed by `service`.
    pub fn service_rest_apis(&self, service: Service) -> Vec<ApiId> {
        self.defs
            .iter()
            .filter(|d| {
                d.service == service && d.noise.is_none() && matches!(d.kind, ApiKind::Rest { .. })
            })
            .map(|d| d.id)
            .collect()
    }

    /// All non-noise RPC ids exposed by `service`.
    pub fn service_rpcs(&self, service: Service) -> Vec<ApiId> {
        self.defs
            .iter()
            .filter(|d| d.service == service && d.noise.is_none() && d.kind.is_rpc())
            .map(|d| d.id)
            .collect()
    }

    /// Ids of all noise APIs (heartbeats, status updates, Keystone common).
    pub fn noise_apis(&self) -> Vec<ApiId> {
        self.defs.iter().filter(|d| d.noise.is_some()).map(|d| d.id).collect()
    }

    /// Whether the id denotes background noise.
    pub fn is_noise(&self, id: ApiId) -> bool {
        self.get(id).noise.is_some()
    }

    /// Per-service API counts: `(service, rest, rpc)` for every service
    /// exposing at least one non-noise API. Used by reporting tools.
    pub fn stats(&self) -> Vec<(Service, usize, usize)> {
        Service::ALL
            .iter()
            .filter_map(|&svc| {
                let rest = self.service_rest_apis(svc).len();
                let rpc = self.service_rpcs(svc).len();
                (rest + rpc > 0).then_some((svc, rest, rpc))
            })
            .collect()
    }
}

#[derive(Default)]
struct Builder {
    defs: Vec<ApiDef>,
    public_rest: usize,
    rpc_count: usize,
}

impl Builder {
    fn push(&mut self, service: Service, kind: ApiKind, noise: Option<NoiseClass>) -> ApiId {
        let id = ApiId(u16::try_from(self.defs.len()).expect("catalog too large"));
        if noise.is_none() {
            match kind {
                ApiKind::Rest { .. } => self.public_rest += 1,
                ApiKind::Rpc { .. } => self.rpc_count += 1,
            }
        }
        self.defs.push(ApiDef { id, service, kind, noise });
        id
    }

    fn rest(&mut self, service: Service, method: HttpMethod, uri: &str) -> ApiId {
        self.push(service, ApiKind::Rest { method, uri: uri.to_string() }, None)
    }

    /// Add GET(list) + POST + GET(show) + PUT + DELETE for a resource.
    /// Neutron-style `.json` collection suffixes are stripped for item URIs
    /// (`/v2.0/ports.json` lists, `/v2.0/ports/{id}` shows).
    fn crud(&mut self, service: Service, base: &str) {
        use HttpMethod::*;
        let stem = base.strip_suffix(".json").unwrap_or(base);
        let item = format!("{stem}/{{id}}");
        self.rest(service, Get, base);
        self.rest(service, Post, base);
        self.rest(service, Get, &item);
        self.rest(service, Put, &item);
        self.rest(service, Delete, &item);
    }

    fn rpc(&mut self, service: Service, method: &str, style: RpcStyle) -> ApiId {
        self.push(service, ApiKind::Rpc { method: method.to_string(), style }, None)
    }

    fn noise_rpc(&mut self, service: Service, method: &str, class: NoiseClass) {
        self.push(
            service,
            ApiKind::Rpc { method: method.to_string(), style: RpcStyle::Cast },
            Some(class),
        );
    }

    fn noise_rest(&mut self, service: Service, method: HttpMethod, uri: &str, class: NoiseClass) {
        self.push(service, ApiKind::Rest { method, uri: uri.to_string() }, Some(class));
    }

    fn add_keystone(&mut self) {
        use HttpMethod::*;
        let s = Service::Keystone;
        self.rest(s, Post, "/v3/auth/tokens");
        self.rest(s, Get, "/v3/auth/tokens");
        self.rest(s, Head, "/v3/auth/tokens");
        self.rest(s, Delete, "/v3/auth/tokens");
        self.rest(s, Get, "/v3");
        self.crud(s, "/v3/users");
        self.rest(s, Get, "/v3/users/{id}/groups");
        self.rest(s, Get, "/v3/users/{id}/projects");
        self.rest(s, Post, "/v3/users/{id}/password");
        self.crud(s, "/v3/projects");
        self.crud(s, "/v3/domains");
        self.crud(s, "/v3/roles");
        self.rest(s, Get, "/v3/role_assignments");
        self.rest(s, Put, "/v3/projects/{id}/users/{uid}/roles/{rid}");
        self.rest(s, Delete, "/v3/projects/{id}/users/{uid}/roles/{rid}");
        self.crud(s, "/v3/groups");
        self.rest(s, Put, "/v3/groups/{id}/users/{uid}");
        self.rest(s, Delete, "/v3/groups/{id}/users/{uid}");
        self.crud(s, "/v3/services");
        self.crud(s, "/v3/endpoints");
        self.crud(s, "/v3/credentials");
        self.crud(s, "/v3/regions");
        self.rest(s, Get, "/v3/catalog");
    }

    fn add_nova_rest(&mut self) {
        use HttpMethod::*;
        let s = Service::Nova;
        // Servers and server sub-resources.
        self.crud(s, "/v2.1/servers");
        self.rest(s, Get, "/v2.1/servers/detail");
        self.rest(s, Post, "/v2.1/servers/{id}/action");
        self.rest(s, Get, "/v2.1/servers/{id}/ips");
        self.rest(s, Get, "/v2.1/servers/{id}/diagnostics");
        self.rest(s, Get, "/v2.1/servers/{id}/metadata");
        self.rest(s, Put, "/v2.1/servers/{id}/metadata");
        self.rest(s, Post, "/v2.1/servers/{id}/metadata");
        self.rest(s, Delete, "/v2.1/servers/{id}/metadata/{key}");
        self.rest(s, Get, "/v2.1/servers/{id}/os-instance-actions");
        self.rest(s, Get, "/v2.1/servers/{id}/os-instance-actions/{rid}");
        self.rest(s, Get, "/v2.1/servers/{id}/os-interface");
        self.rest(s, Post, "/v2.1/servers/{id}/os-interface");
        self.rest(s, Delete, "/v2.1/servers/{id}/os-interface/{pid}");
        self.rest(s, Get, "/v2.1/servers/{id}/os-volume_attachments");
        self.rest(s, Post, "/v2.1/servers/{id}/os-volume_attachments");
        self.rest(s, Delete, "/v2.1/servers/{id}/os-volume_attachments/{vid}");
        self.rest(s, Get, "/v2.1/servers/{id}/os-security-groups");
        self.rest(s, Post, "/v2.1/servers/{id}/remote-consoles");
        // Flavors.
        self.crud(s, "/v2.1/flavors");
        self.rest(s, Get, "/v2.1/flavors/detail");
        self.rest(s, Get, "/v2.1/flavors/{id}/os-extra_specs");
        self.rest(s, Post, "/v2.1/flavors/{id}/os-extra_specs");
        // Keypairs, images proxy, limits, quotas.
        self.crud(s, "/v2.1/os-keypairs");
        self.rest(s, Get, "/v2.1/images");
        self.rest(s, Get, "/v2.1/images/{id}");
        self.rest(s, Delete, "/v2.1/images/{id}");
        self.rest(s, Get, "/v2.1/limits");
        self.rest(s, Get, "/v2.1/os-quota-sets/{id}");
        self.rest(s, Put, "/v2.1/os-quota-sets/{id}");
        self.rest(s, Get, "/v2.1/os-quota-sets/{id}/defaults");
        // Host/hypervisor/service administration.
        self.rest(s, Get, "/v2.1/os-hypervisors");
        self.rest(s, Get, "/v2.1/os-hypervisors/detail");
        self.rest(s, Get, "/v2.1/os-hypervisors/{id}");
        self.rest(s, Get, "/v2.1/os-services");
        self.rest(s, Put, "/v2.1/os-services/enable");
        self.rest(s, Put, "/v2.1/os-services/disable");
        self.rest(s, Get, "/v2.1/os-availability-zone");
        self.rest(s, Get, "/v2.1/os-availability-zone/detail");
        self.rest(s, Get, "/v2.1/os-hosts");
        self.rest(s, Get, "/v2.1/os-hosts/{id}");
        self.rest(s, Get, "/v2.1/os-migrations");
        self.rest(s, Get, "/v2.1/os-simple-tenant-usage");
        self.rest(s, Get, "/v2.1/os-simple-tenant-usage/{id}");
        self.rest(s, Get, "/v2.1/os-aggregates");
        self.rest(s, Post, "/v2.1/os-aggregates");
        self.rest(s, Delete, "/v2.1/os-aggregates/{id}");
        self.rest(s, Post, "/v2.1/os-aggregates/{id}/action");
        self.rest(s, Get, "/v2.1/os-server-groups");
        self.rest(s, Post, "/v2.1/os-server-groups");
        self.rest(s, Delete, "/v2.1/os-server-groups/{id}");
        self.rest(s, Get, "/v2.1/os-floating-ips");
        self.rest(s, Post, "/v2.1/os-floating-ips");
        self.rest(s, Delete, "/v2.1/os-floating-ips/{id}");
        self.rest(s, Get, "/v2.1/extensions");
        // Callback endpoint Neutron uses to signal VIF plumbing completion
        // (step 7 of the paper's §2.1 VM-create walkthrough).
        self.rest(s, Post, "/v2.1/os-server-external-events");
    }

    fn add_neutron_rest(&mut self) {
        use HttpMethod::*;
        let s = Service::Neutron;
        self.crud(s, "/v2.0/networks.json");
        self.crud(s, "/v2.0/subnets.json");
        self.crud(s, "/v2.0/ports.json");
        self.crud(s, "/v2.0/routers.json");
        self.rest(s, Put, "/v2.0/routers/{id}/add_router_interface");
        self.rest(s, Put, "/v2.0/routers/{id}/remove_router_interface");
        self.crud(s, "/v2.0/floatingips.json");
        self.crud(s, "/v2.0/security-groups.json");
        self.rest(s, Get, "/v2.0/security-group-rules.json");
        self.rest(s, Post, "/v2.0/security-group-rules.json");
        self.rest(s, Delete, "/v2.0/security-group-rules/{id}");
        self.crud(s, "/v2.0/subnetpools.json");
        self.rest(s, Get, "/v2.0/agents.json");
        self.rest(s, Get, "/v2.0/agents/{id}");
        self.rest(s, Put, "/v2.0/agents/{id}");
        self.rest(s, Get, "/v2.0/quotas.json");
        self.rest(s, Get, "/v2.0/quotas/{id}");
        self.rest(s, Put, "/v2.0/quotas/{id}");
        self.rest(s, Get, "/v2.0/extensions.json");
        self.rest(s, Get, "/v2.0/extensions/{alias}");
        self.rest(s, Get, "/v2.0/service-providers.json");
        self.rest(s, Get, "/v2.0/availability_zones.json");
    }

    fn add_glance_rest(&mut self) {
        use HttpMethod::*;
        let s = Service::Glance;
        self.rest(s, Get, "/v2/images");
        self.rest(s, Post, "/v2/images");
        self.rest(s, Get, "/v2/images/{id}");
        self.rest(s, Patch, "/v2/images/{id}");
        self.rest(s, Delete, "/v2/images/{id}");
        self.rest(s, Put, "/v2/images/{id}/file");
        self.rest(s, Get, "/v2/images/{id}/file");
        self.rest(s, Post, "/v2/images/{id}/actions/deactivate");
        self.rest(s, Post, "/v2/images/{id}/actions/reactivate");
        self.rest(s, Get, "/v2/images/{id}/members");
        self.rest(s, Post, "/v2/images/{id}/members");
        self.rest(s, Put, "/v2/images/{id}/members/{mid}");
        self.rest(s, Delete, "/v2/images/{id}/members/{mid}");
        self.rest(s, Put, "/v2/images/{id}/tags/{tag}");
        self.rest(s, Delete, "/v2/images/{id}/tags/{tag}");
        self.rest(s, Get, "/v2/schemas/image");
        self.rest(s, Get, "/v2/schemas/images");
    }

    fn add_cinder_rest(&mut self) {
        use HttpMethod::*;
        let s = Service::Cinder;
        self.crud(s, "/v2/{tenant}/volumes");
        self.rest(s, Get, "/v2/{tenant}/volumes/detail");
        self.rest(s, Post, "/v2/{tenant}/volumes/{id}/action");
        self.crud(s, "/v2/{tenant}/snapshots");
        self.rest(s, Get, "/v2/{tenant}/snapshots/detail");
        self.crud(s, "/v2/{tenant}/backups");
        self.rest(s, Post, "/v2/{tenant}/backups/{id}/restore");
        self.crud(s, "/v2/{tenant}/types");
        self.rest(s, Get, "/v2/{tenant}/types/{id}/extra_specs");
        self.rest(s, Post, "/v2/{tenant}/types/{id}/extra_specs");
        self.rest(s, Get, "/v2/{tenant}/limits");
        self.rest(s, Get, "/v2/{tenant}/os-quota-sets/{id}");
        self.rest(s, Put, "/v2/{tenant}/os-quota-sets/{id}");
        self.rest(s, Get, "/v2/{tenant}/qos-specs");
        self.rest(s, Post, "/v2/{tenant}/qos-specs");
        self.rest(s, Delete, "/v2/{tenant}/qos-specs/{id}");
        self.rest(s, Get, "/v2/{tenant}/os-services");
        self.rest(s, Get, "/v2/{tenant}/scheduler-stats/get_pools");
    }

    fn add_swift_rest(&mut self) {
        use HttpMethod::*;
        let s = Service::Swift;
        self.rest(s, Get, "/v1/{account}");
        self.rest(s, Head, "/v1/{account}");
        self.rest(s, Post, "/v1/{account}");
        self.rest(s, Get, "/v1/{account}/{container}");
        self.rest(s, Put, "/v1/{account}/{container}");
        self.rest(s, Head, "/v1/{account}/{container}");
        self.rest(s, Post, "/v1/{account}/{container}");
        self.rest(s, Delete, "/v1/{account}/{container}");
        self.rest(s, Get, "/v1/{account}/{container}/{object}");
        self.rest(s, Put, "/v1/{account}/{container}/{object}");
        self.rest(s, Head, "/v1/{account}/{container}/{object}");
        self.rest(s, Post, "/v1/{account}/{container}/{object}");
        self.rest(s, Delete, "/v1/{account}/{container}/{object}");
    }

    /// Top up with systematically generated extension endpoints until the
    /// public REST API count reaches [`PUBLIC_REST_APIS`]. Real OpenStack has
    /// a long tail of extension endpoints (`os-*` on Nova, vendor extensions
    /// on Neutron, microversioned admin endpoints, ...); the generated tail
    /// stands in for them so the symbol space and matching costs are
    /// faithful to the paper.
    fn fill_extensions(&mut self) {
        // Weight the tail towards Nova and Neutron like real OpenStack.
        let weights: [(Service, usize, &str); 6] = [
            (Service::Nova, 5, "/v2.1/os-ext"),
            (Service::Neutron, 4, "/v2.0/ext"),
            (Service::Cinder, 3, "/v2/{tenant}/os-ext"),
            (Service::Glance, 2, "/v2/ext"),
            (Service::Keystone, 2, "/v3/OS-EXT"),
            (Service::Swift, 1, "/v1/ext"),
        ];
        let mut i = 0usize;
        'outer: loop {
            for &(service, weight, base) in &weights {
                for w in 0..weight {
                    if self.public_rest >= PUBLIC_REST_APIS {
                        break 'outer;
                    }
                    let resource = format!("{base}-{}{}", i, (b'a' + w as u8) as char);
                    // Alternate CRUD quads and read-only pairs to mix
                    // state-change and idempotent symbols in the tail.
                    if (i + w).is_multiple_of(2) {
                        if PUBLIC_REST_APIS - self.public_rest >= 5 {
                            self.crud(service, &resource);
                        } else {
                            // Pad one at a time with distinct URIs.
                            while self.public_rest < PUBLIC_REST_APIS {
                                let extra = format!("{resource}/pad{}", self.public_rest);
                                self.rest(service, HttpMethod::Get, &extra);
                            }
                        }
                    } else {
                        self.rest(service, HttpMethod::Get, &resource);
                        if self.public_rest < PUBLIC_REST_APIS {
                            self.rest(
                                service,
                                HttpMethod::Get,
                                &format!("{resource}/detail"),
                            );
                        }
                    }
                }
            }
            i += 1;
        }
    }

    fn add_rpcs(&mut self) {
        use RpcStyle::*;
        let nc = Service::NovaCompute;
        for m in [
            "build_and_run_instance",
            "terminate_instance",
            "reboot_instance",
            "stop_instance",
            "start_instance",
            "pause_instance",
            "unpause_instance",
            "suspend_instance",
            "resume_instance",
            "rebuild_instance",
            "snapshot_instance",
            "shelve_instance",
            "unshelve_instance",
            "prep_resize",
            "resize_instance",
            "finish_resize",
            "confirm_resize",
            "revert_resize",
            "live_migration",
            "pre_live_migration",
            "post_live_migration_at_destination",
            "rescue_instance",
            "unrescue_instance",
            "attach_interface",
            "detach_interface",
        ] {
            self.rpc(nc, m, Cast);
        }
        for m in [
            "attach_volume",
            "detach_volume",
            "get_console_output",
            "get_vnc_console",
            "get_diagnostics",
            "check_can_live_migrate_destination",
            "check_can_live_migrate_source",
            "reserve_block_device_name",
            "get_instance_diagnostics",
            "refresh_instance_security_rules",
        ] {
            self.rpc(nc, m, Call);
        }
        let nova = Service::Nova;
        for m in [
            "select_destinations",
            "update_aggregates",
            "build_instances",
            "schedule_and_build_instances",
            "migrate_server",
            "instance_update",
            "object_class_action_versions",
        ] {
            self.rpc(nova, m, Call);
        }
        // RPCs handled by the Neutron server (called by its L2 agents).
        let neutron = Service::Neutron;
        for m in [
            "get_devices_details_list",
            "security_group_info_for_devices",
            "get_device_details",
            "get_devices_details_and_failed_devices",
            "tunnel_sync",
            "get_dhcp_port",
            "get_active_networks_info",
            "get_network_info",
            "update_device_up",
            "update_device_down",
        ] {
            self.rpc(neutron, m, Call);
        }
        // Notifications handled by the L2 agents (cast by the server).
        let na = Service::NeutronAgent;
        for m in [
            "port_update",
            "port_delete",
            "network_update",
            "security_groups_member_updated",
            "security_groups_provider_updated",
            "release_dhcp_port",
            "port_binding_activate",
            "port_binding_deactivate",
            "setup_bridge",
        ] {
            self.rpc(na, m, Cast);
        }
        let cinder = Service::Cinder;
        for m in [
            "create_volume",
            "delete_volume",
            "extend_volume",
            "create_snapshot",
            "delete_snapshot",
            "copy_volume_to_image",
            "retype",
            "migrate_volume",
        ] {
            self.rpc(cinder, m, Cast);
        }
        for m in ["initialize_connection", "terminate_connection", "attach_volume_rpc", "detach_volume_rpc"] {
            self.rpc(cinder, m, Call);
        }
        let glance = Service::Glance;
        for m in ["image_location_update", "image_member_sync"] {
            self.rpc(glance, m, Cast);
        }
    }

    fn add_noise(&mut self) {
        use NoiseClass::*;
        self.noise_rpc(Service::NovaCompute, "report_state", Heartbeat);
        self.noise_rpc(Service::NeutronAgent, "report_state", Heartbeat);
        self.noise_rpc(Service::Cinder, "report_state", Heartbeat);
        self.noise_rpc(Service::Nova, "update_service_capabilities", StatusUpdate);
        self.noise_rpc(Service::NovaCompute, "update_available_resource", StatusUpdate);
        self.noise_rpc(Service::Neutron, "state_report", StatusUpdate);
        self.noise_rest(
            Service::Keystone,
            HttpMethod::Post,
            "/v3/auth/tokens#routine",
            KeystoneCommon,
        );
        self.noise_rest(
            Service::Keystone,
            HttpMethod::Get,
            "/v3/auth/tokens#validate",
            KeystoneCommon,
        );
    }

    fn finish(self) -> Catalog {
        let mut rest_index = HashMap::new();
        let mut rpc_index = HashMap::new();
        for def in &self.defs {
            if def.noise.is_some() {
                continue;
            }
            match &def.kind {
                ApiKind::Rest { method, uri } => {
                    let prev = rest_index.insert((def.service, *method, uri.clone()), def.id);
                    assert!(prev.is_none(), "duplicate REST API {}", def.label());
                }
                ApiKind::Rpc { method, .. } => {
                    let prev = rpc_index.insert((def.service, method.clone()), def.id);
                    assert!(prev.is_none(), "duplicate RPC {}", def.label());
                }
            }
        }
        Catalog {
            defs: self.defs,
            rest_index,
            rpc_index,
            public_rest: self.public_rest,
            rpc_count: self.rpc_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol;

    #[test]
    fn catalog_has_exactly_643_public_rest_apis() {
        let cat = Catalog::openstack();
        assert_eq!(cat.public_rest_count(), PUBLIC_REST_APIS);
    }

    #[test]
    fn catalog_has_a_healthy_rpc_population() {
        let cat = Catalog::openstack();
        assert!(cat.rpc_count() >= 70, "got {}", cat.rpc_count());
    }

    #[test]
    fn ids_are_dense_and_self_referential() {
        let cat = Catalog::openstack();
        for (i, def) in cat.iter().enumerate() {
            assert_eq!(def.id.index(), i);
        }
    }

    #[test]
    fn every_api_gets_a_unique_symbol() {
        let cat = Catalog::openstack();
        let mut syms: Vec<char> = cat.iter().map(|d| symbol::encode(d.id)).collect();
        syms.sort_unstable();
        syms.dedup();
        assert_eq!(syms.len(), cat.len());
    }

    #[test]
    fn well_known_endpoints_resolve() {
        let cat = Catalog::openstack();
        assert!(cat.rest(Service::Nova, HttpMethod::Post, "/v2.1/servers").is_some());
        assert!(cat.rest(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json").is_some());
        assert!(cat.rest(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file").is_some());
        assert!(cat.rpc(Service::NovaCompute, "build_and_run_instance").is_some());
        assert!(cat.rpc(Service::Neutron, "get_devices_details_list").is_some());
        assert!(cat.rpc(Service::Neutron, "security_group_info_for_devices").is_some());
    }

    #[test]
    fn noise_apis_are_flagged() {
        let cat = Catalog::openstack();
        let noise = cat.noise_apis();
        assert!(noise.len() >= 6);
        for id in noise {
            assert!(cat.is_noise(id));
        }
        // Public endpoints are not noise.
        let servers = cat.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers");
        assert!(!cat.is_noise(servers));
    }

    #[test]
    fn rest_and_rpc_lookup_round_trips() {
        let cat = Catalog::openstack();
        for def in cat.iter().filter(|d| d.noise.is_none()) {
            match &def.kind {
                ApiKind::Rest { method, uri } => {
                    assert_eq!(cat.rest(def.service, *method, uri), Some(def.id));
                }
                ApiKind::Rpc { method, .. } => {
                    assert_eq!(cat.rpc(def.service, method), Some(def.id));
                }
            }
        }
    }

    #[test]
    fn well_known_ids_are_stable() {
        // Persisted fingerprint libraries reference APIs by id, so the
        // catalog build order is a compatibility contract: the builder
        // appends services in a fixed order and never reorders existing
        // entries. Pin a few anchors; if this test fails, bump the frame
        // codec VERSION and invalidate persisted libraries.
        let cat = Catalog::openstack();
        let post_tokens =
            cat.rest_expect(Service::Keystone, HttpMethod::Post, "/v3/auth/tokens");
        assert_eq!(post_tokens, ApiId(0), "keystone is built first");
        let first_nova =
            cat.rest_expect(Service::Nova, HttpMethod::Get, "/v2.1/servers");
        assert_eq!(first_nova.0, 59, "nova REST starts right after the 59 keystone APIs");
        // RPCs come after all 643 public REST APIs.
        let first_rpc =
            cat.rpc_expect(Service::NovaCompute, "build_and_run_instance");
        assert_eq!(first_rpc.0 as usize, PUBLIC_REST_APIS);
        // Noise APIs are last.
        let noise_min = cat.noise_apis().iter().map(|a| a.0).min().unwrap();
        assert_eq!(noise_min as usize, PUBLIC_REST_APIS + cat.rpc_count());
    }

    #[test]
    fn stats_cover_the_whole_catalog() {
        let cat = Catalog::openstack();
        let stats = cat.stats();
        let rest_total: usize = stats.iter().map(|&(_, r, _)| r).sum();
        let rpc_total: usize = stats.iter().map(|&(_, _, p)| p).sum();
        assert_eq!(rest_total, cat.public_rest_count());
        assert_eq!(rpc_total, cat.rpc_count());
        // Infrastructure services expose no APIs.
        assert!(!stats.iter().any(|&(s, ..)| s.is_infrastructure()));
    }

    #[test]
    fn service_pools_are_disjoint_and_nonempty() {
        let cat = Catalog::openstack();
        let nova = cat.service_rest_apis(Service::Nova);
        let neutron = cat.service_rest_apis(Service::Neutron);
        assert!(!nova.is_empty() && !neutron.is_empty());
        for id in &nova {
            assert!(!neutron.contains(id));
        }
        assert!(!cat.service_rpcs(Service::NovaCompute).is_empty());
    }
}

//! Synthetic Tempest-like integration suite.
//!
//! The paper fingerprints OpenStack by running the 1200 applicable tests of
//! the Tempest integration suite (§7.1, Table 1). Tempest itself needs a
//! live OpenStack cluster, so this module generates a suite of 1200
//! operation specs with the *statistical shape* Table 1 reports:
//!
//! * the per-category test counts (Compute 517, Image 55, Network 251,
//!   Storage 84, Misc 293);
//! * per-category unique-API pools of exactly the Table 1 sizes
//!   (e.g. Compute: 195 REST + 61 RPC);
//! * average fingerprint sizes near the Table 1 values (Compute ≈ 100 with
//!   RPCs / 56 without, etc.);
//! * within-category overlap (shared prologues and motifs) but little
//!   cross-category overlap (Fig 5);
//! * a globally unique state-change subsequence per test, so precise
//!   operation detection is possible in principle.
//!
//! Generation is fully deterministic for a given seed.

use crate::api::{ApiDef, ApiId, ApiKind, RpcStyle};
use crate::catalog::Catalog;
use crate::operation::{Category, LatencyClass, OpSpecId, OperationSpec, Step};
use crate::service::Service;
use crate::workflows::Workflows;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-category API pools (the "Unique APIs" columns of Table 1).
#[derive(Debug, Clone)]
pub struct CategoryPools {
    /// REST APIs this category's tests may invoke.
    pub rest: Vec<ApiId>,
    /// RPC methods this category's tests may invoke.
    pub rpc: Vec<ApiId>,
}

impl CategoryPools {
    /// State-change REST APIs in the pool (used for discriminators and for
    /// fault injection into state-change calls).
    pub fn state_change_rest(&self, cat: &Catalog) -> Vec<ApiId> {
        self.rest.iter().copied().filter(|&id| cat.get(id).is_state_change()).collect()
    }
}

/// Table 1 calibration targets for one category.
#[derive(Debug, Clone, Copy)]
pub struct CategoryTargets {
    /// Number of tests.
    pub tests: usize,
    /// Unique REST APIs across the category.
    pub unique_rest: usize,
    /// Unique RPCs across the category.
    pub unique_rpc: usize,
    /// Average fingerprint size including RPCs.
    pub avg_fp_with_rpc: usize,
    /// Average fingerprint size without RPCs.
    pub avg_fp_without_rpc: usize,
}

/// The Table 1 targets.
pub fn table1_targets(cat: Category) -> CategoryTargets {
    match cat {
        Category::Compute => CategoryTargets {
            tests: 517,
            unique_rest: 195,
            unique_rpc: 61,
            avg_fp_with_rpc: 100,
            avg_fp_without_rpc: 56,
        },
        Category::Image => CategoryTargets {
            tests: 55,
            unique_rest: 38,
            unique_rpc: 10,
            avg_fp_with_rpc: 18,
            avg_fp_without_rpc: 15,
        },
        Category::Network => CategoryTargets {
            tests: 251,
            unique_rest: 70,
            unique_rpc: 24,
            avg_fp_with_rpc: 31,
            avg_fp_without_rpc: 16,
        },
        Category::Storage => CategoryTargets {
            tests: 84,
            unique_rest: 40,
            unique_rpc: 11,
            avg_fp_with_rpc: 17,
            avg_fp_without_rpc: 15,
        },
        Category::Misc => CategoryTargets {
            tests: 293,
            unique_rest: 20,
            unique_rpc: 11,
            avg_fp_with_rpc: 16,
            avg_fp_without_rpc: 11,
        },
    }
}

/// The generated suite: 1200 operation specs plus the pools they draw from.
///
/// ```
/// use gretel_model::{Catalog, Category, TempestSuite};
///
/// let suite = TempestSuite::generate(Catalog::openstack(), 42);
/// assert_eq!(suite.len(), 1200);
/// assert_eq!(suite.by_category(Category::Compute).count(), 517);
/// ```
pub struct TempestSuite {
    catalog: Arc<Catalog>,
    specs: Vec<OperationSpec>,
    pools: Vec<(Category, CategoryPools)>,
}

impl TempestSuite {
    /// Generate the full 1200-test suite.
    pub fn generate(catalog: Arc<Catalog>, seed: u64) -> TempestSuite {
        let counts: Vec<(Category, usize)> =
            Category::ALL.iter().map(|&c| (c, table1_targets(c).tests)).collect();
        Self::generate_with_counts(catalog, seed, &counts)
    }

    /// Generate a reduced suite (same pools and shapes, fewer tests per
    /// category) — useful for fast unit tests.
    pub fn generate_with_counts(
        catalog: Arc<Catalog>,
        seed: u64,
        counts: &[(Category, usize)],
    ) -> TempestSuite {
        let wf = Workflows::new(catalog.clone());
        let pools: Vec<(Category, CategoryPools)> = Category::ALL
            .iter()
            .map(|&c| (c, build_pools(&catalog, c)))
            .collect();

        let mut specs = Vec::new();
        let mut signatures: HashSet<Vec<ApiId>> = HashSet::new();
        let mut global_idx = 0usize;
        for &(category, n_tests) in counts {
            let pool = &pools.iter().find(|(c, _)| *c == category).expect("pool").1;
            for test_idx in 0..n_tests {
                let id = OpSpecId(u16::try_from(specs.len()).expect("suite too large"));
                let spec = generate_test(
                    &catalog,
                    &wf,
                    pool,
                    category,
                    id,
                    test_idx,
                    global_idx,
                    seed,
                    &mut signatures,
                );
                specs.push(spec);
                global_idx += 1;
            }
        }
        TempestSuite { catalog, specs, pools }
    }

    /// All specs, indexable by [`OpSpecId`].
    pub fn specs(&self) -> &[OperationSpec] {
        &self.specs
    }

    /// Number of tests in the suite.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec with the given id.
    pub fn spec(&self, id: OpSpecId) -> &OperationSpec {
        &self.specs[id.index()]
    }

    /// Specs belonging to one category.
    pub fn by_category(&self, cat: Category) -> impl Iterator<Item = &OperationSpec> {
        self.specs.iter().filter(move |s| s.category == cat)
    }

    /// The unique-API pools for a category.
    pub fn pools(&self, cat: Category) -> &CategoryPools {
        &self.pools.iter().find(|(c, _)| *c == cat).expect("pools for all categories").1
    }

    /// The catalog the suite was generated against.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }
}

/// The primary (defining) service of a category.
fn primary_service(cat: Category) -> Service {
    match cat {
        Category::Compute => Service::Nova,
        Category::Image => Service::Glance,
        Category::Network => Service::Neutron,
        Category::Storage => Service::Cinder,
        Category::Misc => Service::Keystone,
    }
}

/// Derive natural (caller, callee) endpoints for an RPC definition.
pub fn rpc_endpoints(def: &ApiDef) -> (Service, Service) {
    let style = match &def.kind {
        ApiKind::Rpc { style, .. } => *style,
        ApiKind::Rest { .. } => panic!("rpc_endpoints on a REST API"),
    };
    match (def.service, style) {
        (Service::NovaCompute, _) => (Service::Nova, Service::NovaCompute),
        (Service::Nova, _) => (Service::Nova, Service::Nova),
        // Agents call into the Neutron server; the server casts to agents.
        (Service::Neutron, _) => (Service::NeutronAgent, Service::Neutron),
        (Service::NeutronAgent, _) => (Service::Neutron, Service::NeutronAgent),
        (s, _) => (s, s),
    }
}

/// Derive the natural (caller, callee) for a REST API invoked by a test of
/// `category`: calls to the category's own service originate at the
/// dashboard/CLI; cross-service calls originate at the category's primary
/// controller (e.g. Compute tests hitting Neutron come from Nova).
fn rest_endpoints(cat: Category, api_service: Service) -> (Service, Service) {
    let primary = primary_service(cat);
    if api_service == primary || primary == Service::Keystone {
        (Service::Horizon, api_service)
    } else {
        (primary, api_service)
    }
}

fn latency_for(def: &ApiDef) -> LatencyClass {
    match &def.kind {
        ApiKind::Rest { method, .. } if method.is_idempotent_read() => LatencyClass::Fast,
        ApiKind::Rest { .. } => LatencyClass::Medium,
        ApiKind::Rpc { style: RpcStyle::Call, .. } => LatencyClass::Medium,
        ApiKind::Rpc { style: RpcStyle::Cast, .. } => LatencyClass::Medium,
    }
}

fn make_step(catalog: &Catalog, cat: Category, id: ApiId) -> Step {
    let def = catalog.get(id);
    let (src, dst) = match &def.kind {
        ApiKind::Rest { .. } => rest_endpoints(cat, def.service),
        ApiKind::Rpc { .. } => rpc_endpoints(def),
    };
    Step::new(id, src, dst, latency_for(def))
}

/// Assemble the per-category API pools with exactly the Table 1 unique-API
/// counts.
fn build_pools(catalog: &Catalog, cat: Category) -> CategoryPools {
    let t = table1_targets(cat);
    let rest = build_rest_pool(catalog, cat, t.unique_rest);
    let rpc = build_rpc_pool(catalog, cat, t.unique_rpc);
    assert_eq!(rest.len(), t.unique_rest, "{cat}: REST pool size");
    assert_eq!(rpc.len(), t.unique_rpc, "{cat}: RPC pool size");
    CategoryPools { rest, rpc }
}

fn build_rest_pool(catalog: &Catalog, cat: Category, target: usize) -> Vec<ApiId> {
    // Primary service first, then cross-service extras in a category-
    // specific order; truncate to the Table 1 target.
    let order: Vec<Service> = match cat {
        Category::Compute => vec![
            Service::Nova,
            Service::Glance,
            Service::Neutron,
            Service::Cinder,
        ],
        Category::Image => vec![Service::Glance, Service::Swift],
        Category::Network => vec![Service::Neutron, Service::Nova],
        Category::Storage => vec![Service::Cinder, Service::Swift],
        Category::Misc => vec![Service::Keystone, Service::Swift],
    };
    let mut pool = Vec::new();
    // Keep a small cross-service share (~5%) so Fig 5 sees small but
    // non-zero cross-category overlap.
    let cross_total = (target / 20).max(2).min(target.saturating_sub(1));
    let primary_share = target - cross_total;
    let n_secondary = order.len().saturating_sub(1).max(1);
    let per_secondary = cross_total.div_ceil(n_secondary);
    for (i, service) in order.iter().enumerate() {
        let apis = catalog.service_rest_apis(*service);
        let want = if i == 0 {
            primary_share.min(apis.len())
        } else {
            per_secondary.min(target - pool.len()).min(apis.len())
        };
        if i == 0 {
            pool.extend(apis.into_iter().take(want));
        } else {
            // Cross-service extras skip the secondary service's most
            // common endpoints (those belong to that service's own
            // category motifs) and draw from its mid-list instead, so
            // categories stay distinguishable (Fig 5).
            let skip = 8.min(apis.len().saturating_sub(want));
            pool.extend(apis.into_iter().skip(skip).take(want));
        }
        if pool.len() >= target {
            break;
        }
    }
    // If the primary service could not supply its full share, top up from
    // the secondaries beyond their front slice.
    let mut extra_idx = 0usize;
    while pool.len() < target {
        let service = order[1 + extra_idx % n_secondary];
        let apis = catalog.service_rest_apis(service);
        if let Some(id) = apis.into_iter().find(|id| !pool.contains(id)) {
            pool.push(id);
        }
        extra_idx += 1;
        assert!(extra_idx < 10_000, "cannot fill REST pool for {cat}");
    }
    pool.truncate(target);
    pool
}

fn build_rpc_pool(catalog: &Catalog, cat: Category, target: usize) -> Vec<ApiId> {
    let order: Vec<Service> = match cat {
        Category::Compute => vec![
            Service::NovaCompute,
            Service::Nova,
            Service::Neutron,
            Service::NeutronAgent,
        ],
        Category::Image => vec![Service::Glance, Service::NovaCompute],
        Category::Network => vec![Service::Neutron, Service::NeutronAgent, Service::Nova],
        Category::Storage => vec![Service::Cinder],
        Category::Misc => vec![Service::Nova, Service::Cinder],
    };
    let mut pool = Vec::new();
    for service in order {
        let rpcs = catalog.service_rpcs(service);
        let want = target - pool.len();
        pool.extend(rpcs.into_iter().take(want));
        if pool.len() >= target {
            break;
        }
    }
    pool.truncate(target);
    pool
}

/// Category-specific short read prologue shared by every test of the
/// category — the source of the within-category overlap Table 1 notes.
fn prologue(wf: &Workflows, cat: Category) -> Vec<Step> {
    use crate::api::HttpMethod::*;
    let c = wf.catalog();
    let mk = |svc: Service, m, uri: &str| -> Step {
        let id = c.rest_expect(svc, m, uri);
        make_step(c, cat, id)
    };
    match cat {
        Category::Compute => vec![
            mk(Service::Nova, Get, "/v2.1/flavors"),
            mk(Service::Nova, Get, "/v2.1/limits"),
            mk(Service::Nova, Get, "/v2.1/servers"),
        ],
        Category::Image => vec![mk(Service::Glance, Get, "/v2/images")],
        Category::Network => vec![
            mk(Service::Neutron, Get, "/v2.0/networks.json"),
            mk(Service::Neutron, Get, "/v2.0/extensions.json"),
        ],
        Category::Storage => vec![mk(Service::Cinder, Get, "/v2/{tenant}/volumes")],
        Category::Misc => vec![
            mk(Service::Keystone, Get, "/v3"),
            mk(Service::Keystone, Get, "/v3/catalog"),
        ],
    }
}

/// Category motif library: realistic composite sub-operations.
fn motifs(wf: &Workflows, cat: Category) -> Vec<Vec<Step>> {
    match cat {
        Category::Compute => vec![
            wf.vm_create(),
            wf.vm_delete(),
            wf.vm_reboot(),
            wf.vm_snapshot(),
            wf.vm_migrate(),
            wf.volume_attach(),
            wf.vm_resize(),
            wf.vm_rescue(),
            wf.vm_shelve_unshelve(),
        ],
        Category::Image => vec![wf.image_upload(), wf.image_list(), wf.image_share()],
        Category::Network => vec![
            wf.network_create(),
            wf.router_create(),
            wf.floating_ip_associate(),
            wf.security_group_create(),
            wf.router_teardown(),
        ],
        Category::Storage => vec![
            wf.volume_create(),
            wf.volume_snapshot(),
            wf.cinder_list(),
            wf.volume_extend(),
            wf.volume_backup_restore(),
        ],
        Category::Misc => vec![
            wf.admin_queries(),
            wf.keypair_create(),
            wf.swift_put_object(),
            wf.project_onboarding(),
            wf.swift_container_lifecycle(),
        ],
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_test(
    catalog: &Catalog,
    wf: &Workflows,
    pool: &CategoryPools,
    category: Category,
    id: OpSpecId,
    test_idx: usize,
    global_idx: usize,
    seed: u64,
    signatures: &mut HashSet<Vec<ApiId>>,
) -> OperationSpec {
    let mut rng = StdRng::seed_from_u64(
        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(global_idx as u64 + 1)),
    );
    let targets = table1_targets(category);

    let mut steps = prologue(wf, category);

    // Pick 1..=k motifs; Compute tests are composites of several.
    let lib = motifs(wf, category);
    let n_motifs = match category {
        Category::Compute => 1 + rng.gen_range(0..=2),
        _ => 1,
    };
    for _ in 0..n_motifs {
        let m = &lib[rng.gen_range(0..lib.len())];
        steps.extend(m.iter().cloned());
    }

    // How many more REST / RPC steps we need to hit the Table 1 averages.
    // ±20% jitter keeps test lengths varied like the real suite.
    let jitter = |rng: &mut StdRng, mean: usize| -> usize {
        if mean == 0 {
            return 0;
        }
        let lo = (mean as f64 * 0.8) as usize;
        let hi = ((mean as f64 * 1.2) as usize).max(lo + 1);
        rng.gen_range(lo..hi)
    };
    let rest_goal = jitter(&mut rng, targets.avg_fp_without_rpc);
    let rpc_goal = jitter(&mut rng, targets.avg_fp_with_rpc - targets.avg_fp_without_rpc);

    let rest_have = steps.iter().filter(|s| !catalog.get(s.api).is_rpc()).count();
    let rpc_have = steps.len() - rest_have;
    // Reserve 2 REST slots for the uniqueness discriminator.
    let rest_fill = rest_goal.saturating_sub(rest_have).saturating_sub(2);
    let rpc_fill = rpc_goal.saturating_sub(rpc_have);

    // REST fill: a consecutive slice of the category pool (rotating offset
    // guarantees the whole pool is exercised across the category), locally
    // shuffled so state-change order differs between tests.
    let mut fill: Vec<ApiId> = Vec::with_capacity(rest_fill + rpc_fill);
    if !pool.rest.is_empty() && rest_fill > 0 {
        let offset = (test_idx * 31) % pool.rest.len();
        for k in 0..rest_fill.min(pool.rest.len()) {
            fill.push(pool.rest[(offset + k) % pool.rest.len()]);
        }
    }
    // RPC fill: sampled with replacement (operations repeat RPCs freely).
    for _ in 0..rpc_fill {
        if pool.rpc.is_empty() {
            break;
        }
        fill.push(pool.rpc[rng.gen_range(0..pool.rpc.len())]);
    }
    fill.shuffle(&mut rng);
    steps.extend(fill.into_iter().map(|api| make_step(catalog, category, api)));

    // Uniqueness discriminator: append a pair of state-change REST steps
    // chosen so the test's full state-change subsequence is globally unique.
    let sc_pool = pool.state_change_rest(catalog);
    assert!(sc_pool.len() >= 2, "{category}: need state-change APIs for discriminators");
    let l = sc_pool.len();
    let mut k = 0usize;
    loop {
        let a = sc_pool[(global_idx + k) % l];
        let b = sc_pool[((global_idx / l) + k * 7 + 3) % l];
        let mut candidate = steps.clone();
        candidate.push(make_step(catalog, category, a));
        candidate.push(make_step(catalog, category, b));
        let sig: Vec<ApiId> = candidate
            .iter()
            .filter(|s| catalog.get(s.api).is_state_change())
            .map(|s| s.api)
            .collect();
        if signatures.insert(sig) {
            steps = candidate;
            break;
        }
        k += 1;
        assert!(k < l * l, "could not find a unique discriminator");
    }

    OperationSpec {
        id,
        name: format!("{}.t{:04}", category.name().to_lowercase(), test_idx),
        category,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_suite() -> TempestSuite {
        let counts: Vec<(Category, usize)> =
            Category::ALL.iter().map(|&c| (c, 12)).collect();
        TempestSuite::generate_with_counts(Catalog::openstack(), 7, &counts)
    }

    #[test]
    fn pool_sizes_match_table1() {
        let suite = small_suite();
        for &c in &Category::ALL {
            let t = table1_targets(c);
            assert_eq!(suite.pools(c).rest.len(), t.unique_rest, "{c} REST");
            assert_eq!(suite.pools(c).rpc.len(), t.unique_rpc, "{c} RPC");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let counts = [(Category::Compute, 5), (Category::Network, 5)];
        let a = TempestSuite::generate_with_counts(Catalog::openstack(), 42, &counts);
        let b = TempestSuite::generate_with_counts(Catalog::openstack(), 42, &counts);
        assert_eq!(a.specs(), b.specs());
    }

    #[test]
    fn different_seeds_differ() {
        let counts = [(Category::Compute, 5)];
        let a = TempestSuite::generate_with_counts(Catalog::openstack(), 1, &counts);
        let b = TempestSuite::generate_with_counts(Catalog::openstack(), 2, &counts);
        assert_ne!(a.specs(), b.specs());
    }

    #[test]
    fn state_change_subsequences_are_unique() {
        let suite = small_suite();
        let cat = suite.catalog();
        let mut sigs = HashSet::new();
        for spec in suite.specs() {
            let sig: Vec<ApiId> = spec
                .steps
                .iter()
                .filter(|s| cat.get(s.api).is_state_change())
                .map(|s| s.api)
                .collect();
            assert!(sigs.insert(sig), "duplicate signature for {}", spec.name);
        }
    }

    #[test]
    fn specs_use_only_pool_apis_plus_motifs() {
        let suite = small_suite();
        let cat = suite.catalog();
        for spec in suite.specs() {
            for step in &spec.steps {
                assert!(!cat.is_noise(step.api), "{}: noise API in spec", spec.name);
            }
        }
    }

    #[test]
    fn average_lengths_track_table1() {
        // Use a moderately sized suite so the averages stabilise.
        let counts: Vec<(Category, usize)> =
            Category::ALL.iter().map(|&c| (c, 40)).collect();
        let suite = TempestSuite::generate_with_counts(Catalog::openstack(), 3, &counts);
        let cat = suite.catalog();
        for &c in &Category::ALL {
            let t = table1_targets(c);
            let specs: Vec<_> = suite.by_category(c).collect();
            let avg_total: f64 =
                specs.iter().map(|s| s.len() as f64).sum::<f64>() / specs.len() as f64;
            let avg_rest: f64 = specs
                .iter()
                .map(|s| s.steps.iter().filter(|st| !cat.get(st.api).is_rpc()).count() as f64)
                .sum::<f64>()
                / specs.len() as f64;
            let tol_total = (t.avg_fp_with_rpc as f64 * 0.35).max(6.0);
            let tol_rest = (t.avg_fp_without_rpc as f64 * 0.35).max(6.0);
            assert!(
                (avg_total - t.avg_fp_with_rpc as f64).abs() < tol_total,
                "{c}: avg total {avg_total:.1} vs target {}",
                t.avg_fp_with_rpc
            );
            assert!(
                (avg_rest - t.avg_fp_without_rpc as f64).abs() < tol_rest,
                "{c}: avg REST {avg_rest:.1} vs target {}",
                t.avg_fp_without_rpc
            );
        }
    }

    #[test]
    fn full_suite_has_1200_tests() {
        let suite = TempestSuite::generate(Catalog::openstack(), 11);
        assert_eq!(suite.len(), 1200);
        for &c in &Category::ALL {
            assert_eq!(suite.by_category(c).count(), c.table1_tests(), "{c}");
        }
    }

    #[test]
    fn cross_category_pool_overlap_is_small() {
        let suite = small_suite();
        for &a in &Category::ALL {
            for &b in &Category::ALL {
                if a == b {
                    continue;
                }
                let pa: HashSet<_> = suite.pools(a).rest.iter().collect();
                let pb: HashSet<_> = suite.pools(b).rest.iter().collect();
                let inter = pa.intersection(&pb).count();
                let frac = inter as f64 / pa.len() as f64;
                assert!(frac < 0.35, "{a} vs {b}: pool overlap {frac:.2}");
            }
        }
    }

    #[test]
    fn all_generated_specs_validate() {
        let suite = small_suite();
        for spec in suite.specs() {
            let problems = spec.validate(suite.catalog());
            assert!(problems.is_empty(), "{}: {problems:?}", spec.name);
        }
    }

    #[test]
    fn rpc_endpoints_are_sensible() {
        let cat = Catalog::openstack();
        let build = cat.rpc_expect(Service::NovaCompute, "build_and_run_instance");
        let (src, dst) = rpc_endpoints(cat.get(build));
        assert_eq!((src, dst), (Service::Nova, Service::NovaCompute));
        let gd = cat.rpc_expect(Service::Neutron, "get_devices_details_list");
        let (src, dst) = rpc_endpoints(cat.get(gd));
        assert_eq!((src, dst), (Service::NeutronAgent, Service::Neutron));
    }
}

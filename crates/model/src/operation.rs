//! High-level administrative operations.
//!
//! The paper models every OpenStack administrative task as "a temporally
//! related sequence of REST and RPC API invocations" (§4). An
//! [`OperationSpec`] is that sequence: an ordered list of [`Step`]s, each
//! naming the API invoked, the caller and callee services, and a latency
//! class the simulator turns into a sampled service time.

use crate::api::ApiId;
use crate::service::Service;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation *specification* (a kind of task, e.g. "boot
/// VM from image"), as opposed to an instance of running it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OpSpecId(pub u16);

impl OpSpecId {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpSpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Tempest-style operation category (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // Table 1 category names are self-describing
pub enum Category {
    Compute,
    Image,
    Network,
    Storage,
    Misc,
}

impl Category {
    /// All categories in Table 1 order.
    pub const ALL: [Category; 5] =
        [Category::Compute, Category::Image, Category::Network, Category::Storage, Category::Misc];

    /// Table 1 test counts per category (sums to 1200).
    pub fn table1_tests(self) -> usize {
        match self {
            Category::Compute => 517,
            Category::Image => 55,
            Category::Network => 251,
            Category::Storage => 84,
            Category::Misc => 293,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Compute => "Compute",
            Category::Image => "Image",
            Category::Network => "Network",
            Category::Storage => "Storage",
            Category::Misc => "Misc",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Service-time class of a step; the simulator maps classes onto sampled
/// latency distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LatencyClass {
    /// Simple metadata read (a few ms).
    #[default]
    Fast,
    /// Typical control-plane action (tens of ms).
    Medium,
    /// Heavy action: scheduling, image fetch (hundreds of ms).
    Slow,
    /// Long asynchronous work: VM boot, volume build (seconds).
    Boot,
}

/// One API invocation inside an operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// The API invoked.
    pub api: ApiId,
    /// The service issuing the request.
    pub src: Service,
    /// The service handling it. For RPCs the message transits RabbitMQ.
    pub dst: Service,
    /// Service-time class.
    pub latency: LatencyClass,
    /// Approximate request body size in bytes (responses are sized by the
    /// simulator).
    pub request_bytes: u32,
}

impl Step {
    /// Construct a step with a default small request body.
    pub fn new(api: ApiId, src: Service, dst: Service, latency: LatencyClass) -> Step {
        Step { api, src, dst, latency, request_bytes: 128 }
    }

    /// Builder-style request size override.
    pub fn with_bytes(mut self, bytes: u32) -> Step {
        self.request_bytes = bytes;
        self
    }
}

/// A named high-level administrative task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationSpec {
    /// Identifier; equals the index in the suite that owns it.
    pub id: OpSpecId,
    /// Human-readable name (e.g. `compute.boot_from_image.v3`).
    pub name: String,
    /// Table 1 category.
    pub category: Category,
    /// Ordered API invocations.
    pub steps: Vec<Step>,
}

impl OperationSpec {
    /// Sequence of API ids, in invocation order.
    pub fn api_seq(&self) -> Vec<ApiId> {
        self.steps.iter().map(|s| s.api).collect()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the spec has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether any step invokes `api`.
    pub fn contains(&self, api: ApiId) -> bool {
        self.steps.iter().any(|s| s.api == api)
    }

    /// Validate the spec against a catalog: every step's API must exist,
    /// must not be a noise API, and the step's destination must be the
    /// service exposing the API. Returns all violations (empty = valid).
    pub fn validate(&self, catalog: &crate::catalog::Catalog) -> Vec<String> {
        let mut problems = Vec::new();
        if self.steps.is_empty() {
            problems.push(format!("{}: operation has no steps", self.name));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.api.index() >= catalog.len() {
                problems.push(format!("{} step {i}: unknown API {}", self.name, step.api));
                continue;
            }
            let def = catalog.get(step.api);
            if def.noise.is_some() {
                problems.push(format!(
                    "{} step {i}: noise API {} cannot be an operation step",
                    self.name,
                    def.label()
                ));
            }
            if def.service != step.dst {
                problems.push(format!(
                    "{} step {i}: destination {} but API {} is exposed by {}",
                    self.name,
                    step.dst,
                    def.label(),
                    def.service
                ));
            }
            if step.src == step.dst && !def.is_rpc() {
                problems.push(format!(
                    "{} step {i}: REST call from a service to itself ({})",
                    self.name, step.src
                ));
            }
        }
        problems
    }

    /// The set of services participating in this operation (callers and
    /// callees). RCA uses this to map an operation onto deployment nodes.
    pub fn services(&self) -> Vec<Service> {
        let mut out: Vec<Service> = Vec::new();
        for s in &self.steps {
            if !out.contains(&s.src) {
                out.push(s.src);
            }
            if !out.contains(&s.dst) {
                out.push(s.dst);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiId;

    fn spec() -> OperationSpec {
        OperationSpec {
            id: OpSpecId(0),
            name: "test.op".into(),
            category: Category::Compute,
            steps: vec![
                Step::new(ApiId(1), Service::Horizon, Service::Nova, LatencyClass::Medium),
                Step::new(ApiId(2), Service::Nova, Service::Glance, LatencyClass::Slow),
                Step::new(ApiId(1), Service::Horizon, Service::Nova, LatencyClass::Fast),
            ],
        }
    }

    #[test]
    fn table1_counts_sum_to_1200() {
        let total: usize = Category::ALL.iter().map(|c| c.table1_tests()).sum();
        assert_eq!(total, 1200);
    }

    #[test]
    fn api_seq_preserves_order_and_repeats() {
        assert_eq!(spec().api_seq(), vec![ApiId(1), ApiId(2), ApiId(1)]);
    }

    #[test]
    fn services_deduplicate() {
        let s = spec().services();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&Service::Horizon));
        assert!(s.contains(&Service::Nova));
        assert!(s.contains(&Service::Glance));
    }

    #[test]
    fn contains_checks_api_membership() {
        let sp = spec();
        assert!(sp.contains(ApiId(2)));
        assert!(!sp.contains(ApiId(99)));
    }

    #[test]
    fn validate_accepts_well_formed_specs() {
        let cat = crate::catalog::Catalog::openstack();
        let wf = crate::workflows::Workflows::new(cat.clone());
        let spec = wf.vm_create_spec(OpSpecId(0));
        assert!(spec.validate(&cat).is_empty(), "{:?}", spec.validate(&cat));
    }

    #[test]
    fn validate_flags_problems() {
        let cat = crate::catalog::Catalog::openstack();
        let noise = cat.noise_apis()[0];
        let bad = OperationSpec {
            id: OpSpecId(0),
            name: "bad".into(),
            category: Category::Misc,
            steps: vec![
                Step::new(ApiId(u16::MAX), Service::Horizon, Service::Nova, LatencyClass::Fast),
                Step::new(noise, Service::Horizon, cat.get(noise).service, LatencyClass::Fast),
            ],
        };
        let problems = bad.validate(&cat);
        assert!(problems.iter().any(|p| p.contains("unknown API")));
        assert!(problems.iter().any(|p| p.contains("noise API")));
        assert!(OperationSpec {
            id: OpSpecId(1),
            name: "empty".into(),
            category: Category::Misc,
            steps: vec![],
        }
        .validate(&cat)
        .iter()
        .any(|p| p.contains("no steps")));
    }

    #[test]
    fn with_bytes_overrides_request_size() {
        let s = Step::new(ApiId(1), Service::Horizon, Service::Nova, LatencyClass::Fast)
            .with_bytes(4096);
        assert_eq!(s.request_bytes, 4096);
    }
}

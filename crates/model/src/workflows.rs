//! Hand-written, realistic OpenStack workflow motifs.
//!
//! These encode real cross-component interaction sequences — most notably
//! the §2.1 VM-create walkthrough whose fingerprint the paper uses as its
//! running example (7 REST + 3 RPC invocations, Fig 4). The Tempest-like
//! suite generator composes these motifs into its 1200 operation specs, and
//! the canned fault scenarios in `gretel-sim` run them directly.

use crate::api::HttpMethod::*;
use crate::catalog::Catalog;
use crate::operation::{Category, LatencyClass, OpSpecId, OperationSpec, Step};
use crate::service::Service;
use std::sync::Arc;

/// Factory for workflow motifs over a given catalog.
#[derive(Clone)]
pub struct Workflows {
    cat: Arc<Catalog>,
}

impl Workflows {
    /// Create a factory bound to `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Workflows {
        Workflows { cat: catalog }
    }

    /// Access to the underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.cat
    }

    fn rest(
        &self,
        src: Service,
        dst: Service,
        method: crate::api::HttpMethod,
        uri: &str,
        lat: LatencyClass,
    ) -> Step {
        Step::new(self.cat.rest_expect(dst, method, uri), src, dst, lat)
    }

    fn rpc(&self, src: Service, dst: Service, method: &str, lat: LatencyClass) -> Step {
        Step::new(self.cat.rpc_expect(dst, method), src, dst, lat)
    }

    /// The §2.1 VM-create flow: Horizon POSTs to Nova, control moves to
    /// `nova-compute` via RPC, the image is fetched from Glance, network
    /// state is read from Neutron, a port is created and attached, and
    /// Neutron calls back into Nova when the VIF is plumbed.
    ///
    /// Fingerprint shape matches the paper's example: 7 REST + 3 RPC.
    pub fn vm_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            // (1) Dashboard initiates the boot.
            self.rest(Horizon, Nova, Post, "/v2.1/servers", LatencyClass::Medium)
                .with_bytes(1024),
            // (2) Controller hands off to the compute agent.
            self.rpc(Nova, NovaCompute, "build_and_run_instance", LatencyClass::Boot),
            // (3) Image fetch.
            self.rest(NovaCompute, Glance, Get, "/v2/images/{id}", LatencyClass::Slow),
            // (4) Network/port/security-group discovery.
            self.rest(Nova, Neutron, Get, "/v2.0/networks.json", LatencyClass::Fast),
            self.rest(Nova, Neutron, Get, "/v2.0/security-groups.json", LatencyClass::Fast),
            // L2 agent asks the Neutron server for device details — the two
            // RPCs the paper's §3.1.2 bottleneck scenario slows down.
            self.rpc(NeutronAgent, Neutron, "get_devices_details_list", LatencyClass::Medium),
            self.rpc(
                NeutronAgent,
                Neutron,
                "security_group_info_for_devices",
                LatencyClass::Medium,
            ),
            // (5) Create and attach the port.
            self.rest(Nova, Neutron, Post, "/v2.0/ports.json", LatencyClass::Medium)
                .with_bytes(512),
            self.rest(Nova, Neutron, Put, "/v2.0/ports/{id}", LatencyClass::Medium),
            // (7) Neutron signals VIF plug completion back to Nova.
            self.rest(Neutron, Nova, Post, "/v2.1/os-server-external-events", LatencyClass::Fast),
        ]
    }

    /// Delete a VM: dashboard DELETE, compute-agent teardown RPC, port
    /// cleanup on Neutron.
    pub fn vm_delete(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Delete, "/v2.1/servers/{id}", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "terminate_instance", LatencyClass::Slow),
            self.rest(Nova, Neutron, Get, "/v2.0/ports.json", LatencyClass::Fast),
            self.rest(Nova, Neutron, Delete, "/v2.0/ports/{id}", LatencyClass::Medium),
            self.rpc(Neutron, NeutronAgent, "port_delete", LatencyClass::Fast),
        ]
    }

    /// Reboot a VM.
    pub fn vm_reboot(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "reboot_instance", LatencyClass::Slow),
            self.rest(Horizon, Nova, Get, "/v2.1/servers/{id}", LatencyClass::Fast),
        ]
    }

    /// Snapshot a VM to a new image. Subsumes volume-snapshot machinery —
    /// the paper's §4 CFG example (`S1` subsumes `S2`).
    pub fn vm_snapshot(&self) -> Vec<Step> {
        use Service::*;
        let mut steps = vec![
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "snapshot_instance", LatencyClass::Boot),
            self.rest(NovaCompute, Glance, Post, "/v2/images", LatencyClass::Medium),
        ];
        steps.extend(self.volume_snapshot());
        steps.push(self.rest(
            NovaCompute,
            Glance,
            Put,
            "/v2/images/{id}/file",
            LatencyClass::Slow,
        ));
        steps.push(self.rest(Horizon, Glance, Get, "/v2/images/{id}", LatencyClass::Fast));
        steps
    }

    /// Cold-migrate a VM between compute hosts.
    pub fn vm_migrate(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, Nova, "select_destinations", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "prep_resize", LatencyClass::Slow),
            self.rpc(Nova, NovaCompute, "resize_instance", LatencyClass::Boot),
            self.rpc(Nova, NovaCompute, "finish_resize", LatencyClass::Slow),
            self.rest(Neutron, Nova, Post, "/v2.1/os-server-external-events", LatencyClass::Fast),
            self.rest(Horizon, Nova, Get, "/v2.1/servers/{id}", LatencyClass::Fast),
        ]
    }

    /// Create a blank volume (the paper's `S2`).
    pub fn volume_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Cinder, Post, "/v2/{tenant}/volumes", LatencyClass::Medium),
            self.rpc(Cinder, Cinder, "create_volume", LatencyClass::Slow),
            self.rest(Horizon, Cinder, Get, "/v2/{tenant}/volumes/{id}", LatencyClass::Fast),
        ]
    }

    /// Snapshot an existing volume.
    pub fn volume_snapshot(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Cinder, Post, "/v2/{tenant}/snapshots", LatencyClass::Medium),
            self.rpc(Cinder, Cinder, "create_snapshot", LatencyClass::Slow),
            self.rest(Horizon, Cinder, Get, "/v2/{tenant}/snapshots/{id}", LatencyClass::Fast),
        ]
    }

    /// Attach a volume to a server.
    pub fn volume_attach(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(
                Horizon,
                Nova,
                Post,
                "/v2.1/servers/{id}/os-volume_attachments",
                LatencyClass::Medium,
            ),
            self.rpc(Nova, NovaCompute, "reserve_block_device_name", LatencyClass::Fast),
            self.rpc(Cinder, Cinder, "initialize_connection", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "attach_volume", LatencyClass::Slow),
            self.rest(Nova, Cinder, Post, "/v2/{tenant}/volumes/{id}/action", LatencyClass::Fast),
        ]
    }

    /// Upload a new VM image via Glance (the §7.2.1 failed-upload scenario
    /// injects a 413 on the `PUT …/file` step).
    pub fn image_upload(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Glance, Post, "/v2/images", LatencyClass::Medium),
            self.rest(Horizon, Glance, Put, "/v2/images/{id}/file", LatencyClass::Slow)
                .with_bytes(1 << 20),
            self.rest(Horizon, Glance, Get, "/v2/images/{id}", LatencyClass::Fast),
        ]
    }

    /// List images (read-only Misc-style task).
    pub fn image_list(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Glance, Get, "/v2/images", LatencyClass::Fast),
            self.rest(Horizon, Glance, Get, "/v2/schemas/images", LatencyClass::Fast),
        ]
    }

    /// Create a network plus subnet.
    pub fn network_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Neutron, Post, "/v2.0/networks.json", LatencyClass::Medium),
            self.rpc(Neutron, NeutronAgent, "network_update", LatencyClass::Fast),
            self.rest(Horizon, Neutron, Post, "/v2.0/subnets.json", LatencyClass::Medium),
            self.rest(Horizon, Neutron, Get, "/v2.0/networks/{id}", LatencyClass::Fast),
        ]
    }

    /// Create a router and wire a subnet into it.
    pub fn router_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Neutron, Post, "/v2.0/routers.json", LatencyClass::Medium),
            self.rest(
                Horizon,
                Neutron,
                Put,
                "/v2.0/routers/{id}/add_router_interface",
                LatencyClass::Medium,
            ),
            self.rpc(Neutron, NeutronAgent, "port_update", LatencyClass::Fast),
            self.rest(Horizon, Neutron, Get, "/v2.0/routers/{id}", LatencyClass::Fast),
        ]
    }

    /// Associate a floating IP with a port.
    pub fn floating_ip_associate(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Neutron, Post, "/v2.0/floatingips.json", LatencyClass::Medium),
            self.rest(Horizon, Neutron, Put, "/v2.0/floatingips/{id}", LatencyClass::Medium),
            self.rpc(Neutron, NeutronAgent, "port_update", LatencyClass::Fast),
        ]
    }

    /// Create a security group and one rule.
    pub fn security_group_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Neutron, Post, "/v2.0/security-groups.json", LatencyClass::Fast),
            self.rest(
                Horizon,
                Neutron,
                Post,
                "/v2.0/security-group-rules.json",
                LatencyClass::Fast,
            ),
            self.rpc(Neutron, NeutronAgent, "security_groups_member_updated", LatencyClass::Fast),
        ]
    }

    /// Create a keypair (Misc-style management task).
    pub fn keypair_create(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Post, "/v2.1/os-keypairs", LatencyClass::Fast),
            self.rest(Horizon, Nova, Get, "/v2.1/os-keypairs/{id}", LatencyClass::Fast),
        ]
    }

    /// `cinder list` from the CLI — the §7.2.4 NTP-failure scenario. Every
    /// CLI call first authenticates against Keystone; that REST is where
    /// the 401 surfaces when NTP skew invalidates tokens.
    pub fn cinder_list(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Cinder, Keystone, Post, "/v3/auth/tokens", LatencyClass::Fast),
            self.rest(Horizon, Cinder, Get, "/v2/{tenant}/volumes/detail", LatencyClass::Fast),
        ]
    }

    /// Store an object in Swift.
    pub fn swift_put_object(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Swift, Put, "/v1/{account}/{container}", LatencyClass::Fast),
            self.rest(
                Horizon,
                Swift,
                Put,
                "/v1/{account}/{container}/{object}",
                LatencyClass::Medium,
            )
            .with_bytes(64 << 10),
            self.rest(
                Horizon,
                Swift,
                Head,
                "/v1/{account}/{container}/{object}",
                LatencyClass::Fast,
            ),
        ]
    }

    /// Read-only "query availability zones / services / limits" motif used
    /// by Misc tests.
    pub fn admin_queries(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Get, "/v2.1/os-availability-zone", LatencyClass::Fast),
            self.rest(Horizon, Nova, Get, "/v2.1/os-services", LatencyClass::Fast),
            self.rest(Horizon, Nova, Get, "/v2.1/limits", LatencyClass::Fast),
            self.rest(Horizon, Keystone, Get, "/v3/catalog", LatencyClass::Fast),
        ]
    }

    /// Resize a VM to a new flavor, then confirm — the full
    /// prep/resize/finish/confirm RPC chain.
    pub fn vm_resize(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Get, "/v2.1/flavors/detail", LatencyClass::Fast),
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, Nova, "select_destinations", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "prep_resize", LatencyClass::Slow),
            self.rpc(Nova, NovaCompute, "resize_instance", LatencyClass::Boot),
            self.rpc(Nova, NovaCompute, "finish_resize", LatencyClass::Slow),
            self.rest(Horizon, Nova, Get, "/v2.1/servers/{id}", LatencyClass::Fast),
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "confirm_resize", LatencyClass::Medium),
        ]
    }

    /// Rescue and unrescue a VM (boot from a rescue image to repair it).
    pub fn vm_rescue(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "rescue_instance", LatencyClass::Boot),
            self.rest(NovaCompute, Glance, Get, "/v2/images/{id}", LatencyClass::Slow),
            self.rest(Horizon, Nova, Get, "/v2.1/servers/{id}", LatencyClass::Fast),
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "unrescue_instance", LatencyClass::Slow),
        ]
    }

    /// Shelve a VM (snapshot + free the hypervisor) and unshelve it later.
    pub fn vm_shelve_unshelve(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "shelve_instance", LatencyClass::Boot),
            self.rest(NovaCompute, Glance, Post, "/v2/images", LatencyClass::Medium),
            self.rest(NovaCompute, Glance, Put, "/v2/images/{id}/file", LatencyClass::Slow),
            self.rest(Horizon, Nova, Post, "/v2.1/servers/{id}/action", LatencyClass::Medium),
            self.rpc(Nova, Nova, "select_destinations", LatencyClass::Medium),
            self.rpc(Nova, NovaCompute, "unshelve_instance", LatencyClass::Boot),
            self.rest(NovaCompute, Glance, Get, "/v2/images/{id}/file", LatencyClass::Slow),
        ]
    }

    /// Extend a volume while detached.
    pub fn volume_extend(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Cinder, Post, "/v2/{tenant}/volumes/{id}/action", LatencyClass::Medium),
            self.rpc(Cinder, Cinder, "extend_volume", LatencyClass::Slow),
            self.rest(Horizon, Cinder, Get, "/v2/{tenant}/volumes/{id}", LatencyClass::Fast),
        ]
    }

    /// Back a volume up to object storage and restore it.
    pub fn volume_backup_restore(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Cinder, Post, "/v2/{tenant}/backups", LatencyClass::Medium),
            self.rest(Cinder, Swift, Put, "/v1/{account}/{container}", LatencyClass::Fast),
            self.rest(Cinder, Swift, Put, "/v1/{account}/{container}/{object}", LatencyClass::Slow)
                .with_bytes(1 << 20),
            self.rest(Horizon, Cinder, Get, "/v2/{tenant}/backups/{id}", LatencyClass::Fast),
            self.rest(Horizon, Cinder, Post, "/v2/{tenant}/backups/{id}/restore", LatencyClass::Medium),
            self.rest(Cinder, Swift, Get, "/v1/{account}/{container}/{object}", LatencyClass::Slow),
            self.rpc(Cinder, Cinder, "create_volume", LatencyClass::Slow),
        ]
    }

    /// Share an image with another project (member workflow).
    pub fn image_share(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Glance, Post, "/v2/images/{id}/members", LatencyClass::Fast),
            self.rest(Horizon, Glance, Get, "/v2/images/{id}/members", LatencyClass::Fast),
            self.rest(Horizon, Glance, Put, "/v2/images/{id}/members/{mid}", LatencyClass::Fast),
        ]
    }

    /// Onboard a new project: create the project, a user, and grant a
    /// role (Keystone administration).
    pub fn project_onboarding(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Keystone, Post, "/v3/projects", LatencyClass::Fast),
            self.rest(Horizon, Keystone, Post, "/v3/users", LatencyClass::Fast),
            self.rest(
                Horizon,
                Keystone,
                Put,
                "/v3/projects/{id}/users/{uid}/roles/{rid}",
                LatencyClass::Fast,
            ),
            self.rest(Horizon, Keystone, Get, "/v3/role_assignments", LatencyClass::Fast),
        ]
    }

    /// Full Swift container lifecycle: create, upload, list, download,
    /// delete.
    pub fn swift_container_lifecycle(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(Horizon, Swift, Put, "/v1/{account}/{container}", LatencyClass::Fast),
            self.rest(Horizon, Swift, Put, "/v1/{account}/{container}/{object}", LatencyClass::Medium)
                .with_bytes(256 << 10),
            self.rest(Horizon, Swift, Get, "/v1/{account}/{container}", LatencyClass::Fast),
            self.rest(Horizon, Swift, Get, "/v1/{account}/{container}/{object}", LatencyClass::Medium),
            self.rest(Horizon, Swift, Delete, "/v1/{account}/{container}/{object}", LatencyClass::Fast),
            self.rest(Horizon, Swift, Delete, "/v1/{account}/{container}", LatencyClass::Fast),
        ]
    }

    /// Tear a router down: detach the interface, delete the router.
    pub fn router_teardown(&self) -> Vec<Step> {
        use Service::*;
        vec![
            self.rest(
                Horizon,
                Neutron,
                Put,
                "/v2.0/routers/{id}/remove_router_interface",
                LatencyClass::Medium,
            ),
            self.rpc(Neutron, NeutronAgent, "port_delete", LatencyClass::Fast),
            self.rest(Horizon, Neutron, Delete, "/v2.0/routers/{id}", LatencyClass::Medium),
        ]
    }

    /// Named canonical spec: the VM-create operation used throughout the
    /// paper's examples.
    pub fn vm_create_spec(&self, id: OpSpecId) -> OperationSpec {
        OperationSpec {
            id,
            name: "compute.vm_create.canonical".into(),
            category: Category::Compute,
            steps: self.vm_create(),
        }
    }

    /// Named canonical spec: image upload (§7.2.1).
    pub fn image_upload_spec(&self, id: OpSpecId) -> OperationSpec {
        OperationSpec {
            id,
            name: "image.upload.canonical".into(),
            category: Category::Image,
            steps: self.image_upload(),
        }
    }

    /// Named canonical spec: `cinder list` (§7.2.4).
    pub fn cinder_list_spec(&self, id: OpSpecId) -> OperationSpec {
        OperationSpec {
            id,
            name: "storage.cinder_list.canonical".into(),
            category: Category::Storage,
            steps: self.cinder_list(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn wf() -> Workflows {
        Workflows::new(Catalog::openstack())
    }

    #[test]
    fn vm_create_matches_paper_shape() {
        let w = wf();
        let steps = w.vm_create();
        let rest = steps.iter().filter(|s| !w.catalog().get(s.api).is_rpc()).count();
        let rpc = steps.iter().filter(|s| w.catalog().get(s.api).is_rpc()).count();
        assert_eq!(rest, 7, "paper: VM create fingerprint has 7 REST invocations");
        assert_eq!(rpc, 3, "paper: VM create fingerprint has 3 RPC invocations");
    }

    #[test]
    fn vm_snapshot_subsumes_volume_snapshot() {
        // Paper §4: S2 (volume snapshot machinery) is subsumed by S1 (VM
        // snapshot): S1 -> D S2 E in the CFG example.
        let w = wf();
        let snap: Vec<_> = w.vm_snapshot().iter().map(|s| s.api).collect();
        let vol: Vec<_> = w.volume_snapshot().iter().map(|s| s.api).collect();
        let pos = snap
            .windows(vol.len())
            .position(|win| win == vol.as_slice())
            .expect("volume_snapshot embedded in vm_snapshot");
        assert!(pos > 0, "subsumed operation is preceded by extra terminals");
        assert!(pos + vol.len() < snap.len(), "and followed by extra terminals");
    }

    #[test]
    fn all_motifs_resolve_against_catalog() {
        let w = wf();
        let motifs: Vec<Vec<Step>> = vec![
            w.vm_create(),
            w.vm_delete(),
            w.vm_reboot(),
            w.vm_snapshot(),
            w.vm_migrate(),
            w.volume_create(),
            w.volume_snapshot(),
            w.volume_attach(),
            w.image_upload(),
            w.image_list(),
            w.network_create(),
            w.router_create(),
            w.floating_ip_associate(),
            w.security_group_create(),
            w.keypair_create(),
            w.cinder_list(),
            w.swift_put_object(),
            w.admin_queries(),
            w.vm_resize(),
            w.vm_rescue(),
            w.vm_shelve_unshelve(),
            w.volume_extend(),
            w.volume_backup_restore(),
            w.image_share(),
            w.project_onboarding(),
            w.swift_container_lifecycle(),
            w.router_teardown(),
        ];
        for m in motifs {
            assert!(!m.is_empty());
            for step in m {
                // get() panics on an unknown id, so this validates ids.
                let def = w.catalog().get(step.api);
                assert!(def.noise.is_none(), "motifs must not contain noise APIs");
            }
        }
    }

    #[test]
    fn vm_create_contains_neutron_bottleneck_rpcs() {
        // §3.1.2 detects latency anomalies on exactly these two RPCs.
        let w = wf();
        let ids: Vec<_> = w.vm_create().iter().map(|s| s.api).collect();
        let g = w.catalog().rpc_expect(Service::Neutron, "get_devices_details_list");
        let s = w.catalog().rpc_expect(Service::Neutron, "security_group_info_for_devices");
        assert!(ids.contains(&g));
        assert!(ids.contains(&s));
    }

    #[test]
    fn resize_chain_is_ordered() {
        // prep -> resize -> finish -> confirm must appear in that order.
        let w = wf();
        let ids: Vec<_> = w.vm_resize().iter().map(|s| s.api).collect();
        let order = ["prep_resize", "resize_instance", "finish_resize", "confirm_resize"];
        let pos: Vec<usize> = order
            .iter()
            .map(|m| {
                let api = w.catalog().rpc_expect(Service::NovaCompute, m);
                ids.iter().position(|&a| a == api).expect("rpc present")
            })
            .collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "resize chain out of order: {pos:?}");
    }

    #[test]
    fn shelve_touches_glance_both_ways() {
        let w = wf();
        let c = w.catalog();
        let ids: Vec<_> = w.vm_shelve_unshelve().iter().map(|s| s.api).collect();
        let up = c.rest_expect(Service::Glance, crate::api::HttpMethod::Put, "/v2/images/{id}/file");
        let down = c.rest_expect(Service::Glance, crate::api::HttpMethod::Get, "/v2/images/{id}/file");
        assert!(ids.contains(&up), "shelve uploads the snapshot");
        assert!(ids.contains(&down), "unshelve downloads it back");
    }

    #[test]
    fn backup_restore_round_trips_through_swift() {
        let w = wf();
        let c = w.catalog();
        let steps = w.volume_backup_restore();
        let put = c.rest_expect(
            Service::Swift,
            crate::api::HttpMethod::Put,
            "/v1/{account}/{container}/{object}",
        );
        let get = c.rest_expect(
            Service::Swift,
            crate::api::HttpMethod::Get,
            "/v1/{account}/{container}/{object}",
        );
        let ids: Vec<_> = steps.iter().map(|s| s.api).collect();
        let put_pos = ids.iter().position(|&a| a == put).unwrap();
        let get_pos = ids.iter().position(|&a| a == get).unwrap();
        assert!(put_pos < get_pos, "backup before restore");
    }

    #[test]
    fn canonical_specs_have_categories() {
        let w = wf();
        assert_eq!(w.vm_create_spec(OpSpecId(0)).category, Category::Compute);
        assert_eq!(w.image_upload_spec(OpSpecId(1)).category, Category::Image);
        assert_eq!(w.cinder_list_spec(OpSpecId(2)).category, Category::Storage);
    }
}

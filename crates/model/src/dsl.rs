//! A small text DSL for defining operations.
//!
//! GRETEL's Limitation 4 notes its coverage "is predicated on the
//! completeness of the test suite": operators must be able to add
//! operations for workloads Tempest does not exercise. This DSL lets them
//! define operations in plain text — no recompilation — which the CLI can
//! characterize into fingerprints on the spot.
//!
//! ```text
//! # Comments start with '#'.
//! operation compute.boot_and_tag compute
//!   horizon -> nova: POST /v2.1/servers [medium, 1024b]
//!   nova -> nova-compute: rpc build_and_run_instance [boot]
//!   nova -> neutron: GET /v2.0/networks.json
//!   horizon -> nova: POST /v2.1/servers/{id}/metadata
//! ```
//!
//! One `operation <name> <category>` header starts each operation; each
//! following indented line is a step: `src -> dst: METHOD uri` for REST or
//! `src -> dst: rpc method` for RPC, with an optional
//! `[latency]`/`[latency, <N>b]` suffix (latency ∈ fast|medium|slow|boot).

use crate::catalog::Catalog;
use crate::operation::{Category, LatencyClass, OpSpecId, OperationSpec, Step};
use crate::service::Service;
use std::fmt;

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Line the problem is on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError { line, message: message.into() }
}

fn parse_category(s: &str) -> Option<Category> {
    Category::ALL.iter().copied().find(|c| c.name().eq_ignore_ascii_case(s))
}

fn parse_latency(s: &str) -> Option<LatencyClass> {
    Some(match s {
        "fast" => LatencyClass::Fast,
        "medium" => LatencyClass::Medium,
        "slow" => LatencyClass::Slow,
        "boot" => LatencyClass::Boot,
        _ => return None,
    })
}

/// Parse `[latency]` / `[latency, Nb]` suffixes; returns (latency, bytes).
fn parse_attrs(line: usize, attrs: &str) -> Result<(LatencyClass, Option<u32>), DslError> {
    let inner = attrs
        .strip_prefix('[')
        .and_then(|a| a.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("malformed attributes '{attrs}'")))?;
    let mut latency = LatencyClass::Fast;
    let mut bytes = None;
    for part in inner.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if let Some(l) = parse_latency(part) {
            latency = l;
        } else if let Some(b) = part.strip_suffix('b') {
            bytes = Some(
                b.parse::<u32>()
                    .map_err(|_| err(line, format!("bad byte count '{part}'")))?,
            );
        } else {
            return Err(err(line, format!("unknown attribute '{part}'")));
        }
    }
    Ok((latency, bytes))
}

fn parse_step(lineno: usize, catalog: &Catalog, line: &str) -> Result<Step, DslError> {
    // src -> dst: REST|rpc ... [attrs]
    let (endpoints, rest) = line
        .split_once(':')
        .ok_or_else(|| err(lineno, "expected 'src -> dst: <invocation>'"))?;
    let (src_s, dst_s) = endpoints
        .split_once("->")
        .ok_or_else(|| err(lineno, "expected 'src -> dst'"))?;
    let src = Service::from_name(src_s.trim())
        .ok_or_else(|| err(lineno, format!("unknown service '{}'", src_s.trim())))?;
    let dst = Service::from_name(dst_s.trim())
        .ok_or_else(|| err(lineno, format!("unknown service '{}'", dst_s.trim())))?;

    // Split off optional attributes.
    let rest = rest.trim();
    let (invocation, attrs) = match rest.find('[') {
        Some(i) => (rest[..i].trim(), Some(rest[i..].trim())),
        None => (rest, None),
    };
    let (latency, bytes) = match attrs {
        Some(a) => parse_attrs(lineno, a)?,
        None => (LatencyClass::Fast, None),
    };

    let mut parts = invocation.split_whitespace();
    let kind = parts.next().ok_or_else(|| err(lineno, "missing invocation"))?;
    let target = parts.next().ok_or_else(|| err(lineno, "missing URI or RPC method"))?;
    if parts.next().is_some() {
        return Err(err(lineno, "trailing tokens after invocation"));
    }

    let api = if kind.eq_ignore_ascii_case("rpc") {
        catalog
            .rpc(dst, target)
            .ok_or_else(|| err(lineno, format!("no RPC '{target}' on {dst}")))?
    } else {
        let method = match kind.to_ascii_uppercase().as_str() {
            "GET" => crate::api::HttpMethod::Get,
            "POST" => crate::api::HttpMethod::Post,
            "PUT" => crate::api::HttpMethod::Put,
            "DELETE" => crate::api::HttpMethod::Delete,
            "PATCH" => crate::api::HttpMethod::Patch,
            "HEAD" => crate::api::HttpMethod::Head,
            other => return Err(err(lineno, format!("unknown method '{other}'"))),
        };
        catalog
            .rest(dst, method, target)
            .ok_or_else(|| err(lineno, format!("no REST API {kind} {target} on {dst}")))?
    };
    let mut step = Step::new(api, src, dst, latency);
    if let Some(b) = bytes {
        step = step.with_bytes(b);
    }
    Ok(step)
}

/// Parse a DSL document into operation specs with ids starting at
/// `first_id`. Every parsed spec is validated against the catalog.
///
/// ```
/// use gretel_model::{Catalog, OpSpecId, dsl};
///
/// let catalog = Catalog::openstack();
/// let doc = "operation misc.catalog_probe misc\n  horizon -> keystone: GET /v3\n";
/// let specs = dsl::parse(&catalog, doc, OpSpecId(0)).unwrap();
/// assert_eq!(specs[0].name, "misc.catalog_probe");
/// assert_eq!(specs[0].len(), 1);
/// ```
pub fn parse(
    catalog: &Catalog,
    text: &str,
    first_id: OpSpecId,
) -> Result<Vec<OperationSpec>, DslError> {
    let mut specs: Vec<OperationSpec> = Vec::new();
    let mut current: Option<(usize, OperationSpec)> = None;

    let finish = |current: &mut Option<(usize, OperationSpec)>,
                      specs: &mut Vec<OperationSpec>|
     -> Result<(), DslError> {
        if let Some((header_line, spec)) = current.take() {
            let problems = spec.validate(catalog);
            if let Some(p) = problems.first() {
                return Err(err(header_line, format!("invalid operation: {p}")));
            }
            specs.push(spec);
        }
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(head) = line.trim().strip_prefix("operation ") {
            finish(&mut current, &mut specs)?;
            let mut parts = head.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(lineno, "operation needs a name"))?
                .to_string();
            let cat_s = parts.next().ok_or_else(|| err(lineno, "operation needs a category"))?;
            let category = parse_category(cat_s)
                .ok_or_else(|| err(lineno, format!("unknown category '{cat_s}'")))?;
            if parts.next().is_some() {
                return Err(err(lineno, "trailing tokens after operation header"));
            }
            let id = OpSpecId(first_id.0 + specs.len() as u16);
            current = Some((lineno, OperationSpec { id, name, category, steps: Vec::new() }));
        } else {
            let (_, spec) = current
                .as_mut()
                .ok_or_else(|| err(lineno, "step before any 'operation' header"))?;
            spec.steps.push(parse_step(lineno, catalog, line.trim())?);
        }
    }
    finish(&mut current, &mut specs)?;
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::HttpMethod;

    const DOC: &str = r#"
# A custom operation not covered by Tempest.
operation compute.boot_and_tag compute
  horizon -> nova: POST /v2.1/servers [medium, 1024b]
  nova -> nova-compute: rpc build_and_run_instance [boot]
  nova -> neutron: GET /v2.0/networks.json
  horizon -> nova: POST /v2.1/servers/{id}/metadata

operation storage.quick_list storage
  horizon -> cinder: GET /v2/{tenant}/volumes
"#;

    #[test]
    fn parses_a_document() {
        let cat = Catalog::openstack();
        let specs = parse(&cat, DOC, OpSpecId(0)).expect("parses");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "compute.boot_and_tag");
        assert_eq!(specs[0].category, Category::Compute);
        assert_eq!(specs[0].len(), 4);
        assert_eq!(specs[0].steps[0].request_bytes, 1024);
        assert_eq!(specs[0].steps[0].latency, LatencyClass::Medium);
        assert_eq!(specs[0].steps[1].latency, LatencyClass::Boot);
        assert_eq!(specs[1].id, OpSpecId(1));
        // Steps resolve to real catalog APIs.
        let servers = cat.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers");
        assert_eq!(specs[0].steps[0].api, servers);
    }

    #[test]
    fn first_id_offsets_ids() {
        let cat = Catalog::openstack();
        let specs = parse(&cat, DOC, OpSpecId(100)).unwrap();
        assert_eq!(specs[0].id, OpSpecId(100));
        assert_eq!(specs[1].id, OpSpecId(101));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cat = Catalog::openstack();
        let bad = "operation x compute\n  horizon -> nova: FROB /v2.1/servers\n";
        let e = parse(&cat, bad, OpSpecId(0)).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("FROB"));

        let e = parse(&cat, "  horizon -> nova: GET /v2.1/servers\n", OpSpecId(0)).unwrap_err();
        assert!(e.message.contains("before any"));

        let e = parse(&cat, "operation x nowhere\n", OpSpecId(0)).unwrap_err();
        assert!(e.message.contains("unknown category"));

        let e = parse(&cat, "operation x compute\n  mars -> nova: GET /v2.1/servers\n", OpSpecId(0))
            .unwrap_err();
        assert!(e.message.contains("unknown service 'mars'"));

        let e = parse(&cat, "operation x compute\n  horizon -> nova: GET /no/such\n", OpSpecId(0))
            .unwrap_err();
        assert!(e.message.contains("no REST API"));
    }

    #[test]
    fn empty_operations_are_rejected() {
        let cat = Catalog::openstack();
        let e = parse(&cat, "operation x compute\n", OpSpecId(0)).unwrap_err();
        assert!(e.message.contains("no steps"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cat = Catalog::openstack();
        let doc = "\n# top comment\noperation a misc # trailing\n  horizon -> keystone: GET /v3\n";
        let specs = parse(&cat, doc, OpSpecId(0)).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].len(), 1);
    }

    #[test]
    fn parsed_specs_execute_and_fingerprint() {
        // A DSL-defined operation round-trips through the whole stack.
        let cat = Catalog::openstack();
        let specs = parse(&cat, DOC, OpSpecId(0)).unwrap();
        for s in &specs {
            assert!(s.validate(&cat).is_empty());
        }
    }
}

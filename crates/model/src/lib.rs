//! # gretel-model — OpenStack domain model
//!
//! The pure, I/O-free domain model shared by every other crate in the
//! GRETEL workspace:
//!
//! * [`service`] — OpenStack component services, nodes and dependencies;
//! * [`api`] — the finite REST/RPC API alphabet;
//! * [`catalog`] — the full 643-public-API OpenStack catalog;
//! * [`symbol`] — API ↔ Unicode symbol encoding for regex matching;
//! * [`message`] — captured network messages and payload rendering;
//! * [`operation`] — high-level administrative operations as API sequences;
//! * [`workflows`] — hand-written real workflow motifs (incl. §2.1 VM create);
//! * [`tempest`] — the synthetic 1200-test integration suite (Table 1).
//!
//! Nothing here performs I/O or spawns threads; everything is
//! deterministic given a seed.

#![warn(missing_docs)]

pub mod api;
pub mod catalog;
pub mod dsl;
pub mod message;
pub mod operation;
pub mod service;
pub mod symbol;
pub mod tempest;
pub mod workflows;

pub use api::{ApiDef, ApiId, ApiKind, HttpMethod, NoiseClass, RpcStyle};
pub use catalog::{Catalog, PUBLIC_REST_APIS};
pub use dsl::{parse as parse_dsl, DslError};
pub use message::{ConnKey, Direction, Message, MessageId, OpInstanceId, ProjectId, WireKind};
pub use operation::{Category, LatencyClass, OpSpecId, OperationSpec, Step};
pub use service::{Dependency, NodeId, Service};
pub use tempest::TempestSuite;
pub use workflows::Workflows;

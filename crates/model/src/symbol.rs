//! Unicode symbol encoding of APIs.
//!
//! The paper (§6) assigns each of the 643 unique OpenStack APIs a Unicode
//! symbol so that operation fingerprints and message snapshots become plain
//! strings, and fingerprint matching becomes (relaxed) regular-expression
//! matching over those strings. We map [`ApiId`] `n` onto the code point
//! `BASE + n`, chosen inside the CJK Unified Ideographs block: a contiguous
//! run of thousands of assigned, non-combining code points, so every id in
//! a realistic catalog gets a distinct, printable `char`.

use crate::api::ApiId;

/// First code point used for API symbols (CJK Unified Ideographs).
pub const SYMBOL_BASE: u32 = 0x4E00;

/// Largest encodable id. The CJK block is contiguous well beyond this.
pub const MAX_ENCODABLE: u16 = 20_000;

/// Encode an API id as its Unicode symbol.
///
/// # Panics
/// Panics if `id` exceeds [`MAX_ENCODABLE`]; catalogs are far smaller.
#[inline]
pub fn encode(id: ApiId) -> char {
    assert!(id.0 <= MAX_ENCODABLE, "ApiId {} out of symbol range", id.0);
    // SAFETY of unwrap: BASE..=BASE+MAX_ENCODABLE lies inside the CJK
    // Unified Ideographs range (U+4E00..=U+9FFF) plus the following blocks,
    // all valid scalar values (no surrogates below U+D800).
    char::from_u32(SYMBOL_BASE + id.0 as u32).expect("valid scalar value")
}

/// Decode a symbol back to its API id, or `None` if the char is not an API
/// symbol.
#[inline]
pub fn decode(c: char) -> Option<ApiId> {
    let v = c as u32;
    if (SYMBOL_BASE..=SYMBOL_BASE + MAX_ENCODABLE as u32).contains(&v) {
        Some(ApiId((v - SYMBOL_BASE) as u16))
    } else {
        None
    }
}

/// Encode a sequence of API ids as a symbol string.
pub fn encode_seq(ids: &[ApiId]) -> String {
    ids.iter().map(|&id| encode(id)).collect()
}

/// Decode a symbol string back into API ids. Non-symbol characters are
/// skipped (they cannot be produced by [`encode_seq`]).
pub fn decode_seq(s: &str) -> Vec<ApiId> {
    s.chars().filter_map(decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_small_ids() {
        for n in 0..2048u16 {
            let id = ApiId(n);
            assert_eq!(decode(encode(id)), Some(id));
        }
    }

    #[test]
    fn distinct_ids_get_distinct_symbols() {
        let a = encode(ApiId(0));
        let b = encode(ApiId(1));
        let z = encode(ApiId(642));
        assert_ne!(a, b);
        assert_ne!(a, z);
        assert_ne!(b, z);
    }

    #[test]
    fn non_symbols_decode_to_none() {
        assert_eq!(decode('a'), None);
        assert_eq!(decode(' '), None);
        assert_eq!(decode('\u{4DFF}'), None); // one below BASE
    }

    #[test]
    fn sequence_round_trip() {
        let ids = vec![ApiId(5), ApiId(0), ApiId(642), ApiId(5)];
        let s = encode_seq(&ids);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(decode_seq(&s), ids);
    }

    #[test]
    #[should_panic(expected = "out of symbol range")]
    fn encode_out_of_range_panics() {
        encode(ApiId(MAX_ENCODABLE + 1));
    }
}

//! OpenStack component services and infrastructure dependencies.
//!
//! GRETEL models an OpenStack deployment as a set of *services* placed on
//! physical *nodes*. Inter-service communication happens via REST; intra-
//! service communication via RPC routed through the RabbitMQ broker (paper
//! §2). Infrastructure dependencies (MySQL, RabbitMQ, NTP, libvirt, the
//! Neutron L2 agent, ...) are modelled as [`Dependency`] values that root
//! cause analysis can report as faulty.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An OpenStack component service (or controller/agent split of one).
///
/// The split of Nova and Neutron into controller and per-compute-node agent
/// halves mirrors the paper's deployment (Fig 1): the Nova controller talks
/// to `nova-compute` on the compute nodes via RPC through RabbitMQ, and the
/// Neutron server talks to its L2 agents the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Service {
    /// Web dashboard; the origin of most administrative operations.
    Horizon,
    /// Identity service; authenticates every other service.
    Keystone,
    /// Compute controller (nova-api, nova-scheduler, nova-conductor).
    Nova,
    /// Per-compute-node compute agent (`nova-compute`).
    NovaCompute,
    /// Networking controller (neutron-server).
    Neutron,
    /// Per-compute-node L2 agent (e.g. `neutron-plugin-linuxbridge-agent`).
    NeutronAgent,
    /// Image catalog and repository.
    Glance,
    /// Block storage controller.
    Cinder,
    /// Object/blob store.
    Swift,
    /// RPC message broker; every RPC transits this service.
    RabbitMq,
    /// Shared relational database for all services.
    MySql,
    /// Time synchronisation daemon; required on every node.
    Ntp,
}

impl Service {
    /// All modelled services, in a stable order.
    pub const ALL: [Service; 12] = [
        Service::Horizon,
        Service::Keystone,
        Service::Nova,
        Service::NovaCompute,
        Service::Neutron,
        Service::NeutronAgent,
        Service::Glance,
        Service::Cinder,
        Service::Swift,
        Service::RabbitMq,
        Service::MySql,
        Service::Ntp,
    ];

    /// Services that expose public REST APIs of their own.
    pub const API_SERVICES: [Service; 7] = [
        Service::Horizon,
        Service::Keystone,
        Service::Nova,
        Service::Neutron,
        Service::Glance,
        Service::Cinder,
        Service::Swift,
    ];

    /// Dense index of this service in [`Service::ALL`] (stable; used by
    /// wire codecs).
    pub fn index(self) -> u8 {
        Service::ALL.iter().position(|&s| s == self).expect("service in ALL") as u8
    }

    /// Inverse of [`Service::index`].
    pub fn from_index(i: u8) -> Option<Service> {
        Service::ALL.get(i as usize).copied()
    }

    /// Inverse of [`Service::name`].
    pub fn from_name(name: &str) -> Option<Service> {
        Service::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The canonical lowercase name used in URIs, logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Service::Horizon => "horizon",
            Service::Keystone => "keystone",
            Service::Nova => "nova",
            Service::NovaCompute => "nova-compute",
            Service::Neutron => "neutron",
            Service::NeutronAgent => "neutron-linuxbridge-agent",
            Service::Glance => "glance",
            Service::Cinder => "cinder",
            Service::Swift => "swift",
            Service::RabbitMq => "rabbitmq",
            Service::MySql => "mysql",
            Service::Ntp => "ntp",
        }
    }

    /// The Python HTTP client other services use to reach this one
    /// (paper §2: "each OpenStack component has a corresponding HTTP
    /// client"). Only API services have one.
    pub fn http_client(self) -> Option<&'static str> {
        match self {
            Service::Nova | Service::NovaCompute => Some("novaclient"),
            Service::Neutron | Service::NeutronAgent => Some("neutronclient"),
            Service::Glance => Some("glanceclient"),
            Service::Cinder => Some("cinderclient"),
            Service::Swift => Some("swiftclient"),
            Service::Keystone => Some("keystoneclient"),
            _ => None,
        }
    }

    /// Whether this service is an infrastructure dependency rather than an
    /// OpenStack component proper.
    pub fn is_infrastructure(self) -> bool {
        matches!(self, Service::RabbitMq | Service::MySql | Service::Ntp)
    }

    /// The controller-side service for an agent, or `self` when it already
    /// is a controller. RPC request/response pairs are attributed to the
    /// controller service.
    pub fn controller(self) -> Service {
        match self {
            Service::NovaCompute => Service::Nova,
            Service::NeutronAgent => Service::Neutron,
            s => s,
        }
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a physical node in the deployment.
///
/// The simulator assigns these; the model only needs node identity so that
/// messages can carry their endpoints and root cause analysis can map an
/// operation onto the nodes it touches.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A software dependency whose health GRETEL watches on each node
/// (paper §5.1: "GRETEL maintains watchers on third-party software
/// dependencies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dependency {
    /// An OpenStack service process itself (e.g. `nova-compute` on a host).
    ServiceProcess(Service),
    /// TCP-level reachability of the MySQL server.
    MySqlReachable,
    /// TCP-level reachability of the RabbitMQ broker.
    RabbitMqReachable,
    /// A running, synchronised NTP agent on the node.
    NtpAgent,
    /// The libvirt virtualisation daemon (compute nodes only).
    Libvirt,
}

impl Dependency {
    /// Human-readable name used in diagnosis reports.
    pub fn name(self) -> String {
        match self {
            Dependency::ServiceProcess(s) => format!("{}-service", s.name()),
            Dependency::MySqlReachable => "mysql-reachability".to_string(),
            Dependency::RabbitMqReachable => "rabbitmq-reachability".to_string(),
            Dependency::NtpAgent => "ntp-agent".to_string(),
            Dependency::Libvirt => "libvirt".to_string(),
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_services_have_unique_names() {
        let mut names: Vec<_> = Service::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Service::ALL.len());
    }

    #[test]
    fn name_round_trips() {
        for s in Service::ALL {
            assert_eq!(Service::from_name(s.name()), Some(s));
        }
        assert_eq!(Service::from_name("unknown"), None);
    }

    #[test]
    fn api_services_are_not_infrastructure() {
        for s in Service::API_SERVICES {
            assert!(!s.is_infrastructure(), "{s} should not be infrastructure");
        }
    }

    #[test]
    fn agents_resolve_to_controllers() {
        assert_eq!(Service::NovaCompute.controller(), Service::Nova);
        assert_eq!(Service::NeutronAgent.controller(), Service::Neutron);
        assert_eq!(Service::Glance.controller(), Service::Glance);
    }

    #[test]
    fn infrastructure_services_have_no_http_client() {
        assert_eq!(Service::RabbitMq.http_client(), None);
        assert_eq!(Service::MySql.http_client(), None);
        assert_eq!(Service::Ntp.http_client(), None);
    }

    #[test]
    fn dependency_names_are_distinct() {
        let deps = [
            Dependency::ServiceProcess(Service::Nova),
            Dependency::ServiceProcess(Service::Neutron),
            Dependency::MySqlReachable,
            Dependency::RabbitMqReachable,
            Dependency::NtpAgent,
            Dependency::Libvirt,
        ];
        let mut names: Vec<_> = deps.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), deps.len());
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
    }
}

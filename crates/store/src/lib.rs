//! # gretel-store — durable state for the GRETEL analyzer
//!
//! The fault-tolerant analyzer service checkpoints its ingest state and
//! releases diagnoses through an append-only record log. This crate owns
//! that log: a common record format (length-prefixed, FNV-1a-checksummed),
//! a [`Store`] trait over it, and two backends —
//!
//! * [`MemStore`]: the whole log in one `Vec<u8>`. This is the PR 3
//!   in-process journal behavior; tests and the in-process recovery
//!   experiment arms use it.
//! * [`FileStore`]: the log as append-only segment files in a directory,
//!   with atomic tmp+rename rotation, torn-tail truncation on open and a
//!   configurable [`SyncPolicy`]. This is what lets the *whole process*
//!   die and restart without losing committed state.
//!
//! ## Record format
//!
//! Every record is `u32 len | u64 fnv1a(payload) | u8 kind | payload`,
//! little-endian ([`RECORD_HEADER`] = 13 bytes of header). The length
//! prefix keeps a scan aligned past a corrupted payload, so one bad
//! record never hides the records after it; the checksum makes corruption
//! detectable, so readers use the newest record that still verifies. A
//! record whose bytes end early (a torn write) is structurally incomplete
//! and is not yielded at all.
//!
//! Readers never interpret payloads — kinds and payload codecs belong to
//! the caller (`gretel-core` defines checkpoint, diagnosis-release and
//! fingerprint-library records on top of this).
//!
//! ```
//! use gretel_store::{MemStore, Store};
//!
//! let mut s = MemStore::new();
//! s.append(1, b"first").unwrap();
//! s.append(1, b"second").unwrap();
//! assert_eq!(s.latest_valid(1), Some(&b"second"[..]));
//! assert_eq!(s.record_counts(), (2, 0));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod file;

pub use file::{FileStore, FileStoreConfig, SyncPolicy};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An appended payload does not fit the record format's u32 length
    /// prefix (or the backend's configured bound). Appending it would have
    /// silently truncated the length prefix and desynchronized every scan
    /// after it, so it is rejected up front and the store is unchanged.
    Oversized {
        /// The rejected payload length.
        len: usize,
        /// The largest accepted payload length.
        max: usize,
    },
    /// A filesystem operation failed.
    Io {
        /// Which operation (`"open"`, `"write"`, `"rotate"`, ...).
        op: &'static str,
        /// The underlying error, rendered.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Oversized { len, max } => {
                write!(f, "record payload of {len} bytes exceeds the store bound of {max}")
            }
            StoreError::Io { op, detail } => write!(f, "store {op} failed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn io(op: &'static str, e: std::io::Error) -> StoreError {
        StoreError::Io { op, detail: e.to_string() }
    }
}

/// Per-record header: u32 payload length, u64 FNV-1a checksum, u8 kind.
pub const RECORD_HEADER: usize = 4 + 8 + 1;

/// FNV-1a 64-bit over a byte slice — the record checksum. Not
/// cryptographic; it detects the corruption chaos injectors (and real
/// disks) produce: flipped or torn bytes inside a record.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One structurally complete record yielded by [`records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// Byte offset of the record header in the scanned buffer.
    pub offset: usize,
    /// The caller-defined record kind byte.
    pub kind: u8,
    /// The payload bytes (possibly corrupt — see `valid`).
    pub payload: &'a [u8],
    /// Whether the payload checksum verifies.
    pub valid: bool,
}

/// Walk all structurally complete records in a log buffer, oldest first.
/// A torn tail (bytes that end before the record they start is complete)
/// is not yielded.
pub fn records(buf: &[u8]) -> Records<'_> {
    Records { buf, pos: 0 }
}

/// Iterator returned by [`records`].
#[derive(Debug, Clone)]
pub struct Records<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Records<'a> {
    type Item = Record<'a>;

    fn next(&mut self) -> Option<Record<'a>> {
        if self.buf.len() - self.pos < RECORD_HEADER {
            return None;
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4].try_into().expect("len prefix"),
        ) as usize;
        let sum = u64::from_le_bytes(
            self.buf[self.pos + 4..self.pos + 12].try_into().expect("checksum"),
        );
        let kind = self.buf[self.pos + 12];
        let start = self.pos + RECORD_HEADER;
        let end = start.checked_add(len).filter(|&e| e <= self.buf.len())?;
        let payload = &self.buf[start..end];
        let offset = self.pos;
        self.pos = end;
        Some(Record { offset, kind, payload, valid: fnv1a(payload) == sum })
    }
}

/// Length of the structurally complete prefix of a log buffer: everything
/// up to (but excluding) a torn tail record. This is what
/// [`FileStore::open`] truncates the newest segment file to.
pub fn complete_len(buf: &[u8]) -> usize {
    records(buf).last().map_or(0, |r| r.offset + RECORD_HEADER + r.payload.len())
}

/// Encode one record onto `out`, rejecting payloads over `max`.
pub(crate) fn encode_record(
    out: &mut Vec<u8>,
    kind: u8,
    payload: &[u8],
    max: usize,
) -> Result<(), StoreError> {
    let max = max.min(u32::MAX as usize);
    if payload.len() > max {
        return Err(StoreError::Oversized { len: payload.len(), max });
    }
    out.reserve(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    Ok(())
}

/// Absolute buffer offset of the byte to flip for a chaos corruption of
/// record `index` (0-based, oldest first): payload byte `byte % len`, the
/// same convention the PR 3 in-memory journal used. `None` when the record
/// does not exist or has an empty payload.
pub(crate) fn corrupt_offset(buf: &[u8], index: usize, byte: usize) -> Option<usize> {
    let r = records(buf).nth(index)?;
    if r.payload.is_empty() {
        return None;
    }
    Some(r.offset + RECORD_HEADER + byte % r.payload.len())
}

/// An append-only log of length-prefixed, checksummed records.
///
/// Writers take `&mut self`; reads borrow from the store's logical byte
/// mirror, so both backends serve them without I/O. The trait is
/// object-safe — the analyzer service takes `&mut dyn Store`, so callers
/// pick durability per run (in-memory for tests and in-process chaos,
/// segment files for whole-process crash recovery).
pub trait Store {
    /// Append one record. The store is unchanged on error.
    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError>;

    /// The logical log bytes, oldest record first (all segments
    /// concatenated for a file-backed store).
    fn bytes(&self) -> &[u8];

    /// Flush buffered writes to durable storage (no-op for [`MemStore`]).
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Seal the active segment and start a new one (no-op for
    /// [`MemStore`], which has no segments).
    fn rotate(&mut self) -> Result<(), StoreError>;

    /// Chaos hook: flip one payload byte of record `index` (0-based,
    /// oldest first), leaving the length prefix intact so the scan stays
    /// aligned. Returns `false` when the record does not exist or has an
    /// empty payload. File-backed stores flip the byte on disk too, so a
    /// reopen sees the corruption.
    fn corrupt_record(&mut self, index: usize, byte: usize) -> bool;

    /// The payload of the newest record of `kind` whose checksum verifies.
    fn latest_valid(&self, kind: u8) -> Option<&[u8]> {
        let mut best = None;
        for r in records(self.bytes()) {
            if r.valid && r.kind == kind {
                best = Some(r.payload);
            }
        }
        best
    }

    /// Payloads of every checksum-valid record of `kind`, oldest first.
    fn records_of(&self, kind: u8) -> Vec<&[u8]> {
        records(self.bytes())
            .filter(|r| r.valid && r.kind == kind)
            .map(|r| r.payload)
            .collect()
    }

    /// `(valid, corrupt)` record counts across the whole log.
    fn record_counts(&self) -> (usize, usize) {
        let mut valid = 0;
        let mut corrupt = 0;
        for r in records(self.bytes()) {
            if r.valid {
                valid += 1;
            } else {
                corrupt += 1;
            }
        }
        (valid, corrupt)
    }

    /// Number of structurally complete records (valid or not).
    fn len(&self) -> usize {
        records(self.bytes()).count()
    }

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The whole log in one in-memory buffer — the PR 3 journal behavior.
///
/// [`MemStore::with_max_record`] tightens the accepted payload size below
/// the format's u32 bound, mainly so the oversized-append path is testable
/// without multi-gigabyte allocations.
#[derive(Debug, Clone)]
pub struct MemStore {
    buf: Vec<u8>,
    max_record: usize,
}

impl MemStore {
    /// An empty store accepting any payload the record format can hold.
    pub fn new() -> MemStore {
        MemStore { buf: Vec::new(), max_record: u32::MAX as usize }
    }

    /// An empty store rejecting payloads longer than `max` bytes.
    pub fn with_max_record(max: usize) -> MemStore {
        MemStore { buf: Vec::new(), max_record: max.min(u32::MAX as usize) }
    }

    /// Rebuild from raw log bytes (e.g. read back from elsewhere). No
    /// validation happens here; corrupt records surface during
    /// [`Store::latest_valid`], and a torn tail is simply never yielded.
    pub fn from_bytes(buf: Vec<u8>) -> MemStore {
        MemStore { buf, max_record: u32::MAX as usize }
    }
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

impl Store for MemStore {
    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        encode_record(&mut self.buf, kind, payload, self.max_record)
    }

    fn bytes(&self) -> &[u8] {
        &self.buf
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn corrupt_record(&mut self, index: usize, byte: usize) -> bool {
        match corrupt_offset(&self.buf, index, byte) {
            Some(off) => {
                self.buf[off] ^= 0x40;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_round_trips_records_in_order() {
        let mut s = MemStore::new();
        s.append(1, b"alpha").unwrap();
        s.append(2, b"beta").unwrap();
        s.append(1, b"gamma").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.record_counts(), (3, 0));
        assert_eq!(s.latest_valid(1), Some(&b"gamma"[..]));
        assert_eq!(s.latest_valid(2), Some(&b"beta"[..]));
        assert_eq!(s.latest_valid(9), None);
        assert_eq!(s.records_of(1), vec![&b"alpha"[..], &b"gamma"[..]]);

        let s2 = MemStore::from_bytes(s.bytes().to_vec());
        assert_eq!(s2.latest_valid(1), Some(&b"gamma"[..]));
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let mut s = MemStore::new();
        s.append(1, b"good-old").unwrap();
        s.append(1, b"good-new").unwrap();
        assert!(s.corrupt_record(1, 3));
        assert_eq!(s.record_counts(), (1, 1));
        assert_eq!(s.latest_valid(1), Some(&b"good-old"[..]));
        // Records *after* a corrupt one stay reachable (length prefix).
        s.append(1, b"newest").unwrap();
        assert_eq!(s.latest_valid(1), Some(&b"newest"[..]));
        // Out-of-range / empty-payload corruption targets report failure.
        assert!(!s.corrupt_record(17, 0));
        s.append(3, b"").unwrap();
        assert!(!s.corrupt_record(3, 0));
    }

    #[test]
    fn torn_tail_is_not_yielded() {
        let mut s = MemStore::new();
        s.append(1, b"payload").unwrap();
        let full = s.bytes().to_vec();
        let cut = MemStore::from_bytes(full[..full.len() - 3].to_vec());
        assert_eq!(cut.latest_valid(1), None);
        assert!(cut.is_empty());
        assert_eq!(complete_len(cut.bytes()), 0);
        assert_eq!(complete_len(&full), full.len());
    }

    #[test]
    fn oversized_payloads_are_rejected_store_unchanged() {
        let mut s = MemStore::with_max_record(8);
        s.append(1, b"12345678").unwrap();
        let err = s.append(1, b"123456789").unwrap_err();
        assert_eq!(err, StoreError::Oversized { len: 9, max: 8 });
        assert_eq!(s.len(), 1, "failed append must not disturb the log");
        assert_eq!(s.latest_valid(1), Some(&b"12345678"[..]));
        assert!(!err.to_string().is_empty());
    }
}

//! Segment-file backend: the record log as a directory of append-only
//! files.
//!
//! Layout inside the store directory:
//!
//! * `current.seg` — the active segment; every append goes here.
//! * `seg-000000.seg`, `seg-000001.seg`, ... — sealed segments, oldest
//!   first. Sealed files are never written again.
//! * `seg-NNNNNN.tmp` — an in-flight rotation (see below); at most one
//!   exists, and only across a crash.
//!
//! **Rotation** seals the active segment with a two-step rename protocol:
//! sync `current.seg`, rename it to `seg-NNNNNN.tmp`, then rename the tmp
//! to its final `seg-NNNNNN.seg` name and start a fresh `current.seg`.
//! Each rename is atomic, and the `.seg` suffix is the publication marker:
//! [`FileStore::open`] treats `.seg` files as sealed-and-complete, and
//! adopts a leftover `.tmp` (a rotation the process died inside) by
//! completing the rename. Records never span files — an append writes a
//! whole record to the active segment, and rotation seals whole files —
//! so the logical log is simply the sealed segments concatenated in index
//! order followed by the active segment.
//!
//! **Torn-tail truncation**: a crash mid-append can leave the active
//! segment ending in a structurally incomplete record. On open, the
//! active segment is physically truncated back to its last complete
//! record ([`crate::complete_len`]); sealed segments were synced before
//! publication, so only their mirror copy is defensively clamped. A torn
//! *payload* that is structurally complete but checksum-invalid is kept
//! on disk and skipped by readers, exactly like the in-memory journal.

use crate::{complete_len, corrupt_offset, encode_record, Store, StoreError};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When the file backend calls `fsync`.
///
/// Sealing always syncs file *data* before publishing a segment,
/// regardless of policy — a published `.seg` name must mean "complete".
/// The policy governs the active segment and the directory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync. Fastest; a crash can lose everything since the last
    /// rotation. Fine for tests and throwaway runs.
    Never,
    /// Fsync the active segment after every append. Strongest: a crash
    /// loses at most the record being written (a torn tail).
    EveryAppend,
    /// Fsync only when sealing a segment and on explicit [`Store::sync`].
    /// The middle ground: the recoverable service calls [`Store::sync`]
    /// at each checkpoint boundary, so committed state is durable while
    /// per-record appends stay cheap.
    #[default]
    OnRotate,
}

/// Tunables for [`FileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStoreConfig {
    /// Seal the active segment once it reaches this many bytes. Appends
    /// are never split: the segment that crosses the threshold is sealed
    /// after the append completes.
    pub rotate_bytes: usize,
    /// When to fsync (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Largest accepted payload, clamped to the format's u32 bound.
    pub max_record: usize,
}

impl Default for FileStoreConfig {
    fn default() -> FileStoreConfig {
        FileStoreConfig {
            rotate_bytes: 1 << 20,
            sync: SyncPolicy::default(),
            max_record: u32::MAX as usize,
        }
    }
}

const CURRENT: &str = "current.seg";

fn sealed_name(index: u64) -> String {
    format!("seg-{index:06}.seg")
}

fn tmp_name(index: u64) -> String {
    format!("seg-{index:06}.tmp")
}

/// Parse `seg-NNNNNN.<ext>` into its index.
fn parse_segment(name: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(ext)?;
    rest.parse().ok()
}

/// One sealed segment's slice of the logical mirror.
#[derive(Debug)]
struct Span {
    path: PathBuf,
    start: usize,
    len: usize,
}

/// The record log as append-only segment files in a directory. See the
/// module docs for the on-disk protocol.
///
/// ```no_run
/// use gretel_store::{FileStore, FileStoreConfig, Store};
///
/// let mut s = FileStore::open("/tmp/gretel-ckpt", FileStoreConfig::default()).unwrap();
/// s.append(1, b"checkpoint bytes").unwrap();
/// s.sync().unwrap();
/// // ... process dies; a later process reopens the same directory:
/// let s2 = FileStore::open("/tmp/gretel-ckpt", FileStoreConfig::default()).unwrap();
/// assert_eq!(s2.latest_valid(1), Some(&b"checkpoint bytes"[..]));
/// ```
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    cfg: FileStoreConfig,
    /// Logical mirror: sealed segments (complete prefixes) concatenated,
    /// then the active segment. All reads are served from here.
    buf: Vec<u8>,
    /// Sealed segments, oldest first, with their mirror spans.
    sealed: Vec<Span>,
    /// Mirror bytes belonging to sealed segments (= active segment start).
    sealed_len: usize,
    current: File,
    current_path: PathBuf,
    next_seal: u64,
    truncated_on_open: usize,
}

impl FileStore {
    /// Open (creating if needed) a store directory: adopt any interrupted
    /// rotation, load every sealed segment plus the active one into the
    /// mirror, and truncate a torn tail off the active segment.
    pub fn open(dir: impl AsRef<Path>, cfg: FileStoreConfig) -> Result<FileStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", e))?;

        // Inventory: sealed indices and interrupted-rotation leftovers.
        let mut sealed_idx = Vec::new();
        let mut tmp_idx = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| StoreError::io("read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(i) = parse_segment(name, ".seg") {
                sealed_idx.push(i);
            } else if let Some(i) = parse_segment(name, ".tmp") {
                tmp_idx.push(i);
            }
        }
        // Adopt interrupted rotations: the rename to `.seg` is the only
        // step that was missing, so finish it (unless a same-index `.seg`
        // somehow exists already — then the tmp is stale and dropped).
        for i in tmp_idx {
            let tmp = dir.join(tmp_name(i));
            if sealed_idx.contains(&i) {
                fs::remove_file(&tmp).map_err(|e| StoreError::io("drop stale tmp", e))?;
            } else {
                fs::rename(&tmp, dir.join(sealed_name(i)))
                    .map_err(|e| StoreError::io("adopt tmp segment", e))?;
                sealed_idx.push(i);
            }
        }
        sealed_idx.sort_unstable();

        let mut buf = Vec::new();
        let mut sealed = Vec::new();
        for &i in &sealed_idx {
            let path = dir.join(sealed_name(i));
            let bytes = fs::read(&path).map_err(|e| StoreError::io("read segment", e))?;
            // Sealed files were synced before publication; clamping the
            // mirror to the complete prefix is pure defense in depth.
            let keep = complete_len(&bytes);
            let start = buf.len();
            buf.extend_from_slice(&bytes[..keep]);
            sealed.push(Span { path, start, len: keep });
        }
        let sealed_len = buf.len();

        let current_path = dir.join(CURRENT);
        let mut current = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&current_path)
            .map_err(|e| StoreError::io("open active segment", e))?;
        let mut active = Vec::new();
        current
            .read_to_end(&mut active)
            .map_err(|e| StoreError::io("read active segment", e))?;
        let keep = complete_len(&active);
        let mut truncated_on_open = 0;
        if keep < active.len() {
            // Torn tail: physically cut the incomplete record so future
            // appends extend a clean log.
            truncated_on_open = active.len() - keep;
            current.set_len(keep as u64).map_err(|e| StoreError::io("truncate torn tail", e))?;
            current
                .seek(SeekFrom::End(0))
                .map_err(|e| StoreError::io("truncate torn tail", e))?;
            if cfg.sync != SyncPolicy::Never {
                current.sync_data().map_err(|e| StoreError::io("truncate torn tail", e))?;
            }
        }
        buf.extend_from_slice(&active[..keep]);

        let next_seal = sealed_idx.last().map_or(0, |&i| i + 1);
        Ok(FileStore {
            dir,
            cfg,
            buf,
            sealed,
            sealed_len,
            current,
            current_path,
            next_seal,
            truncated_on_open,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the active segment (`current.seg`) — exposed so chaos
    /// harnesses can tear its tail between process lifetimes.
    pub fn current_segment_path(&self) -> PathBuf {
        self.current_path.clone()
    }

    /// Number of sealed segments.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Bytes of torn tail [`FileStore::open`] cut off the active segment.
    pub fn truncated_on_open(&self) -> usize {
        self.truncated_on_open
    }

    /// Sync the directory itself so renames/creates are durable. Failure
    /// is reported; some filesystems reject directory fsync, so callers
    /// of last resort may ignore it — we never do, tests run on a real fs.
    fn sync_dir(&self) -> Result<(), StoreError> {
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| StoreError::io("sync dir", e))
    }
}

impl Store for FileStore {
    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let start = self.buf.len();
        encode_record(&mut self.buf, kind, payload, self.cfg.max_record)?;
        if let Err(e) = self.current.write_all(&self.buf[start..]) {
            // Keep the mirror honest: the failed record is not on disk.
            self.buf.truncate(start);
            return Err(StoreError::io("append", e));
        }
        if self.cfg.sync == SyncPolicy::EveryAppend {
            self.current.sync_data().map_err(|e| StoreError::io("append sync", e))?;
        }
        if self.buf.len() - self.sealed_len >= self.cfg.rotate_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn bytes(&self) -> &[u8] {
        &self.buf
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.current.sync_data().map_err(|e| StoreError::io("sync", e))
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        if self.buf.len() == self.sealed_len {
            return Ok(()); // Empty active segment: nothing to seal.
        }
        // A published segment must be complete on disk: sync data before
        // the rename, whatever the policy says about appends.
        if self.cfg.sync != SyncPolicy::Never {
            self.current.sync_data().map_err(|e| StoreError::io("rotate sync", e))?;
        }
        let index = self.next_seal;
        let tmp = self.dir.join(tmp_name(index));
        let fin = self.dir.join(sealed_name(index));
        fs::rename(&self.current_path, &tmp).map_err(|e| StoreError::io("rotate", e))?;
        fs::rename(&tmp, &fin).map_err(|e| StoreError::io("rotate", e))?;
        self.current = OpenOptions::new()
            .read(true)
            .append(true)
            .create_new(true)
            .open(&self.current_path)
            .map_err(|e| StoreError::io("rotate", e))?;
        if self.cfg.sync != SyncPolicy::Never {
            self.sync_dir()?;
        }
        self.sealed.push(Span {
            path: fin,
            start: self.sealed_len,
            len: self.buf.len() - self.sealed_len,
        });
        self.sealed_len = self.buf.len();
        self.next_seal = index + 1;
        Ok(())
    }

    fn corrupt_record(&mut self, index: usize, byte: usize) -> bool {
        let Some(off) = corrupt_offset(&self.buf, index, byte) else {
            return false;
        };
        // Patch the byte on disk first, then mirror the flip in memory.
        let (path, file_off) = match self.sealed.iter().find(|s| off < s.start + s.len) {
            Some(span) => (span.path.clone(), off - span.start),
            None => (self.current_path.clone(), off - self.sealed_len),
        };
        let flipped = self.buf[off] ^ 0x40;
        let patched = OpenOptions::new().write(true).open(&path).and_then(|mut f| {
            f.seek(SeekFrom::Start(file_off as u64))?;
            f.write_all(&[flipped])?;
            f.sync_data()
        });
        if patched.is_err() {
            return false;
        }
        self.buf[off] = flipped;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("gretel-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn survives_reopen_across_rotations() {
        let dir = tmpdir("reopen");
        let cfg = FileStoreConfig { rotate_bytes: 64, ..FileStoreConfig::default() };
        let mut mem = crate::MemStore::new();
        {
            let mut s = FileStore::open(&dir, cfg).unwrap();
            for i in 0..20u8 {
                let payload = vec![i; 1 + (i as usize * 7) % 40];
                s.append(1 + i % 3, &payload).unwrap();
                mem.append(1 + i % 3, &payload).unwrap();
            }
            assert!(s.sealed_segments() > 1, "rotation threshold must trip");
            assert_eq!(s.bytes(), mem.bytes());
        }
        let s = FileStore::open(&dir, cfg).unwrap();
        assert_eq!(s.bytes(), mem.bytes(), "reopen reconstructs the logical log");
        assert_eq!(s.truncated_on_open(), 0);
        for k in 1..=3 {
            assert_eq!(s.latest_valid(k), mem.latest_valid(k));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let cfg = FileStoreConfig::default();
        let cur = {
            let mut s = FileStore::open(&dir, cfg).unwrap();
            s.append(1, b"kept-record").unwrap();
            s.append(1, b"doomed-record").unwrap();
            s.sync().unwrap();
            s.current_segment_path()
        };
        // Tear the last record mid-payload, as a crash mid-write would.
        let len = fs::metadata(&cur).unwrap().len();
        let f = OpenOptions::new().write(true).open(&cur).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let s = FileStore::open(&dir, cfg).unwrap();
        assert!(s.truncated_on_open() > 0);
        assert_eq!(s.latest_valid(1), Some(&b"kept-record"[..]));
        assert_eq!(s.len(), 1);
        // The truncation is physical: a second open sees a clean log.
        let s2 = FileStore::open(&dir, cfg).unwrap();
        assert_eq!(s2.truncated_on_open(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_rotation_tmp_is_adopted() {
        let dir = tmpdir("adopt");
        let cfg = FileStoreConfig::default();
        let mut s = FileStore::open(&dir, cfg).unwrap();
        s.append(7, b"sealed payload").unwrap();
        s.rotate().unwrap();
        s.append(7, b"active payload").unwrap();
        drop(s);
        // Simulate dying between the two rotation renames: demote the
        // sealed segment back to its tmp name.
        fs::rename(dir.join(sealed_name(0)), dir.join(tmp_name(0))).unwrap();

        let s = FileStore::open(&dir, cfg).unwrap();
        assert_eq!(s.sealed_segments(), 1, "tmp segment adopted as sealed");
        assert!(dir.join(sealed_name(0)).exists());
        assert!(!dir.join(tmp_name(0)).exists());
        assert_eq!(
            s.records_of(7),
            vec![&b"sealed payload"[..], &b"active payload"[..]]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_reaches_disk_in_any_segment() {
        let dir = tmpdir("corrupt");
        let cfg = FileStoreConfig { rotate_bytes: 32, ..FileStoreConfig::default() };
        let mut s = FileStore::open(&dir, cfg).unwrap();
        s.append(1, b"record-zero-payload-is-long").unwrap(); // rotates
        s.append(1, b"record-one").unwrap();
        assert_eq!(s.sealed_segments(), 1);
        // Corrupt one record in the sealed segment and one in the active.
        assert!(s.corrupt_record(0, 4));
        assert!(s.corrupt_record(1, 2));
        assert_eq!(s.record_counts(), (0, 2));
        drop(s);
        let s = FileStore::open(&dir, cfg).unwrap();
        assert_eq!(s.record_counts(), (0, 2), "corruption persisted to disk");
        assert_eq!(s.latest_valid(1), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_append_leaves_store_and_disk_unchanged() {
        let dir = tmpdir("oversize");
        let cfg = FileStoreConfig { max_record: 16, ..FileStoreConfig::default() };
        let mut s = FileStore::open(&dir, cfg).unwrap();
        s.append(1, b"fits").unwrap();
        let err = s.append(1, &[0u8; 17]).unwrap_err();
        assert_eq!(err, StoreError::Oversized { len: 17, max: 16 });
        assert_eq!(s.len(), 1);
        drop(s);
        let s = FileStore::open(&dir, cfg).unwrap();
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}

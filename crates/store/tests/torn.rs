//! Satellite coverage for torn writes, mirroring the in-memory
//! corrupt-journal tests from PR 3 at the file layer: whatever a crash
//! leaves on disk — the tail truncated at ANY byte offset, or any single
//! byte flipped — opening the store never panics and always recovers the
//! newest fully-valid record.

use gretel_store::{records, FileStore, FileStoreConfig, Store};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory per test case (no tempfile crate offline).
fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gretel-store-torn-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Splitmix64 — deterministic payload material from a case seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seed-derived record set: 1..=5 records, kinds 1..=3, payloads up to
/// 23 bytes (empty allowed) — small enough that the exhaustive inner
/// loops below stay cheap.
fn record_set(seed: u64) -> Vec<(u8, Vec<u8>)> {
    let n = 1 + (mix(seed) % 5) as usize;
    (0..n)
        .map(|i| {
            let r = mix(seed ^ (i as u64) << 17);
            let kind = 1 + (r % 3) as u8;
            let len = ((r >> 8) % 24) as usize;
            let payload = (0..len).map(|b| mix(r ^ b as u64) as u8).collect();
            (kind, payload)
        })
        .collect()
}

/// The oracle: newest checksum-valid record of `kind` in a raw log image,
/// computed independently of the store's own read path.
fn oracle_latest(image: &[u8], kind: u8) -> Option<Vec<u8>> {
    records(image)
        .filter(|r| r.valid && r.kind == kind)
        .last()
        .map(|r| r.payload.to_vec())
}

/// Write `image` as the active segment of a fresh store directory and
/// open it. The open itself must not panic or error for any image.
fn open_image(dir: &PathBuf, image: &[u8]) -> FileStore {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join("current.seg"), image).unwrap();
    FileStore::open(dir, FileStoreConfig::default()).unwrap()
}

/// Build the full on-disk image for a seed's record set.
fn full_image(dir: &PathBuf, seed: u64) -> Vec<u8> {
    let _ = fs::remove_dir_all(dir);
    let mut s = FileStore::open(dir, FileStoreConfig::default()).unwrap();
    for (kind, payload) in record_set(seed) {
        s.append(kind, &payload).unwrap();
    }
    s.bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Truncating the log at EVERY byte offset recovers exactly the
    /// records that are still complete — never a panic, never a
    /// half-applied record, and the newest fully-valid record of every
    /// kind matches an independent scan of the truncated image.
    #[test]
    fn every_truncation_offset_recovers_newest_valid_record(seed in any::<u64>()) {
        let dir = scratch();
        let full = full_image(&dir, seed);
        for cut in 0..=full.len() {
            let image = &full[..cut];
            let s = open_image(&dir, image);
            for kind in 1..=3u8 {
                prop_assert_eq!(
                    s.latest_valid(kind).map(<[u8]>::to_vec),
                    oracle_latest(image, kind),
                    "cut at {} of {}", cut, full.len()
                );
            }
            // Open physically removed the torn tail: what remains on disk
            // is exactly the structurally complete prefix.
            prop_assert_eq!(
                fs::metadata(dir.join("current.seg")).unwrap().len() as usize,
                s.bytes().len()
            );
            prop_assert_eq!(s.truncated_on_open() > 0, cut != s.bytes().len());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping ANY single byte of the log never panics and degrades at
    /// most the records the flip touches: reads return the newest record
    /// that still checksums, exactly as an independent scan predicts.
    #[test]
    fn every_single_byte_corruption_recovers_newest_valid_record(
        seed in any::<u64>(),
        flip in any::<u8>(),
    ) {
        let flip = flip | 1; // XOR with 0 would be a no-op "corruption".
        let dir = scratch();
        let full = full_image(&dir, seed);
        for off in 0..full.len() {
            let mut image = full.clone();
            image[off] ^= flip;
            let s = open_image(&dir, &image);
            // A flipped length prefix can make the tail structurally
            // incomplete; open then truncates it. Either way, reads agree
            // with the oracle over what open kept on disk.
            let kept = s.bytes().to_vec();
            prop_assert_eq!(&image[..kept.len()], &kept[..], "offset {}", off);
            for kind in 1..=3u8 {
                prop_assert_eq!(
                    s.latest_valid(kind).map(<[u8]>::to_vec),
                    oracle_latest(&kept, kind),
                    "flip at {}", off
                );
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! # gretel-hansel — the HANSEL baseline (CoNEXT '15), reimplemented
//!
//! GRETEL's closest comparator. HANSEL diagnoses OpenStack faults by
//! *stitching*: it extracts identifiers (tenant ids, instance uuids, …)
//! from every request/response payload and links messages that share an
//! identifier into chains; on a fault it reports the chain of messages
//! leading to the error. Two properties drive the paper's comparison
//! (§3.1.3, §7.4.1, §9.2):
//!
//! * stitching runs **on every message** (payload tokenization + chain
//!   union), which caps throughput around 1.6K messages/s on the paper's
//!   testbed — orders of magnitude below GRETEL;
//! * a **30-second time bucket** delays reporting to tolerate delayed or
//!   out-of-order messages, so fault reports arrive ~30 s late.
//!
//! This reimplementation reproduces the algorithmic costs and the
//! reporting behaviour, so head-to-head benches against GRETEL are
//! meaningful.

#![warn(missing_docs)]

use gretel_model::{Message, MessageId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// HANSEL configuration.
#[derive(Debug, Clone, Copy)]
pub struct HanselConfig {
    /// Reporting delay for out-of-order tolerance (paper: 30 s).
    pub bucket_window_us: u64,
    /// Maximum chain length retained per identifier group.
    pub max_chain: usize,
}

impl Default for HanselConfig {
    fn default() -> Self {
        HanselConfig { bucket_window_us: 30_000_000, max_chain: 4096 }
    }
}

/// A fault report: the stitched chain of messages leading to an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The error message.
    pub error: MessageId,
    /// When the error was observed.
    pub ts_error: u64,
    /// When HANSEL released the report (≥ `ts_error` + bucket window).
    pub ts_reported: u64,
    /// The chain of messages sharing identifiers with the error, oldest
    /// first.
    pub chain: Vec<MessageId>,
}

impl FaultReport {
    /// Reporting latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.ts_reported - self.ts_error
    }
}

#[derive(Default)]
struct ChainSet {
    /// identifier token -> chain id
    token_chain: HashMap<String, usize>,
    /// chain id -> messages (chains are merged by re-pointing tokens).
    chains: Vec<Vec<(MessageId, u64)>>,
    /// chain id -> canonical (union-find with path compression).
    parent: Vec<usize>,
}

impl ChainSet {
    fn find(&mut self, mut id: usize) -> usize {
        while self.parent[id] != id {
            self.parent[id] = self.parent[self.parent[id]];
            id = self.parent[id];
        }
        id
    }

    fn new_chain(&mut self) -> usize {
        let id = self.chains.len();
        self.chains.push(Vec::new());
        self.parent.push(id);
        id
    }

    fn merge(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        // Smaller into larger.
        let (keep, drop) = if self.chains[ra].len() >= self.chains[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = std::mem::take(&mut self.chains[drop]);
        self.chains[keep].extend(moved);
        self.parent[drop] = keep;
        keep
    }

    fn add_message(
        &mut self,
        msg: MessageId,
        ts: u64,
        tokens: &[String],
        max_chain: usize,
    ) -> usize {
        // Union the chains of all tokens; unseen tokens start fresh.
        let mut chain: Option<usize> = None;
        for t in tokens {
            let existing = match self.token_chain.entry(t.clone()) {
                Entry::Occupied(e) => Some(*e.get()),
                Entry::Vacant(_) => None,
            };
            chain = Some(match (chain, existing) {
                (None, None) => self.new_chain(),
                (None, Some(c)) => self.find(c),
                (Some(c), None) => c,
                (Some(c), Some(d)) => self.merge(c, d),
            });
            let c = chain.expect("assigned above");
            self.token_chain.insert(t.clone(), c);
        }
        let c = match chain {
            Some(c) => c,
            None => self.new_chain(), // no identifiers: singleton chain
        };
        let c = self.find(c);
        self.chains[c].push((msg, ts));
        if self.chains[c].len() > max_chain {
            let excess = self.chains[c].len() - max_chain;
            self.chains[c].drain(..excess);
        }
        c
    }
}

/// The HANSEL analyzer.
pub struct Hansel {
    cfg: HanselConfig,
    chains: ChainSet,
    /// Errors awaiting their bucket window: (release_ts, error id,
    /// error ts, chain id at detection time).
    pending: Vec<(u64, MessageId, u64, usize)>,
    processed: u64,
    tokens_seen: u64,
}

impl Hansel {
    /// New analyzer.
    pub fn new(cfg: HanselConfig) -> Hansel {
        Hansel {
            cfg,
            chains: ChainSet::default(),
            pending: Vec::new(),
            processed: 0,
            tokens_seen: 0,
        }
    }

    /// Messages processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Identifier tokens extracted so far.
    pub fn tokens_seen(&self) -> u64 {
        self.tokens_seen
    }

    /// Drop chain entries older than `cutoff` (bounded memory for
    /// long-running deployments; chains only ever matter within the
    /// reporting window).
    pub fn expire_before(&mut self, cutoff: u64) {
        for chain in &mut self.chains.chains {
            chain.retain(|&(_, ts)| ts >= cutoff);
        }
    }

    /// Process one message (stitching runs unconditionally — this is the
    /// cost GRETEL avoids). Returns any fault reports whose bucket window
    /// has elapsed by this message's timestamp.
    pub fn process(&mut self, msg: &Message) -> Vec<FaultReport> {
        self.processed += 1;
        // Periodic GC: nothing older than two bucket windows can appear in
        // a future report.
        if self.processed.is_multiple_of(4096) {
            self.expire_before(msg.ts_us.saturating_sub(2 * self.cfg.bucket_window_us));
        }
        let tokens = extract_identifiers(&msg.payload);
        self.tokens_seen += tokens.len() as u64;
        let chain = self.chains.add_message(msg.id, msg.ts_us, &tokens, self.cfg.max_chain);

        if msg.is_rest_error() || msg.is_rpc_error() {
            self.pending.push((
                msg.ts_us + self.cfg.bucket_window_us,
                msg.id,
                msg.ts_us,
                chain,
            ));
        }
        self.release(msg.ts_us)
    }

    /// Flush all pending reports (stream end), as if the bucket windows
    /// all expired.
    pub fn finish(&mut self) -> Vec<FaultReport> {
        let last = self.pending.iter().map(|&(r, ..)| r).max().unwrap_or(0);
        self.release(last)
    }

    fn release(&mut self, now: u64) -> Vec<FaultReport> {
        let mut out = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        for (release_ts, error, ts_error, chain) in self.pending.drain(..) {
            if release_ts <= now {
                let root = self.chains.find(chain);
                let mut chain_msgs: Vec<(MessageId, u64)> = self.chains.chains[root]
                    .iter()
                    .copied()
                    .filter(|&(_, ts)| ts <= ts_error)
                    .collect();
                chain_msgs.sort_by_key(|&(id, ts)| (ts, id));
                out.push(FaultReport {
                    error,
                    ts_error,
                    ts_reported: release_ts,
                    chain: chain_msgs.into_iter().map(|(id, _)| id).collect(),
                });
            } else {
                keep.push((release_ts, error, ts_error, chain));
            }
        }
        self.pending = keep;
        out
    }
}

/// Tokenize a payload into identifier candidates: alphanumeric runs of
/// length ≥ 2 containing at least one digit (uuids, pseudo-ids — exactly
/// the "common identifiers like tenant ID" the paper notes can overlink).
/// This full-payload scan on every message is HANSEL's per-message cost.
pub fn extract_identifiers(payload: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut has_digit = false;
    for &b in payload {
        if b.is_ascii_alphanumeric() {
            cur.push(b as char);
            has_digit |= b.is_ascii_digit();
        } else {
            if cur.len() >= 2 && has_digit && !is_boring(&cur) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
            has_digit = false;
        }
    }
    if cur.len() >= 2 && has_digit && !is_boring(&cur) {
        out.push(cur);
    }
    out.dedup();
    out
}

/// Protocol tokens that appear in every message and must not stitch.
fn is_boring(tok: &str) -> bool {
    tok.starts_with("HTTP")
        || tok.starts_with("v1")
        || tok.starts_with("v2")
        || tok.starts_with("v3")
        || (tok.chars().all(|c| c.is_ascii_digit()) && tok.len() <= 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::message::{render_rest_request_payload, render_rest_response_payload};
    use gretel_model::{ApiId, ConnKey, Direction, HttpMethod, NodeId, Service, WireKind};

    fn msg(id: u64, ts: u64, uri: &str, status: Option<u16>) -> Message {
        // Requests carry the URI (and so the identifiers); error responses
        // here keep the URI in the payload body to emulate response bodies
        // that echo the resource.
        let payload = match status {
            Some(s) => {
                let mut p = render_rest_response_payload(s, "x", 0);
                p.extend_from_slice(uri.as_bytes());
                p
            }
            None => render_rest_request_payload(HttpMethod::Get, uri, 0),
        };
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Horizon,
            dst_service: Service::Nova,
            api: ApiId(1),
            direction: if status.is_some() { Direction::Response } else { Direction::Request },
            wire: WireKind::Rest { method: HttpMethod::Get, uri: uri.into(), status },
            conn: ConnKey::default(),
            payload,
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn identifiers_are_extracted_from_uris() {
        let p = render_rest_request_payload(HttpMethod::Get, "/v2.1/servers/i3f", 0);
        let toks = extract_identifiers(&p);
        assert!(toks.iter().any(|t| t == "i3f"), "{toks:?}");
        assert!(!toks.iter().any(|t| t == "v2"));
        assert!(!toks.iter().any(|t| t.starts_with("HTTP")));
    }

    #[test]
    fn messages_sharing_an_id_stitch_into_one_chain() {
        let mut h = Hansel::new(HanselConfig { bucket_window_us: 1_000, ..Default::default() });
        h.process(&msg(0, 0, "/v2.1/servers/i7a", None));
        h.process(&msg(1, 10, "/v2.0/ports/i7a", None));
        h.process(&msg(2, 20, "/v2.1/servers/i99x", None)); // unrelated op
        let reports = h.process(&msg(3, 30, "/v2.1/servers/i7a", Some(500)));
        assert!(reports.is_empty(), "bucket window not elapsed yet");
        let reports = h.process(&msg(4, 5_000, "/v2.1/flavors", None));
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.error, MessageId(3));
        assert!(r.chain.contains(&MessageId(0)));
        assert!(r.chain.contains(&MessageId(1)));
        assert!(!r.chain.contains(&MessageId(2)), "unrelated op not in chain");
        assert!(r.latency_us() >= 1_000);
    }

    #[test]
    fn reporting_latency_is_the_bucket_window() {
        let mut h = Hansel::new(HanselConfig::default()); // 30 s
        h.process(&msg(0, 1_000_000, "/v2.1/servers/i1b", Some(500)));
        let reports = h.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].latency_us(), 30_000_000, "paper: ~30 s reporting delay");
    }

    #[test]
    fn shared_common_identifier_overlinks() {
        // The paper's criticism: common identifiers (like tenant ids) link
        // the faulty operation with unrelated successful ones.
        let mut h = Hansel::new(HanselConfig { bucket_window_us: 0, ..Default::default() });
        h.process(&msg(0, 0, "/tenants/t5x/servers/i1a", None));
        h.process(&msg(1, 1, "/tenants/t5x/volumes/i2b", None));
        let mut reports = h.process(&msg(2, 2, "/tenants/t5x/servers/i1a", Some(500)));
        if reports.is_empty() {
            reports = h.finish();
        }
        assert_eq!(reports.len(), 1);
        assert!(reports[0].chain.contains(&MessageId(1)), "volume op pulled in via tenant id");
    }

    #[test]
    fn chains_are_capped() {
        let mut h = Hansel::new(HanselConfig { bucket_window_us: 0, max_chain: 10 });
        for i in 0..100 {
            h.process(&msg(i, i, "/x/shared9z/y", None));
        }
        let mut reports = h.process(&msg(100, 100, "/x/shared9z/y", Some(500)));
        reports.extend(h.finish());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].chain.len() <= 11);
    }

    #[test]
    fn every_message_pays_the_stitching_cost() {
        let mut h = Hansel::new(HanselConfig::default());
        for i in 0..50 {
            h.process(&msg(i, i, "/v2.1/servers/i5c", None));
        }
        assert_eq!(h.processed(), 50);
        assert!(h.tokens_seen() >= 50, "tokenization ran on every message");
    }

    #[test]
    fn expiry_bounds_chain_memory() {
        let mut h = Hansel::new(HanselConfig { bucket_window_us: 1_000, ..Default::default() });
        for i in 0..5_000u64 {
            h.process(&msg(i, i * 10, "/x/shared7k/y", None));
        }
        // Everything is in one chain; expire all but the tail.
        h.expire_before(49_000_000);
        let mut reports = h.process(&msg(5_000, 50_000_000, "/x/shared7k/y", Some(500)));
        reports.extend(h.finish());
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0].chain.len() < 200,
            "expired entries are gone: {}",
            reports[0].chain.len()
        );
    }

    #[test]
    fn rpc_errors_are_reported_too() {
        let mut h = Hansel::new(HanselConfig { bucket_window_us: 0, ..Default::default() });
        let mut m = msg(0, 5, "/x", None);
        m.wire = WireKind::Rpc {
            method: "create_volume".into(),
            msg_id: 3,
            error: Some("Boom".into()),
        };
        m.payload = gretel_model::message::render_rpc_payload("create_volume", 3, Some("Boom"), 8);
        let mut reports = h.process(&m);
        if reports.is_empty() {
            reports = h.finish();
        }
        assert_eq!(reports.len(), 1);
    }
}

//! Throughput and capture-quality accounting.
//!
//! The paper reports GRETEL's sustained throughput in REST/RPC events per
//! second and in Mbps over the monitored control traffic. A
//! [`ThroughputMeter`] accumulates message and byte counts against wall
//!-clock time and converts to those units. [`CaptureStats`] counts what the
//! capture plane did to the stream on the way: frames emitted, dropped,
//! duplicated, reordered, plus the gaps and losses the receiver inferred
//! from per-agent sequence numbers.

use std::time::{Duration, Instant};

/// Counters describing how faithful a captured stream was.
///
/// The injector side ([`crate::CaptureImpairment`]) fills in `frames`,
/// `dropped`, `duplicated`, `reordered` and `stalled` as it perturbs the
/// stream; the receiver side ([`crate::Resequencer`]) fills in `gaps` and
/// `lost` as it infers missing sequence numbers. Merge the two halves with
/// [`CaptureStats::merge`] for an end-to-end picture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Frames the agent offered to the impairment stage.
    pub frames: u64,
    /// Frames discarded by probabilistic drop.
    pub dropped: u64,
    /// Extra copies injected by probabilistic duplication.
    pub duplicated: u64,
    /// Frames delivered out of their original position.
    pub reordered: u64,
    /// Frames discarded because they fell inside an agent stall window.
    pub stalled: u64,
    /// Sequence gaps the receiver detected (contiguous runs of missing
    /// sequence numbers count as one gap each).
    pub gaps: u64,
    /// Total frames inferred missing across all gaps.
    pub lost: u64,
    /// Duplicate frames the receiver discarded on arrival.
    pub dup_discarded: u64,
}

impl CaptureStats {
    /// Accumulate `other` into `self`, field by field.
    pub fn merge(&mut self, other: &CaptureStats) {
        self.frames += other.frames;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.stalled += other.stalled;
        self.gaps += other.gaps;
        self.lost += other.lost;
        self.dup_discarded += other.dup_discarded;
    }

    /// Flow these counters into a pipeline metrics registry (one
    /// [`gretel_obs::Meter`] per field). Counters are cumulative adds, so
    /// recording a merged end-of-run picture and recording the halves
    /// separately land on the same totals.
    pub fn record_into(&self, m: &gretel_obs::PipelineMetrics) {
        use gretel_obs::Meter;
        m.add(Meter::CaptureFrames, self.frames);
        m.add(Meter::CaptureDropped, self.dropped);
        m.add(Meter::CaptureDuplicated, self.duplicated);
        m.add(Meter::CaptureReordered, self.reordered);
        m.add(Meter::CaptureStalled, self.stalled);
        m.add(Meter::CaptureGaps, self.gaps);
        m.add(Meter::CaptureLost, self.lost);
        m.add(Meter::CaptureDupDiscarded, self.dup_discarded);
    }

    /// True when no impairment or loss was observed at all.
    pub fn is_clean(&self) -> bool {
        let CaptureStats { frames: _, dropped, duplicated, reordered, stalled, gaps, lost, dup_discarded } =
            *self;
        dropped == 0
            && duplicated == 0
            && reordered == 0
            && stalled == 0
            && gaps == 0
            && lost == 0
            && dup_discarded == 0
    }
}

/// Accumulates message/byte counts over wall-clock time.
#[derive(Debug)]
pub struct ThroughputMeter {
    started: Instant,
    messages: u64,
    bytes: u64,
    stopped: Option<Duration>,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Start a meter now.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter { started: Instant::now(), messages: 0, bytes: 0, stopped: None }
    }

    /// Record one processed message of `bytes` wire bytes.
    #[inline]
    pub fn record(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Record a batch.
    #[inline]
    pub fn record_batch(&mut self, messages: u64, bytes: u64) {
        self.messages += messages;
        self.bytes += bytes;
    }

    /// Freeze the elapsed time (subsequent rate queries use this instant).
    pub fn stop(&mut self) {
        if self.stopped.is_none() {
            self.stopped = Some(self.started.elapsed());
        }
    }

    /// Elapsed wall-clock time (frozen if stopped).
    pub fn elapsed(&self) -> Duration {
        self.stopped.unwrap_or_else(|| self.started.elapsed())
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Smallest elapsed time a rate may be computed over. Below this the
    /// division amplifies clock granularity into absurd (up to
    /// effectively infinite) rates — a meter queried right after
    /// construction, or stopped before any work, must report 0 instead.
    const MIN_RATE_ELAPSED: Duration = Duration::from_micros(1);

    /// Elapsed seconds if long enough to divide by, else `None`.
    /// Factored out of [`ThroughputMeter::mps`] / [`ThroughputMeter::mbps`]
    /// so the guard itself is unit-testable without racing the clock.
    fn rate_secs(elapsed: Duration) -> Option<f64> {
        (elapsed >= Self::MIN_RATE_ELAPSED).then_some(elapsed.as_secs_f64())
    }

    /// Messages per second; 0 until at least a microsecond has elapsed.
    pub fn mps(&self) -> f64 {
        match Self::rate_secs(self.elapsed()) {
            Some(secs) => self.messages as f64 / secs,
            None => 0.0,
        }
    }

    /// Megabits per second over the recorded bytes; 0 until at least a
    /// microsecond has elapsed.
    pub fn mbps(&self) -> f64 {
        match Self::rate_secs(self.elapsed()) {
            Some(secs) => (self.bytes as f64 * 8.0) / (secs * 1_000_000.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_stats_merge_and_cleanliness() {
        let mut a = CaptureStats { frames: 10, dropped: 1, ..Default::default() };
        let b = CaptureStats { frames: 5, gaps: 2, lost: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.frames, 15);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.gaps, 2);
        assert_eq!(a.lost, 3);
        assert!(!a.is_clean());
        assert!(CaptureStats { frames: 100, ..Default::default() }.is_clean());
    }

    #[test]
    fn record_into_flows_every_field() {
        use gretel_obs::{Meter, PipelineMetrics};
        let m = PipelineMetrics::enabled();
        let s = CaptureStats {
            frames: 10,
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            stalled: 4,
            gaps: 5,
            lost: 6,
            dup_discarded: 7,
        };
        s.record_into(&m);
        s.record_into(&m); // cumulative: a second flush adds, not replaces
        assert_eq!(m.meter(Meter::CaptureFrames), 20);
        assert_eq!(m.meter(Meter::CaptureDropped), 2);
        assert_eq!(m.meter(Meter::CaptureDuplicated), 4);
        assert_eq!(m.meter(Meter::CaptureReordered), 6);
        assert_eq!(m.meter(Meter::CaptureStalled), 8);
        assert_eq!(m.meter(Meter::CaptureGaps), 10);
        assert_eq!(m.meter(Meter::CaptureLost), 12);
        assert_eq!(m.meter(Meter::CaptureDupDiscarded), 14);
    }

    #[test]
    fn counts_accumulate() {
        let mut m = ThroughputMeter::new();
        m.record(100);
        m.record(200);
        m.record_batch(3, 300);
        assert_eq!(m.messages(), 5);
        assert_eq!(m.bytes(), 600);
    }

    #[test]
    fn rates_are_positive_after_work() {
        let mut m = ThroughputMeter::new();
        for _ in 0..1000 {
            m.record(125);
        }
        std::thread::sleep(Duration::from_millis(5));
        m.stop();
        assert!(m.mps() > 0.0);
        assert!(m.mbps() > 0.0);
    }

    #[test]
    fn stop_freezes_elapsed() {
        let mut m = ThroughputMeter::new();
        m.stop();
        let e1 = m.elapsed();
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(m.elapsed(), e1);
    }

    #[test]
    fn stop_is_idempotent() {
        let mut m = ThroughputMeter::new();
        m.record(100);
        m.stop();
        let e1 = m.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        m.stop(); // must keep the first freeze, not restamp
        assert_eq!(m.elapsed(), e1);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn sub_microsecond_elapsed_reports_zero_rates() {
        // Regression: a meter queried right after construction divided
        // recorded counts by a few nanoseconds of elapsed time, reporting
        // absurd rates (2·10^10 msgs/s here). Freeze a 50ns elapsed by
        // construction so the test cannot race the clock.
        let m = ThroughputMeter {
            started: Instant::now(),
            messages: 1_000,
            bytes: 1_000_000,
            stopped: Some(Duration::from_nanos(50)),
        };
        assert_eq!(m.mps(), 0.0);
        assert_eq!(m.mbps(), 0.0);
        // The guard boundary: exactly 1µs is long enough.
        assert_eq!(ThroughputMeter::rate_secs(Duration::from_nanos(999)), None);
        let secs = ThroughputMeter::rate_secs(Duration::from_micros(1)).expect("1µs computes");
        assert!((secs - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn mbps_math() {
        // 1_000_000 bytes in exactly 1 second would be 8 Mbps; check the
        // formula via a frozen elapsed of ~0 by construction: use records
        // and verify proportionality instead of absolute timing.
        let mut a = ThroughputMeter::new();
        let mut b = ThroughputMeter::new();
        a.record_batch(1, 1_000);
        b.record_batch(1, 2_000);
        a.stop();
        b.stop();
        // Elapsed may differ by nanoseconds; compare ratios loosely.
        let ratio = b.bytes() as f64 / a.bytes() as f64;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}

//! Throughput and capture-quality accounting.
//!
//! The paper reports GRETEL's sustained throughput in REST/RPC events per
//! second and in Mbps over the monitored control traffic. A
//! [`ThroughputMeter`] accumulates message and byte counts against wall
//!-clock time and converts to those units. [`CaptureStats`] counts what the
//! capture plane did to the stream on the way: frames emitted, dropped,
//! duplicated, reordered, plus the gaps and losses the receiver inferred
//! from per-agent sequence numbers.

use std::time::{Duration, Instant};

/// Counters describing how faithful a captured stream was.
///
/// The injector side ([`crate::CaptureImpairment`]) fills in `frames`,
/// `dropped`, `duplicated`, `reordered` and `stalled` as it perturbs the
/// stream; the receiver side ([`crate::Resequencer`]) fills in `gaps` and
/// `lost` as it infers missing sequence numbers. Merge the two halves with
/// [`CaptureStats::merge`] for an end-to-end picture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Frames the agent offered to the impairment stage.
    pub frames: u64,
    /// Frames discarded by probabilistic drop.
    pub dropped: u64,
    /// Extra copies injected by probabilistic duplication.
    pub duplicated: u64,
    /// Frames delivered out of their original position.
    pub reordered: u64,
    /// Frames discarded because they fell inside an agent stall window.
    pub stalled: u64,
    /// Sequence gaps the receiver detected (contiguous runs of missing
    /// sequence numbers count as one gap each).
    pub gaps: u64,
    /// Total frames inferred missing across all gaps.
    pub lost: u64,
    /// Duplicate frames the receiver discarded on arrival.
    pub dup_discarded: u64,
}

impl CaptureStats {
    /// Accumulate `other` into `self`, field by field.
    pub fn merge(&mut self, other: &CaptureStats) {
        self.frames += other.frames;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.stalled += other.stalled;
        self.gaps += other.gaps;
        self.lost += other.lost;
        self.dup_discarded += other.dup_discarded;
    }

    /// True when no impairment or loss was observed at all.
    pub fn is_clean(&self) -> bool {
        let CaptureStats { frames: _, dropped, duplicated, reordered, stalled, gaps, lost, dup_discarded } =
            *self;
        dropped == 0
            && duplicated == 0
            && reordered == 0
            && stalled == 0
            && gaps == 0
            && lost == 0
            && dup_discarded == 0
    }
}

/// Accumulates message/byte counts over wall-clock time.
#[derive(Debug)]
pub struct ThroughputMeter {
    started: Instant,
    messages: u64,
    bytes: u64,
    stopped: Option<Duration>,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Start a meter now.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter { started: Instant::now(), messages: 0, bytes: 0, stopped: None }
    }

    /// Record one processed message of `bytes` wire bytes.
    #[inline]
    pub fn record(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Record a batch.
    #[inline]
    pub fn record_batch(&mut self, messages: u64, bytes: u64) {
        self.messages += messages;
        self.bytes += bytes;
    }

    /// Freeze the elapsed time (subsequent rate queries use this instant).
    pub fn stop(&mut self) {
        if self.stopped.is_none() {
            self.stopped = Some(self.started.elapsed());
        }
    }

    /// Elapsed wall-clock time (frozen if stopped).
    pub fn elapsed(&self) -> Duration {
        self.stopped.unwrap_or_else(|| self.started.elapsed())
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Messages per second.
    pub fn mps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.messages as f64 / secs
        }
    }

    /// Megabits per second over the recorded bytes.
    pub fn mbps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.bytes as f64 * 8.0) / (secs * 1_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_stats_merge_and_cleanliness() {
        let mut a = CaptureStats { frames: 10, dropped: 1, ..Default::default() };
        let b = CaptureStats { frames: 5, gaps: 2, lost: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.frames, 15);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.gaps, 2);
        assert_eq!(a.lost, 3);
        assert!(!a.is_clean());
        assert!(CaptureStats { frames: 100, ..Default::default() }.is_clean());
    }

    #[test]
    fn counts_accumulate() {
        let mut m = ThroughputMeter::new();
        m.record(100);
        m.record(200);
        m.record_batch(3, 300);
        assert_eq!(m.messages(), 5);
        assert_eq!(m.bytes(), 600);
    }

    #[test]
    fn rates_are_positive_after_work() {
        let mut m = ThroughputMeter::new();
        for _ in 0..1000 {
            m.record(125);
        }
        std::thread::sleep(Duration::from_millis(5));
        m.stop();
        assert!(m.mps() > 0.0);
        assert!(m.mbps() > 0.0);
    }

    #[test]
    fn stop_freezes_elapsed() {
        let mut m = ThroughputMeter::new();
        m.stop();
        let e1 = m.elapsed();
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(m.elapsed(), e1);
    }

    #[test]
    fn mbps_math() {
        // 1_000_000 bytes in exactly 1 second would be 8 Mbps; check the
        // formula via a frozen elapsed of ~0 by construction: use records
        // and verify proportionality instead of absolute timing.
        let mut a = ThroughputMeter::new();
        let mut b = ThroughputMeter::new();
        a.record_batch(1, 1_000);
        b.record_batch(1, 2_000);
        a.stop();
        b.stop();
        // Elapsed may differ by nanoseconds; compare ratios loosely.
        let ratio = b.bytes() as f64 / a.bytes() as f64;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}

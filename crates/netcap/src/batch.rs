//! Batched frame transport: many frames per channel operation.
//!
//! The per-message service shape ships one encoded frame per channel send,
//! so at capture-point rates the pipeline pays one synchronized channel
//! operation — and one allocation — per message. A [`FrameBatch`] amortizes
//! both: frames are packed back-to-back into a single contiguous **arena**
//! (`Bytes`, one allocation per batch) with an offset table, and the whole
//! batch crosses the agent→receiver link in one send. Frame views
//! ([`FrameBatch::frame`]) and decode ([`FrameBatch::decode_all`]) are
//! zero-copy: views are `Bytes::slice` handles into the shared arena, and
//! the codec parses straight out of it (`&[u8]` is a `Buf` cursor).
//!
//! Batching never changes *what* is shipped, only the channel-operation
//! granularity: frames keep their per-agent order inside the arena, so a
//! receiver that decodes batches in arrival order sees the byte-identical
//! frame stream of the per-message path. A batch size of 1 *is* the
//! per-message path, one arena per frame.
//!
//! ```
//! use gretel_netcap::{batch_frames, encode, FrameBatch};
//! # use gretel_model::*;
//! # let msg = Message {
//! #     id: MessageId(1), ts_us: 0, src_node: NodeId(0), dst_node: NodeId(1),
//! #     src_service: Service::Nova, dst_service: Service::Neutron, api: ApiId(1),
//! #     direction: Direction::Request,
//! #     wire: WireKind::Rest { method: HttpMethod::Get, uri: "/v2.1/servers".into(), status: None },
//! #     conn: ConnKey::default(), payload: vec![], correlation_id: None, project: None, truth_op: None,
//! #     truth_noise: false,
//! # };
//! let frames = vec![encode(&msg), encode(&msg), encode(&msg)];
//! let batches = batch_frames(&frames, 2);
//! assert_eq!(batches.len(), 2); // 2 + 1 frames
//! assert_eq!(batches[0].frames(), 2);
//! let decoded = batches[0].decode_all().unwrap();
//! assert_eq!(decoded[0].0, msg);
//! ```

use crate::frame::{decode_one_seq, CodecError};
use bytes::Bytes;
use gretel_model::Message;

/// A bounded group of encoded frames sharing one arena allocation, shipped
/// agent → receiver as a single channel operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameBatch {
    /// The arena: every frame's bytes, back to back, in per-agent order.
    buf: Bytes,
    /// `(start, end)` of each frame within `buf`.
    offsets: Vec<(u32, u32)>,
}

impl FrameBatch {
    /// Number of frames in the batch.
    pub fn frames(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total encoded bytes across every frame (the arena length).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Zero-copy view of the `i`-th frame: a `Bytes` handle sharing the
    /// arena allocation. Panics when `i >= frames()`.
    pub fn frame(&self, i: usize) -> Bytes {
        let (start, end) = self.offsets[i];
        self.buf.slice(start as usize..end as usize)
    }

    /// Borrowed view of the `i`-th frame's bytes.
    pub fn frame_slice(&self, i: usize) -> &[u8] {
        let (start, end) = self.offsets[i];
        &self.buf[start as usize..end as usize]
    }

    /// Iterate the frames as borrowed slices, in per-agent order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.frames()).map(|i| self.frame_slice(i))
    }

    /// Decode every frame in the batch, in order, straight out of the
    /// arena (no per-frame staging copy). Errors are permanent for the
    /// batch — a corrupt frame poisons it exactly like a corrupt frame
    /// poisons a per-message link.
    pub fn decode_all(&self) -> Result<Vec<(Message, Option<u64>)>, CodecError> {
        let mut out = Vec::with_capacity(self.frames());
        for frame in self.iter() {
            out.push(decode_one_seq(frame)?);
        }
        Ok(out)
    }
}

/// Incrementally packs encoded frames into bounded [`FrameBatch`]es.
/// Streaming agents push frames as they capture them and ship whatever
/// [`FrameBatchBuilder::push`] completes; [`FrameBatchBuilder::finish`]
/// flushes the remainder at end of stream.
#[derive(Debug)]
pub struct FrameBatchBuilder {
    max_frames: usize,
    data: Vec<u8>,
    offsets: Vec<(u32, u32)>,
}

impl FrameBatchBuilder {
    /// Builder emitting batches of at most `max_frames` frames (≥ 1;
    /// `max_frames == 1` reproduces the per-message path).
    pub fn new(max_frames: usize) -> FrameBatchBuilder {
        assert!(max_frames >= 1, "a batch holds at least one frame");
        FrameBatchBuilder { max_frames, data: Vec::new(), offsets: Vec::new() }
    }

    /// Append one encoded frame to the current batch; returns the
    /// completed batch once it reaches `max_frames`.
    pub fn push(&mut self, frame: &[u8]) -> Option<FrameBatch> {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(frame);
        self.offsets.push((start, self.data.len() as u32));
        (self.offsets.len() >= self.max_frames).then(|| self.take())
    }

    /// Flush the partial batch at end of stream (`None` when empty).
    pub fn finish(&mut self) -> Option<FrameBatch> {
        (!self.offsets.is_empty()).then(|| self.take())
    }

    fn take(&mut self) -> FrameBatch {
        FrameBatch {
            buf: Bytes::from(std::mem::take(&mut self.data)),
            offsets: std::mem::take(&mut self.offsets),
        }
    }
}

/// Pack an already-captured (and possibly impaired) frame list into
/// batches of at most `max_frames`. Impairment must be applied to the flat
/// frame list *before* batching — its drop/dup/reorder coins key on
/// per-agent frame indices, which batching must not renumber.
pub fn batch_frames(frames: &[Bytes], max_frames: usize) -> Vec<FrameBatch> {
    let mut builder = FrameBatchBuilder::new(max_frames);
    let mut out = Vec::with_capacity(frames.len().div_ceil(max_frames.max(1)));
    for frame in frames {
        out.extend(builder.push(frame));
    }
    out.extend(builder.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode, encode_seq};
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, Service, WireKind,
    };

    fn msgs(n: u64) -> Vec<Message> {
        (0..n)
            .map(|i| Message {
                id: MessageId(i),
                ts_us: i * 10,
                src_node: NodeId(0),
                dst_node: NodeId(1),
                src_service: Service::Nova,
                dst_service: Service::Neutron,
                api: ApiId(1),
                direction: Direction::Request,
                wire: WireKind::Rest {
                    method: HttpMethod::Get,
                    uri: "/v2.1/servers".into(),
                    status: None,
                },
                conn: ConnKey::default(),
                payload: format!("payload-{i}").into_bytes(),
                correlation_id: None,
                project: None,
                truth_op: None,
                truth_noise: false,
            })
            .collect()
    }

    #[test]
    fn batches_preserve_order_and_bytes() {
        let frames: Vec<Bytes> = msgs(10).iter().map(encode).collect();
        let batches = batch_frames(&frames, 4);
        assert_eq!(batches.iter().map(FrameBatch::frames).collect::<Vec<_>>(), vec![4, 4, 2]);
        let total: usize = batches.iter().map(FrameBatch::byte_len).sum();
        assert_eq!(total, frames.iter().map(Bytes::len).sum::<usize>());
        let rejoined: Vec<&[u8]> = batches.iter().flat_map(FrameBatch::iter).collect();
        for (orig, got) in frames.iter().zip(rejoined) {
            assert_eq!(&orig[..], got);
        }
    }

    #[test]
    fn decode_all_round_trips_with_seq() {
        let ms = msgs(5);
        let frames: Vec<Bytes> = ms.iter().enumerate().map(|(i, m)| encode_seq(m, i as u64)).collect();
        let [batch] = &batch_frames(&frames, 64)[..] else { panic!("one batch") };
        let decoded = batch.decode_all().unwrap();
        for (i, (m, seq)) in decoded.iter().enumerate() {
            assert_eq!(m, &ms[i]);
            assert_eq!(*seq, Some(i as u64));
        }
    }

    #[test]
    fn frame_views_share_the_arena() {
        let frames: Vec<Bytes> = msgs(3).iter().map(encode).collect();
        let [batch] = &batch_frames(&frames, 8)[..] else { panic!("one batch") };
        let view = batch.frame(1);
        assert_eq!(&view[..], &frames[1][..]);
        // A view is a slice of the arena, not a fresh allocation: its
        // length and content match without the batch being consumed.
        assert_eq!(batch.frame(1), view.clone());
    }

    #[test]
    fn batch_size_one_is_the_per_message_path() {
        let frames: Vec<Bytes> = msgs(3).iter().map(encode).collect();
        let batches = batch_frames(&frames, 1);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.frames() == 1));
    }

    #[test]
    fn corrupt_frame_poisons_the_batch() {
        let frames: Vec<Bytes> = msgs(2).iter().map(encode).collect();
        let mut bad = frames[1].to_vec();
        bad[4] = 0xFF; // clobber the magic
        let all = vec![frames[0].clone(), Bytes::from(bad)];
        let [batch] = &batch_frames(&all, 8)[..] else { panic!("one batch") };
        assert!(batch.decode_all().is_err());
    }

    #[test]
    fn empty_and_flush_behavior() {
        let mut b = FrameBatchBuilder::new(4);
        assert!(b.finish().is_none());
        assert!(b.push(b"xyzw").is_none());
        let flushed = b.finish().expect("partial batch flushes");
        assert_eq!(flushed.frames(), 1);
        assert_eq!(flushed.frame_slice(0), b"xyzw");
        assert!(b.finish().is_none(), "flush drains the builder");
        assert!(batch_frames(&[], 8).is_empty());
    }
}

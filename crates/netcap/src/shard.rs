//! Tenant-hash routing of captured traffic onto pipeline shards.
//!
//! The sharded pipeline (DESIGN.md §15) runs N independent
//! ingest→resequence→window→detect partitions; this module owns the one
//! policy they all must agree on: **which shard a message belongs to**.
//! Routing hashes the wire-visible Keystone project id
//! ([`gretel_model::ProjectId`], carried in every framed request — see
//! [`crate::frame::peek_project`]) so that all traffic of one tenant, and
//! therefore every event of one operation instance, lands on the same
//! shard. Traffic with no project scope (heartbeats, token issuance) hashes
//! under a fixed sentinel and so also stays on a single, stable shard.
//!
//! The hash is SplitMix64 over the project id, reduced modulo the shard
//! count. SplitMix64 passes avalanche tests, so consecutive project ids do
//! not clump onto consecutive shards, yet the function is pure and
//! platform-independent: the same message routes identically on every run,
//! which the byte-identity oracles in `gretel-bench --bin soak` rely on.

use crate::batch::{FrameBatch, FrameBatchBuilder};
use crate::frame::{peek_project, CodecError};
use gretel_model::{Message, ProjectId};

/// Hash seed distinguishing "no project" from project 0.
const NO_PROJECT_KEY: u64 = 0;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard index for a message scoped to `project`, out of `shards`
/// partitions.
///
/// Pure and deterministic: the routing table is the function itself, so
/// agents, the soak driver, and the analyzer-side router never need to
/// exchange assignments. `None` (no project scope) routes to a fixed shard
/// distinct from any particular tenant's.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(project: Option<ProjectId>, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let key = match project {
        Some(p) => 1 + p.0 as u64,
        None => NO_PROJECT_KEY,
    };
    (splitmix64(key) % shards as u64) as usize
}

/// Partition a decoded message stream into per-shard streams by tenant.
///
/// Relative order within each shard is the order of the input stream, so a
/// time-ordered input yields N time-ordered partitions — exactly what each
/// shard's resequencer expects.
pub fn partition_messages(traffic: &[Message], shards: usize) -> Vec<Vec<Message>> {
    assert!(shards > 0, "need at least one shard");
    let mut parts: Vec<Vec<Message>> = (0..shards)
        .map(|_| Vec::with_capacity(traffic.len() / shards + 1))
        .collect();
    for m in traffic {
        parts[shard_of(m.project, shards)].push(m.clone());
    }
    parts
}

/// Routes encoded frames into per-shard [`FrameBatch`]es.
///
/// The router peeks the project id at its fixed frame offset
/// ([`peek_project`]) — no full decode — and appends the frame to the
/// owning shard's arena builder. Full batches are handed back as they
/// close, so a capture loop can forward them downstream while the router
/// keeps filling the others.
pub struct ShardRouter {
    builders: Vec<FrameBatchBuilder>,
}

impl ShardRouter {
    /// Create a router for `shards` partitions, closing each shard's batch
    /// after `max_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` (`max_frames` is validated by
    /// [`FrameBatchBuilder::new`]).
    pub fn new(shards: usize, max_frames: usize) -> ShardRouter {
        assert!(shards > 0, "need at least one shard");
        ShardRouter { builders: (0..shards).map(|_| FrameBatchBuilder::new(max_frames)).collect() }
    }

    /// Number of shards this router fans out to.
    pub fn shards(&self) -> usize {
        self.builders.len()
    }

    /// Route one framed message. Returns the owning shard plus the shard's
    /// batch if this frame filled it.
    pub fn push(&mut self, frame: &[u8]) -> Result<(usize, Option<FrameBatch>), CodecError> {
        let shard = shard_of(peek_project(frame)?, self.builders.len());
        Ok((shard, self.builders[shard].push(frame)))
    }

    /// Close all open batches, returning the non-empty ones with their
    /// shard indices.
    pub fn finish(&mut self) -> Vec<(usize, FrameBatch)> {
        self.builders
            .iter_mut()
            .enumerate()
            .filter_map(|(i, b)| b.finish().map(|batch| (i, batch)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, MessageId, NodeId, Service, WireKind,
    };

    fn msg(project: Option<ProjectId>) -> Message {
        Message {
            id: MessageId(1),
            ts_us: 10,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Nova,
            dst_service: Service::Neutron,
            api: ApiId(3),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/v2.1/servers".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![1, 2, 3],
            correlation_id: None,
            project,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8, 16] {
            for p in 0..1000u32 {
                let s = shard_of(Some(ProjectId(p)), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(Some(ProjectId(p)), shards));
            }
            assert!(shard_of(None, shards) < shards);
        }
    }

    #[test]
    fn routing_spreads_tenants() {
        // 1000 projects over 8 shards: no shard may be empty or hold a
        // gross majority. SplitMix64's avalanche makes this deterministic.
        let mut counts = [0usize; 8];
        for p in 0..1000u32 {
            counts[shard_of(Some(ProjectId(p)), 8)] += 1;
        }
        for c in counts {
            assert!(c > 50 && c < 300, "skewed shard distribution: {counts:?}");
        }
    }

    #[test]
    fn message_partitions_agree_with_frame_routing() {
        let traffic: Vec<Message> = (0..100u32)
            .map(|i| msg((i % 7 != 0).then_some(ProjectId(i % 13))))
            .collect();
        let parts = partition_messages(&traffic, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), traffic.len());

        let mut router = ShardRouter::new(4, 1024);
        for m in &traffic {
            let (shard, closed) = router.push(&encode(m)).unwrap();
            assert_eq!(shard, shard_of(m.project, 4));
            assert!(closed.is_none());
        }
        let batches = router.finish();
        let mut from_frames: Vec<Vec<Message>> = vec![Vec::new(); 4];
        for (i, b) in batches {
            from_frames[i] =
                b.decode_all().unwrap().into_iter().map(|(m, _)| m).collect();
        }
        assert_eq!(parts, from_frames);
    }

    #[test]
    fn full_batches_are_handed_back_eagerly() {
        let mut router = ShardRouter::new(1, 2);
        let f = encode(&msg(Some(ProjectId(5))));
        assert!(router.push(&f).unwrap().1.is_none());
        let (_, closed) = router.push(&f).unwrap();
        assert_eq!(closed.expect("batch closes at max_frames").frames(), 2);
        assert!(router.finish().is_empty());
    }
}

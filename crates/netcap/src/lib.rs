//! # gretel-netcap — capture transport for GRETEL
//!
//! The monitoring substrate standing in for the paper's Bro + Broccoli
//! pipeline (see DESIGN.md §1):
//!
//! * [`frame`] — length-delimited binary codec for captured messages (the
//!   bytes whose volume the §7.4 throughput numbers measure);
//! * [`agent`] — per-node egress capture agents, relevance filtering, and
//!   the analyzer-side k-way merge back into one ordered stream;
//! * [`pcap`] — libpcap-flavoured dump files for captured traffic;
//! * [`stats`] — wall-clock throughput meters (events/s, Mbps).

#![warn(missing_docs)]

pub mod agent;
pub mod frame;
pub mod pcap;
pub mod stats;

pub use agent::{
    capture_and_merge, degrade, is_relevant, merge_captures, skew_clocks, AgentLink,
    CaptureAgent, Degradation,
};
pub use frame::{decode, decode_one, encode, encoded_len, CodecError};
pub use pcap::PcapReader;
pub use stats::ThroughputMeter;

//! # gretel-netcap — capture transport for GRETEL
//!
//! The monitoring substrate standing in for the paper's Bro + Broccoli
//! pipeline (see DESIGN.md §1):
//!
//! * [`frame`] — length-delimited binary codec for captured messages (the
//!   bytes whose volume the §7.4 throughput numbers measure);
//! * [`batch`] — arena-backed [`FrameBatch`]es: many frames per channel
//!   operation, zero-copy frame views and decode;
//! * [`agent`] — per-node egress capture agents, relevance filtering,
//!   the analyzer-side k-way merge back into one ordered stream, plus the
//!   capture-loss machinery: seeded [`CaptureImpairment`] injection and the
//!   receiver-side [`Resequencer`] that turns sequence holes into explicit
//!   gap markers;
//! * [`shard`] — tenant-hash routing of messages and frames onto the
//!   partitions of the sharded pipeline (DESIGN.md §15);
//! * [`pcap`] — libpcap-flavoured dump files for captured traffic;
//! * [`stats`] — wall-clock throughput meters (events/s, Mbps) and
//!   [`CaptureStats`] capture-quality counters.

#![deny(missing_docs)]

pub mod agent;
pub mod batch;
pub mod frame;
pub mod pcap;
pub mod shard;
pub mod stats;

pub use agent::{
    capture_and_merge, degrade, is_relevant, merge_captures, skew_clocks, AgentLink,
    CaptureAgent, CaptureImpairment, Degradation, Resequencer, StallSpec,
};
pub use batch::{batch_frames, FrameBatch, FrameBatchBuilder};
pub use frame::{
    decode, decode_one, decode_one_seq, decode_seq, encode, encode_seq, encoded_len, peek_project,
    CodecError,
};
pub use pcap::PcapReader;
pub use shard::{partition_messages, shard_of, ShardRouter};
pub use stats::{CaptureStats, ThroughputMeter};

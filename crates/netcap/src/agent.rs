//! Per-node monitoring agents.
//!
//! The paper deploys a Bro instance on every node to capture "relevant
//! OpenStack REST and RPC communication" (§5.1) and forward events to the
//! central analyzer over TCP (preserving per-stream order, §5.2). A
//! [`CaptureAgent`] is the simulated equivalent: it sees the messages that
//! *leave* its node (so every message is captured exactly once across the
//! deployment), filters out traffic GRETEL does not care about, and ships
//! encoded frames over an in-process channel.

use crate::frame;
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, Sender};
use gretel_model::{Message, NodeId, Service};

/// Traffic filter applied by agents: GRETEL monitors REST/RPC control
/// traffic only; database and NTP chatter is out of scope.
pub fn is_relevant(msg: &Message) -> bool {
    !matches!(msg.dst_service, Service::MySql | Service::Ntp)
        && !matches!(msg.src_service, Service::MySql | Service::Ntp)
}

/// A per-node capture agent.
#[derive(Debug, Clone)]
pub struct CaptureAgent {
    node: NodeId,
}

impl CaptureAgent {
    /// Agent watching `node`.
    pub fn new(node: NodeId) -> CaptureAgent {
        CaptureAgent { node }
    }

    /// The node this agent watches.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether this agent observes (and is responsible for forwarding)
    /// `msg`: egress capture, so exactly one agent owns each message.
    pub fn observes(&self, msg: &Message) -> bool {
        msg.src_node == self.node && is_relevant(msg)
    }

    /// Capture a slice of wire traffic: the frames this agent forwards.
    pub fn capture<'m>(
        &self,
        traffic: impl IntoIterator<Item = &'m Message>,
    ) -> Vec<Bytes> {
        traffic
            .into_iter()
            .filter(|m| self.observes(m))
            .map(frame::encode)
            .collect()
    }
}

/// An agent-to-analyzer link: bounded, in-order frame transport.
pub struct AgentLink {
    /// Sending half (held by the agent).
    pub tx: Sender<Bytes>,
    /// Receiving half (held by the event receiver).
    pub rx: Receiver<Bytes>,
}

impl AgentLink {
    /// Create a link with the given channel capacity.
    pub fn new(capacity: usize) -> AgentLink {
        let (tx, rx) = bounded(capacity);
        AgentLink { tx, rx }
    }
}

/// Deterministically merge per-agent capture batches back into one
/// timestamp-ordered stream (k-way merge; ties broken by message id, which
/// is globally unique). This mirrors the analyzer-side event receiver
/// reassembling one logical stream from many agent TCP connections.
pub fn merge_captures(batches: Vec<Vec<Message>>) -> Vec<Message> {
    let mut merged: Vec<Message> = batches.into_iter().flatten().collect();
    merged.sort_by_key(|m| (m.ts_us, m.id));
    merged
}

/// Split deployment-wide traffic into per-agent views, capturing with one
/// agent per node, and merge back into the analyzer's input order.
/// Returns the merged decoded stream plus the total encoded byte count
/// (what actually crossed the monitoring network).
pub fn capture_and_merge(nodes: &[NodeId], traffic: &[Message]) -> (Vec<Message>, usize) {
    let mut bytes_total = 0usize;
    let mut batches = Vec::with_capacity(nodes.len());
    for &node in nodes {
        let agent = CaptureAgent::new(node);
        let frames = agent.capture(traffic.iter());
        let mut decoded = Vec::with_capacity(frames.len());
        for f in frames {
            bytes_total += f.len();
            decoded.push(frame::decode_one(&f).expect("agent-encoded frame decodes"));
        }
        batches.push(decoded);
    }
    (merge_captures(batches), bytes_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, WireKind,
    };

    fn msg(id: u64, ts: u64, src: u8, dst_service: Service) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(src),
            dst_node: NodeId(0),
            src_service: Service::Nova,
            dst_service,
            api: ApiId(1),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![1, 2, 3],
            correlation_id: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn egress_capture_owns_each_message_once() {
        let traffic =
            [msg(0, 10, 0, Service::Neutron), msg(1, 20, 1, Service::Nova), msg(2, 30, 0, Service::Glance)];
        let a0 = CaptureAgent::new(NodeId(0));
        let a1 = CaptureAgent::new(NodeId(1));
        assert_eq!(a0.capture(traffic.iter()).len(), 2);
        assert_eq!(a1.capture(traffic.iter()).len(), 1);
    }

    #[test]
    fn database_and_ntp_traffic_is_filtered() {
        assert!(!is_relevant(&msg(0, 0, 0, Service::MySql)));
        assert!(!is_relevant(&msg(0, 0, 0, Service::Ntp)));
        assert!(is_relevant(&msg(0, 0, 0, Service::RabbitMq)));
        assert!(is_relevant(&msg(0, 0, 0, Service::Neutron)));
    }

    #[test]
    fn capture_and_merge_restores_global_order() {
        let traffic = vec![
            msg(0, 30, 2, Service::Nova),
            msg(1, 10, 0, Service::Neutron),
            msg(2, 20, 1, Service::Glance),
        ];
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let (merged, bytes) = capture_and_merge(&nodes, &traffic);
        assert_eq!(merged.len(), 3);
        assert!(bytes > 0);
        let ts: Vec<u64> = merged.iter().map(|m| m.ts_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn merge_breaks_ties_by_message_id() {
        let batches = vec![vec![msg(5, 100, 0, Service::Nova)], vec![msg(2, 100, 1, Service::Nova)]];
        let merged = merge_captures(batches);
        assert_eq!(merged[0].id, MessageId(2));
        assert_eq!(merged[1].id, MessageId(5));
    }

    #[test]
    fn agent_link_is_fifo() {
        let link = AgentLink::new(16);
        for i in 0..10u8 {
            link.tx.send(Bytes::from(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(link.rx.recv().unwrap()[0], i);
        }
    }
}

/// Capture degradation model: the monitoring path itself can lose frames
/// (an overloaded span port, a Bro worker shedding load). GRETEL is built
/// to degrade gracefully — starred symbols may be missing from a snapshot
/// without invalidating a match — and this models the condition.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// Independent probability of losing each captured message.
    pub drop_prob: f64,
    /// RNG seed (deterministic degradation).
    pub seed: u64,
}

/// Apply capture loss to a traffic log. Error messages are never dropped
/// when `keep_errors` is set (a convenient way to isolate the effect of
/// losing *context* from the effect of losing the fault itself).
pub fn degrade(
    traffic: &[Message],
    degradation: Degradation,
    keep_errors: bool,
) -> Vec<Message> {
    // Deterministic per-message coin flips via splitmix64 so degradation
    // does not depend on iteration patterns.
    let mut out = Vec::with_capacity(traffic.len());
    for m in traffic {
        if keep_errors && (m.is_rest_error() || m.is_rpc_error()) {
            out.push(m.clone());
            continue;
        }
        let mut x = degradation.seed ^ m.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let coin = (x >> 11) as f64 / (1u64 << 53) as f64;
        if coin >= degradation.drop_prob {
            out.push(m.clone());
        }
    }
    out
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use gretel_model::message::render_rest_response_payload;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, Service, WireKind,
    };

    fn msg(id: u64, status: Option<u16>) -> Message {
        Message {
            id: MessageId(id),
            ts_us: id,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Horizon,
            dst_service: Service::Nova,
            api: ApiId(1),
            direction: Direction::Response,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status },
            conn: ConnKey::default(),
            payload: status
                .map(|s| render_rest_response_payload(s, "x", 8))
                .unwrap_or_default(),
            correlation_id: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn zero_loss_is_identity() {
        let traffic: Vec<Message> = (0..100).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.0, seed: 1 }, false);
        assert_eq!(out, traffic);
    }

    #[test]
    fn loss_rate_is_approximately_honored() {
        let traffic: Vec<Message> = (0..10_000).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.3, seed: 2 }, false);
        let kept = out.len() as f64 / traffic.len() as f64;
        assert!((kept - 0.7).abs() < 0.03, "kept {kept}");
    }

    #[test]
    fn degradation_is_deterministic() {
        let traffic: Vec<Message> = (0..1_000).map(|i| msg(i, Some(200))).collect();
        let a = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 3 }, false);
        let b = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 3 }, false);
        assert_eq!(a, b);
        let c = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 4 }, false);
        assert_ne!(a, c);
    }

    #[test]
    fn errors_survive_when_requested() {
        let traffic: Vec<Message> =
            (0..1_000).map(|i| msg(i, Some(if i % 10 == 0 { 500 } else { 200 }))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.9, seed: 5 }, true);
        let errors = out.iter().filter(|m| m.is_rest_error()).count();
        assert_eq!(errors, 100, "all errors kept");
    }

    #[test]
    fn order_is_preserved() {
        let traffic: Vec<Message> = (0..500).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.4, seed: 6 }, false);
        for w in out.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }
}

/// Apply per-node clock skew to captured timestamps (NTP drift on the
/// *monitoring* hosts, not the deployment — the paper mandates NTP
/// everywhere precisely because skew reorders the merged event stream).
/// Each node gets a deterministic offset in `[-max_skew_us, +max_skew_us]`
/// and the stream is re-sorted the way the analyzer-side merge would see
/// it.
pub fn skew_clocks(traffic: &[Message], max_skew_us: i64, seed: u64) -> Vec<Message> {
    let offset = |node: NodeId| -> i64 {
        if max_skew_us == 0 {
            return 0;
        }
        let mut x = seed ^ ((node.0 as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        x ^= x >> 33;
        x = x.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        x ^= x >> 29;
        (x % (2 * max_skew_us as u64 + 1)) as i64 - max_skew_us
    };
    let mut out: Vec<Message> = traffic
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.ts_us = m.ts_us.saturating_add_signed(offset(m.src_node));
            m
        })
        .collect();
    out.sort_by_key(|m| (m.ts_us, m.id));
    out
}

#[cfg(test)]
mod skew_tests {
    use super::*;
    use gretel_model::{ApiId, ConnKey, Direction, HttpMethod, MessageId, Service, WireKind};

    fn msg(id: u64, ts: u64, node: u8) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(node),
            dst_node: NodeId(0),
            src_service: Service::Nova,
            dst_service: Service::Horizon,
            api: ApiId(1),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn zero_skew_is_identity() {
        let traffic: Vec<Message> = (0..50).map(|i| msg(i, i * 10, (i % 5) as u8)).collect();
        assert_eq!(skew_clocks(&traffic, 0, 1), traffic);
    }

    #[test]
    fn skew_is_per_node_and_bounded() {
        let traffic: Vec<Message> = (0..200).map(|i| msg(i, 1_000_000 + i, (i % 7) as u8)).collect();
        let skewed = skew_clocks(&traffic, 500, 9);
        for m in &skewed {
            let orig = traffic.iter().find(|o| o.id == m.id).unwrap();
            let delta = m.ts_us as i64 - orig.ts_us as i64;
            assert!(delta.abs() <= 500, "delta {delta}");
        }
        // Same node always gets the same offset.
        let deltas: std::collections::HashSet<i64> = skewed
            .iter()
            .filter(|m| m.src_node == NodeId(3))
            .map(|m| {
                let orig = traffic.iter().find(|o| o.id == m.id).unwrap();
                m.ts_us as i64 - orig.ts_us as i64
            })
            .collect();
        assert_eq!(deltas.len(), 1);
    }

    #[test]
    fn output_is_time_sorted() {
        let traffic: Vec<Message> = (0..300).map(|i| msg(i, i * 3, (i % 7) as u8)).collect();
        let skewed = skew_clocks(&traffic, 1_000, 4);
        for w in skewed.windows(2) {
            assert!((w[0].ts_us, w[0].id) <= (w[1].ts_us, w[1].id));
        }
    }
}

//! Per-node monitoring agents.
//!
//! The paper deploys a Bro instance on every node to capture "relevant
//! OpenStack REST and RPC communication" (§5.1) and forward events to the
//! central analyzer over TCP (preserving per-stream order, §5.2). A
//! [`CaptureAgent`] is the simulated equivalent: it sees the messages that
//! *leave* its node (so every message is captured exactly once across the
//! deployment), filters out traffic GRETEL does not care about, and ships
//! encoded frames over an in-process channel.

use crate::frame;
use crate::stats::CaptureStats;
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, Sender};
use gretel_model::{Message, NodeId, Service};
use std::collections::BTreeMap;

/// Traffic filter applied by agents: GRETEL monitors REST/RPC control
/// traffic only; database and NTP chatter is out of scope.
pub fn is_relevant(msg: &Message) -> bool {
    !matches!(msg.dst_service, Service::MySql | Service::Ntp)
        && !matches!(msg.src_service, Service::MySql | Service::Ntp)
}

/// A per-node capture agent.
///
/// Egress capture: an agent owns exactly the messages whose source node it
/// watches, so across a deployment every message is captured once.
///
/// ```
/// use gretel_model::{
///     ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, Service, WireKind,
/// };
/// use gretel_netcap::{decode_one, CaptureAgent};
///
/// let msg = Message {
///     id: MessageId(7),
///     ts_us: 1_000,
///     src_node: NodeId(2),
///     dst_node: NodeId(0),
///     src_service: Service::Nova,
///     dst_service: Service::Neutron,
///     api: ApiId(12),
///     direction: Direction::Request,
///     wire: WireKind::Rest { method: HttpMethod::Get, uri: "/v2.0/ports.json".into(), status: None },
///     conn: ConnKey::default(),
///     payload: vec![],
///     correlation_id: None,
///     project: None,
///     truth_op: None,
///     truth_noise: false,
/// };
///
/// let agent = CaptureAgent::new(NodeId(2));
/// assert!(agent.observes(&msg)); // egress: the source node's agent owns it
/// assert!(!CaptureAgent::new(NodeId(0)).observes(&msg));
///
/// let frames = agent.capture([&msg]);
/// assert_eq!(decode_one(&frames[0]).unwrap(), msg);
/// ```
#[derive(Debug, Clone)]
pub struct CaptureAgent {
    node: NodeId,
}

impl CaptureAgent {
    /// Agent watching `node`.
    pub fn new(node: NodeId) -> CaptureAgent {
        CaptureAgent { node }
    }

    /// The node this agent watches.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether this agent observes (and is responsible for forwarding)
    /// `msg`: egress capture, so exactly one agent owns each message.
    pub fn observes(&self, msg: &Message) -> bool {
        msg.src_node == self.node && is_relevant(msg)
    }

    /// Capture a slice of wire traffic: the frames this agent forwards.
    pub fn capture<'m>(
        &self,
        traffic: impl IntoIterator<Item = &'m Message>,
    ) -> Vec<Bytes> {
        traffic
            .into_iter()
            .filter(|m| self.observes(m))
            .map(frame::encode)
            .collect()
    }

    /// Like [`CaptureAgent::capture`], but stamp each frame with a
    /// consecutive per-agent sequence number starting at `start_seq` (see
    /// [`frame::encode_seq`]). The receiver uses the numbers to detect
    /// capture loss.
    pub fn capture_seq<'m>(
        &self,
        traffic: impl IntoIterator<Item = &'m Message>,
        start_seq: u64,
    ) -> Vec<Bytes> {
        traffic
            .into_iter()
            .filter(|m| self.observes(m))
            .enumerate()
            .map(|(i, m)| frame::encode_seq(m, start_seq + i as u64))
            .collect()
    }
}

/// An agent-to-analyzer link: bounded, in-order frame transport.
pub struct AgentLink {
    /// Sending half (held by the agent).
    pub tx: Sender<Bytes>,
    /// Receiving half (held by the event receiver).
    pub rx: Receiver<Bytes>,
}

impl AgentLink {
    /// Create a link with the given channel capacity.
    pub fn new(capacity: usize) -> AgentLink {
        let (tx, rx) = bounded(capacity);
        AgentLink { tx, rx }
    }
}

/// Deterministically merge per-agent capture batches back into one
/// timestamp-ordered stream (k-way merge; ties broken by message id, which
/// is globally unique). This mirrors the analyzer-side event receiver
/// reassembling one logical stream from many agent TCP connections.
pub fn merge_captures(batches: Vec<Vec<Message>>) -> Vec<Message> {
    let mut merged: Vec<Message> = batches.into_iter().flatten().collect();
    merged.sort_by_key(|m| (m.ts_us, m.id));
    merged
}

/// Split deployment-wide traffic into per-agent views, capturing with one
/// agent per node, and merge back into the analyzer's input order.
/// Returns the merged decoded stream plus the total encoded byte count
/// (what actually crossed the monitoring network), or the codec error if a
/// frame fails to round-trip (a corrupted link, or an agent/analyzer
/// version mismatch — never silently dropped).
pub fn capture_and_merge(
    nodes: &[NodeId],
    traffic: &[Message],
) -> Result<(Vec<Message>, usize), frame::CodecError> {
    let mut bytes_total = 0usize;
    let mut batches = Vec::with_capacity(nodes.len());
    for &node in nodes {
        let agent = CaptureAgent::new(node);
        let frames = agent.capture(traffic.iter());
        let mut decoded = Vec::with_capacity(frames.len());
        for f in frames {
            bytes_total += f.len();
            decoded.push(frame::decode_one(&f)?);
        }
        batches.push(decoded);
    }
    Ok((merge_captures(batches), bytes_total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, WireKind,
    };

    fn msg(id: u64, ts: u64, src: u8, dst_service: Service) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(src),
            dst_node: NodeId(0),
            src_service: Service::Nova,
            dst_service,
            api: ApiId(1),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![1, 2, 3],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn egress_capture_owns_each_message_once() {
        let traffic =
            [msg(0, 10, 0, Service::Neutron), msg(1, 20, 1, Service::Nova), msg(2, 30, 0, Service::Glance)];
        let a0 = CaptureAgent::new(NodeId(0));
        let a1 = CaptureAgent::new(NodeId(1));
        assert_eq!(a0.capture(traffic.iter()).len(), 2);
        assert_eq!(a1.capture(traffic.iter()).len(), 1);
    }

    #[test]
    fn database_and_ntp_traffic_is_filtered() {
        assert!(!is_relevant(&msg(0, 0, 0, Service::MySql)));
        assert!(!is_relevant(&msg(0, 0, 0, Service::Ntp)));
        assert!(is_relevant(&msg(0, 0, 0, Service::RabbitMq)));
        assert!(is_relevant(&msg(0, 0, 0, Service::Neutron)));
    }

    #[test]
    fn capture_and_merge_restores_global_order() {
        let traffic = vec![
            msg(0, 30, 2, Service::Nova),
            msg(1, 10, 0, Service::Neutron),
            msg(2, 20, 1, Service::Glance),
        ];
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let (merged, bytes) = capture_and_merge(&nodes, &traffic).unwrap();
        assert_eq!(merged.len(), 3);
        assert!(bytes > 0);
        let ts: Vec<u64> = merged.iter().map(|m| m.ts_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn merge_breaks_ties_by_message_id() {
        let batches = vec![vec![msg(5, 100, 0, Service::Nova)], vec![msg(2, 100, 1, Service::Nova)]];
        let merged = merge_captures(batches);
        assert_eq!(merged[0].id, MessageId(2));
        assert_eq!(merged[1].id, MessageId(5));
    }

    #[test]
    fn agent_link_is_fifo() {
        let link = AgentLink::new(16);
        for i in 0..10u8 {
            link.tx.send(Bytes::from(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(link.rx.recv().unwrap()[0], i);
        }
    }
}

/// Capture degradation model: the monitoring path itself can lose frames
/// (an overloaded span port, a Bro worker shedding load). GRETEL is built
/// to degrade gracefully — starred symbols may be missing from a snapshot
/// without invalidating a match — and this models the condition.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// Independent probability of losing each captured message.
    pub drop_prob: f64,
    /// RNG seed (deterministic degradation).
    pub seed: u64,
}

/// Apply capture loss to a traffic log. Error messages are never dropped
/// when `keep_errors` is set (a convenient way to isolate the effect of
/// losing *context* from the effect of losing the fault itself).
pub fn degrade(
    traffic: &[Message],
    degradation: Degradation,
    keep_errors: bool,
) -> Vec<Message> {
    // Deterministic per-message coin flips via splitmix64 so degradation
    // does not depend on iteration patterns.
    let mut out = Vec::with_capacity(traffic.len());
    for m in traffic {
        if keep_errors && (m.is_rest_error() || m.is_rpc_error()) {
            out.push(m.clone());
            continue;
        }
        let mut x = degradation.seed ^ m.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let coin = (x >> 11) as f64 / (1u64 << 53) as f64;
        if coin >= degradation.drop_prob {
            out.push(m.clone());
        }
    }
    out
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use gretel_model::message::render_rest_response_payload;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, Service, WireKind,
    };

    fn msg(id: u64, status: Option<u16>) -> Message {
        Message {
            id: MessageId(id),
            ts_us: id,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Horizon,
            dst_service: Service::Nova,
            api: ApiId(1),
            direction: Direction::Response,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status },
            conn: ConnKey::default(),
            payload: status
                .map(|s| render_rest_response_payload(s, "x", 8))
                .unwrap_or_default(),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn zero_loss_is_identity() {
        let traffic: Vec<Message> = (0..100).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.0, seed: 1 }, false);
        assert_eq!(out, traffic);
    }

    #[test]
    fn loss_rate_is_approximately_honored() {
        let traffic: Vec<Message> = (0..10_000).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.3, seed: 2 }, false);
        let kept = out.len() as f64 / traffic.len() as f64;
        assert!((kept - 0.7).abs() < 0.03, "kept {kept}");
    }

    #[test]
    fn degradation_is_deterministic() {
        let traffic: Vec<Message> = (0..1_000).map(|i| msg(i, Some(200))).collect();
        let a = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 3 }, false);
        let b = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 3 }, false);
        assert_eq!(a, b);
        let c = degrade(&traffic, Degradation { drop_prob: 0.5, seed: 4 }, false);
        assert_ne!(a, c);
    }

    #[test]
    fn errors_survive_when_requested() {
        let traffic: Vec<Message> =
            (0..1_000).map(|i| msg(i, Some(if i % 10 == 0 { 500 } else { 200 }))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.9, seed: 5 }, true);
        let errors = out.iter().filter(|m| m.is_rest_error()).count();
        assert_eq!(errors, 100, "all errors kept");
    }

    #[test]
    fn order_is_preserved() {
        let traffic: Vec<Message> = (0..500).map(|i| msg(i, Some(200))).collect();
        let out = degrade(&traffic, Degradation { drop_prob: 0.4, seed: 6 }, false);
        for w in out.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }
}

/// Apply per-node clock skew to captured timestamps (NTP drift on the
/// *monitoring* hosts, not the deployment — the paper mandates NTP
/// everywhere precisely because skew reorders the merged event stream).
/// Each node gets a deterministic offset in `[-max_skew_us, +max_skew_us]`
/// and the stream is re-sorted the way the analyzer-side merge would see
/// it.
pub fn skew_clocks(traffic: &[Message], max_skew_us: i64, seed: u64) -> Vec<Message> {
    let offset = |node: NodeId| -> i64 {
        if max_skew_us == 0 {
            return 0;
        }
        let mut x = seed ^ ((node.0 as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        x ^= x >> 33;
        x = x.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        x ^= x >> 29;
        (x % (2 * max_skew_us as u64 + 1)) as i64 - max_skew_us
    };
    let mut out: Vec<Message> = traffic
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.ts_us = m.ts_us.saturating_add_signed(offset(m.src_node));
            m
        })
        .collect();
    out.sort_by_key(|m| (m.ts_us, m.id));
    out
}

#[cfg(test)]
mod skew_tests {
    use super::*;
    use gretel_model::{ApiId, ConnKey, Direction, HttpMethod, MessageId, Service, WireKind};

    fn msg(id: u64, ts: u64, node: u8) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(node),
            dst_node: NodeId(0),
            src_service: Service::Nova,
            dst_service: Service::Horizon,
            api: ApiId(1),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn zero_skew_is_identity() {
        let traffic: Vec<Message> = (0..50).map(|i| msg(i, i * 10, (i % 5) as u8)).collect();
        assert_eq!(skew_clocks(&traffic, 0, 1), traffic);
    }

    #[test]
    fn skew_is_per_node_and_bounded() {
        let traffic: Vec<Message> = (0..200).map(|i| msg(i, 1_000_000 + i, (i % 7) as u8)).collect();
        let skewed = skew_clocks(&traffic, 500, 9);
        for m in &skewed {
            let orig = traffic.iter().find(|o| o.id == m.id).unwrap();
            let delta = m.ts_us as i64 - orig.ts_us as i64;
            assert!(delta.abs() <= 500, "delta {delta}");
        }
        // Same node always gets the same offset.
        let deltas: std::collections::HashSet<i64> = skewed
            .iter()
            .filter(|m| m.src_node == NodeId(3))
            .map(|m| {
                let orig = traffic.iter().find(|o| o.id == m.id).unwrap();
                m.ts_us as i64 - orig.ts_us as i64
            })
            .collect();
        assert_eq!(deltas.len(), 1);
    }

    #[test]
    fn output_is_time_sorted() {
        let traffic: Vec<Message> = (0..300).map(|i| msg(i, i * 3, (i % 7) as u8)).collect();
        let skewed = skew_clocks(&traffic, 1_000, 4);
        for w in skewed.windows(2) {
            assert!((w[0].ts_us, w[0].id) <= (w[1].ts_us, w[1].id));
        }
    }
}

/// Deterministic 64-bit hash of (seed, agent, index, salt) — splitmix64
/// finalizer, same family as [`degrade`]'s per-message coin. Every
/// impairment decision is a pure function of these four values, so a run is
/// reproducible regardless of thread scheduling or batch boundaries.
fn mix64(seed: u64, agent: u8, idx: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ (agent as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (salt + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

fn coin(seed: u64, agent: u8, idx: u64, salt: u64) -> f64 {
    (mix64(seed, agent, idx, salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// An agent outage: the agent captures nothing for a window of frames and
/// then comes back (a Bro worker restart). Frame indices are counted per
/// agent from the start of its stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallSpec {
    /// First frame index swallowed by the stall.
    pub start_frame: u64,
    /// How many consecutive frames the stall swallows.
    pub frames: u64,
}

/// Seeded, deterministic capture-plane impairment.
///
/// Wraps any agent's encoded frame stream and perturbs it the way an
/// overloaded tap does: independent probabilistic frame drop and
/// duplication, bounded reordering (a frame may be delayed by at most
/// `reorder_span` positions), and an optional agent stall window. All
/// decisions derive from `(seed, agent, frame index)`, so two runs with the
/// same seed impair identically.
///
/// ```
/// use bytes::Bytes;
/// use gretel_model::NodeId;
/// use gretel_netcap::{CaptureImpairment, CaptureStats};
///
/// let frames: Vec<Bytes> = (0..100u8).map(|i| Bytes::from(vec![i])).collect();
/// let imp = CaptureImpairment { drop_prob: 0.2, seed: 7, ..CaptureImpairment::none() };
///
/// let mut stats = CaptureStats::default();
/// let out = imp.apply(NodeId(0), frames.clone(), &mut stats);
/// assert_eq!(stats.frames, 100);
/// assert!(stats.dropped > 0);
/// assert_eq!(out.len() as u64, 100 - stats.dropped);
///
/// // Same seed, same impairment: the injector is deterministic.
/// let mut again = CaptureStats::default();
/// assert_eq!(imp.apply(NodeId(0), frames, &mut again), out);
/// assert_eq!(again, stats);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureImpairment {
    /// Independent probability of dropping each frame.
    pub drop_prob: f64,
    /// Independent probability of emitting each frame twice.
    pub dup_prob: f64,
    /// Independent probability of delaying a frame out of order.
    pub reorder_prob: f64,
    /// Maximum positions a reordered frame is delayed by (bounded reorder).
    pub reorder_span: usize,
    /// Optional agent stall-and-restart window.
    pub stall: Option<StallSpec>,
    /// RNG seed; all decisions are pure functions of it.
    pub seed: u64,
}

impl CaptureImpairment {
    /// The identity impairment: every rate zero, no stall.
    pub fn none() -> CaptureImpairment {
        CaptureImpairment {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_span: 0,
            stall: None,
            seed: 0,
        }
    }

    /// True when applying this impairment cannot change any stream.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && (self.reorder_prob <= 0.0 || self.reorder_span == 0)
            && self.stall.is_none()
    }

    /// Perturb one agent's frame stream, accumulating what happened into
    /// `stats`. Frame indices continue across calls only if the caller
    /// passes the whole stream at once; pass a full capture batch for
    /// reproducible results.
    pub fn apply(&self, agent: NodeId, frames: Vec<Bytes>, stats: &mut CaptureStats) -> Vec<Bytes> {
        stats.frames += frames.len() as u64;
        if self.is_noop() {
            return frames;
        }
        let mut survivors: Vec<Bytes> = Vec::with_capacity(frames.len());
        for (i, f) in frames.into_iter().enumerate() {
            let idx = i as u64;
            if let Some(s) = self.stall {
                if idx >= s.start_frame && idx < s.start_frame.saturating_add(s.frames) {
                    stats.stalled += 1;
                    continue;
                }
            }
            if self.drop_prob > 0.0 && coin(self.seed, agent.0, idx, 1) < self.drop_prob {
                stats.dropped += 1;
                continue;
            }
            if self.dup_prob > 0.0 && coin(self.seed, agent.0, idx, 2) < self.dup_prob {
                stats.duplicated += 1;
                survivors.push(f.clone());
            }
            survivors.push(f);
        }
        if self.reorder_prob > 0.0 && self.reorder_span > 0 {
            // Delay selected frames by a bounded number of positions: give
            // each survivor a sort key of its position plus jitter, then
            // stable-sort. Un-jittered frames keep their relative order.
            let mut keyed: Vec<(usize, usize, Bytes)> = survivors
                .into_iter()
                .enumerate()
                .map(|(j, f)| {
                    let jitter = if coin(self.seed, agent.0, j as u64, 3) < self.reorder_prob {
                        1 + (mix64(self.seed, agent.0, j as u64, 4) as usize % self.reorder_span)
                    } else {
                        0
                    };
                    (j + jitter, j, f)
                })
                .collect();
            keyed.sort_by_key(|&(key, _, _)| key);
            stats.reordered +=
                keyed.iter().enumerate().filter(|&(out_j, &(_, j, _))| out_j != j).count() as u64;
            survivors = keyed.into_iter().map(|(_, _, f)| f).collect();
        }
        survivors
    }
}

/// Receiver-side per-agent sequence tracking.
///
/// Consumes `(seq, message)` pairs as decoded off one agent's link and
/// restores sequence order where possible: out-of-order frames are parked
/// in a bounded pending buffer, duplicates (an already-delivered or
/// already-pending sequence number) are discarded, and once the buffer
/// exceeds its depth the resequencer force-advances past the missing
/// numbers, reporting them as a capture gap. Each emitted message carries
/// the number of frames inferred lost immediately before it — the
/// "synthetic gap marker" the analyzer turns into degraded-confidence
/// diagnoses.
///
/// Frames with no sequence number (legacy captures) pass straight through.
#[derive(Debug, Default)]
pub struct Resequencer {
    next: u64,
    pending: BTreeMap<u64, Message>,
    depth: usize,
    stats: CaptureStats,
}

impl Resequencer {
    /// A resequencer willing to park up to `depth` out-of-order frames.
    /// Depth 0 never reorders: any forward jump is reported as a gap
    /// immediately.
    pub fn new(depth: usize) -> Resequencer {
        Resequencer { next: 0, pending: BTreeMap::new(), depth, stats: CaptureStats::default() }
    }

    /// Feed one decoded frame. Returns the messages released in sequence
    /// order, each tagged with the count of frames lost immediately before
    /// it (0 = no gap).
    pub fn push(&mut self, seq: Option<u64>, msg: Message) -> Vec<(u32, Message)> {
        let mut out = Vec::with_capacity(1);
        let Some(seq) = seq else {
            // Unsequenced frame: nothing to infer, pass through.
            out.push((0, msg));
            return out;
        };
        if seq < self.next || self.pending.contains_key(&seq) {
            self.stats.dup_discarded += 1;
            return out;
        }
        if seq == self.next {
            self.next += 1;
            out.push((0, msg));
            self.drain_ready(&mut out);
        } else {
            self.pending.insert(seq, msg);
            while self.pending.len() > self.depth {
                self.force_advance(&mut out);
            }
        }
        out
    }

    /// Release everything still pending (end of stream), reporting the
    /// remaining holes as gaps.
    pub fn flush(&mut self) -> Vec<(u32, Message)> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            self.force_advance(&mut out);
        }
        out
    }

    /// What this resequencer observed so far (`gaps`, `lost`,
    /// `dup_discarded`; the injector-side counters stay zero).
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Flow this resequencer's counters into a pipeline metrics registry
    /// (see [`CaptureStats::record_into`]). Call once at end of stream —
    /// the registry's meters are cumulative, so flushing mid-stream and
    /// again at the end would double-count.
    pub fn record_stats_into(&self, m: &gretel_obs::PipelineMetrics) {
        self.stats.record_into(m);
    }

    fn force_advance(&mut self, out: &mut Vec<(u32, Message)>) {
        // Stale entries (seq < next) cannot arise from `push`, which
        // discards them on arrival — but a parked frame restored from a
        // checkpoint taken by older code, or any future caller invariant
        // slip, would make `seq - self.next` underflow into a ~u64::MAX
        // gap (a debug-build panic). Discard them as late duplicates
        // instead of advancing.
        while let Some((seq, msg)) = self.pending.pop_first() {
            if seq < self.next {
                self.stats.dup_discarded += 1;
                continue;
            }
            let gap = seq - self.next;
            if gap > 0 {
                self.stats.gaps += 1;
                self.stats.lost += gap;
            }
            self.next = seq + 1;
            out.push((gap as u32, msg));
            self.drain_ready(out);
            return;
        }
    }

    fn drain_ready(&mut self, out: &mut Vec<(u32, Message)>) {
        while let Some(msg) = self.pending.remove(&self.next) {
            self.next += 1;
            out.push((0, msg));
        }
    }

    /// Serialize the full resequencing state — delivery position, parked
    /// out-of-order frames, depth and accumulated stats — for an analyzer
    /// checkpoint. Restoring with [`Resequencer::restore_state`] and
    /// replaying the agent stream from the beginning yields exactly the
    /// suffix the uninterrupted resequencer would have produced: replayed
    /// frames with `seq < next` (or already parked) are discarded as
    /// duplicates, so the downstream merge sees each message once.
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.pending.len() * 64);
        out.extend_from_slice(&self.next.to_le_bytes());
        out.extend_from_slice(&(self.depth as u64).to_le_bytes());
        for v in [
            self.stats.frames,
            self.stats.dropped,
            self.stats.duplicated,
            self.stats.reordered,
            self.stats.stalled,
            self.stats.gaps,
            self.stats.lost,
            self.stats.dup_discarded,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for (&seq, msg) in &self.pending {
            let encoded = frame::encode(msg);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
            out.extend_from_slice(&encoded);
        }
        out
    }

    /// Rebuild a resequencer from [`Resequencer::export_state`] bytes.
    /// Malformed input is a [`frame::CodecError`], never a partial restore.
    pub fn restore_state(bytes: &[u8]) -> Result<Resequencer, frame::CodecError> {
        use frame::CodecError;
        fn take<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], CodecError> {
            if buf.len() < N {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = buf.split_at(N);
            *buf = rest;
            Ok(head.try_into().expect("split_at length"))
        }
        let mut buf = bytes;
        let next = u64::from_le_bytes(take(&mut buf)?);
        let depth = u64::from_le_bytes(take(&mut buf)?) as usize;
        let mut fields = [0u64; 8];
        for f in &mut fields {
            *f = u64::from_le_bytes(take(&mut buf)?);
        }
        let stats = CaptureStats {
            frames: fields[0],
            dropped: fields[1],
            duplicated: fields[2],
            reordered: fields[3],
            stalled: fields[4],
            gaps: fields[5],
            lost: fields[6],
            dup_discarded: fields[7],
        };
        let count = u32::from_le_bytes(take(&mut buf)?) as usize;
        let mut pending = BTreeMap::new();
        for _ in 0..count {
            let seq = u64::from_le_bytes(take(&mut buf)?);
            let len = u32::from_le_bytes(take(&mut buf)?) as usize;
            if buf.len() < len {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = buf.split_at(len);
            buf = rest;
            pending.insert(seq, frame::decode_one(head)?);
        }
        if !buf.is_empty() {
            return Err(CodecError::InvalidField("trailing bytes after resequencer state"));
        }
        Ok(Resequencer { next, pending, depth, stats })
    }
}

#[cfg(test)]
mod impairment_tests {
    use super::*;
    use gretel_model::{ApiId, ConnKey, Direction, HttpMethod, MessageId, Service, WireKind};

    fn frames(n: u64) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(i.to_le_bytes().to_vec())).collect()
    }

    fn msg(id: u64) -> Message {
        Message {
            id: MessageId(id),
            ts_us: id,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: Service::Nova,
            dst_service: Service::Neutron,
            api: ApiId(1),
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status: None },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn noop_impairment_is_identity() {
        let f = frames(50);
        let mut stats = CaptureStats::default();
        let out = CaptureImpairment::none().apply(NodeId(3), f.clone(), &mut stats);
        assert_eq!(out, f);
        assert_eq!(stats.frames, 50);
        assert!(stats.is_clean());
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let f = frames(10_000);
        let mut stats = CaptureStats::default();
        let imp = CaptureImpairment { drop_prob: 0.1, seed: 11, ..CaptureImpairment::none() };
        let out = imp.apply(NodeId(0), f, &mut stats);
        let kept = out.len() as f64 / 10_000.0;
        assert!((kept - 0.9).abs() < 0.02, "kept {kept}");
        assert_eq!(out.len() as u64 + stats.dropped, stats.frames);
    }

    #[test]
    fn duplication_emits_adjacent_copies() {
        let f = frames(5_000);
        let mut stats = CaptureStats::default();
        let imp = CaptureImpairment { dup_prob: 0.2, seed: 12, ..CaptureImpairment::none() };
        let out = imp.apply(NodeId(0), f, &mut stats);
        assert_eq!(out.len() as u64, stats.frames + stats.duplicated);
        assert!(stats.duplicated > 0);
        let adjacent_pairs = out.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        assert!(adjacent_pairs >= stats.duplicated);
    }

    #[test]
    fn reorder_is_bounded_by_span() {
        let f = frames(2_000);
        let mut stats = CaptureStats::default();
        let imp = CaptureImpairment {
            reorder_prob: 0.3,
            reorder_span: 4,
            seed: 13,
            ..CaptureImpairment::none()
        };
        let out = imp.apply(NodeId(0), f.clone(), &mut stats);
        assert!(stats.reordered > 0);
        assert_eq!(out.len(), f.len());
        // A frame at original position j lands no more than span positions
        // later and can slide at most span positions earlier.
        for (out_j, b) in out.iter().enumerate() {
            let j = f.iter().position(|o| o == b).unwrap();
            assert!((out_j as i64 - j as i64).abs() <= 4, "moved {j} -> {out_j}");
        }
    }

    #[test]
    fn stall_swallows_a_window() {
        let f = frames(100);
        let mut stats = CaptureStats::default();
        let imp = CaptureImpairment {
            stall: Some(StallSpec { start_frame: 10, frames: 25 }),
            ..CaptureImpairment::none()
        };
        let out = imp.apply(NodeId(0), f.clone(), &mut stats);
        assert_eq!(stats.stalled, 25);
        assert_eq!(out.len(), 75);
        assert_eq!(out[9], f[9]);
        assert_eq!(out[10], f[35]);
    }

    #[test]
    fn impairment_is_deterministic_per_agent() {
        let f = frames(1_000);
        let imp = CaptureImpairment {
            drop_prob: 0.1,
            dup_prob: 0.05,
            reorder_prob: 0.1,
            reorder_span: 3,
            stall: None,
            seed: 42,
        };
        let mut s1 = CaptureStats::default();
        let mut s2 = CaptureStats::default();
        let a = imp.apply(NodeId(1), f.clone(), &mut s1);
        let b = imp.apply(NodeId(1), f.clone(), &mut s2);
        assert_eq!(a, b);
        assert_eq!(s1, s2);
        // Different agents see different coin streams.
        let mut s3 = CaptureStats::default();
        let c = imp.apply(NodeId(2), f, &mut s3);
        assert_ne!(a, c);
    }

    #[test]
    fn resequencer_passes_in_order_frames_through() {
        let mut rsq = Resequencer::new(8);
        let mut got = Vec::new();
        for i in 0..10 {
            got.extend(rsq.push(Some(i), msg(i)));
        }
        got.extend(rsq.flush());
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|(gap, _)| *gap == 0));
        assert!(rsq.stats().is_clean());
    }

    #[test]
    fn resequencer_repairs_bounded_reorder_without_gaps() {
        let mut rsq = Resequencer::new(8);
        let mut got = Vec::new();
        for seq in [1u64, 0, 2, 4, 3, 5] {
            got.extend(rsq.push(Some(seq), msg(seq)));
        }
        got.extend(rsq.flush());
        let seqs: Vec<u64> = got.iter().map(|(_, m)| m.id.0).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        assert!(got.iter().all(|(gap, _)| *gap == 0));
        assert_eq!(rsq.stats().gaps, 0);
    }

    #[test]
    fn resequencer_reports_losses_as_gaps() {
        let mut rsq = Resequencer::new(2);
        let mut got = Vec::new();
        // Seqs 1 and 2 never arrive.
        for seq in [0u64, 3, 4, 5, 6] {
            got.extend(rsq.push(Some(seq), msg(seq)));
        }
        got.extend(rsq.flush());
        let gaps: Vec<u32> = got.iter().map(|(gap, _)| *gap).collect();
        assert_eq!(gaps, vec![0, 2, 0, 0, 0]);
        assert_eq!(rsq.stats().gaps, 1);
        assert_eq!(rsq.stats().lost, 2);
    }

    #[test]
    fn resequencer_discards_duplicates() {
        let mut rsq = Resequencer::new(4);
        let mut got = Vec::new();
        for seq in [0u64, 1, 1, 0, 2, 2] {
            got.extend(rsq.push(Some(seq), msg(seq)));
        }
        assert_eq!(got.len(), 3);
        assert_eq!(rsq.stats().dup_discarded, 3);
        assert_eq!(rsq.stats().lost, 0);
    }

    #[test]
    fn resequencer_flush_reports_trailing_holes() {
        let mut rsq = Resequencer::new(16);
        let mut got = Vec::new();
        got.extend(rsq.push(Some(0), msg(0)));
        got.extend(rsq.push(Some(5), msg(5)));
        got.extend(rsq.push(Some(7), msg(7)));
        got.extend(rsq.flush());
        let gaps: Vec<u32> = got.iter().map(|(gap, _)| *gap).collect();
        assert_eq!(gaps, vec![0, 4, 1]);
        assert_eq!(rsq.stats().gaps, 2);
        assert_eq!(rsq.stats().lost, 5);
    }

    #[test]
    fn resequencer_state_round_trips_and_dedups_replay() {
        // Build mid-stream state: parked frames and a recorded gap.
        let mut rsq = Resequencer::new(8);
        let mut live = Vec::new();
        for seq in [0u64, 1, 3, 5] {
            live.extend(rsq.push(Some(seq), msg(seq)));
        }
        let state = rsq.export_state();
        let mut restored = Resequencer::restore_state(&state).unwrap();
        assert_eq!(restored.stats(), rsq.stats());

        // Replay the whole stream from the start into the restored copy:
        // already-delivered and already-parked seqs are discarded as dups,
        // then the stream continues. The concatenation of live prefix +
        // restored suffix equals the uninterrupted run.
        let mut uninterrupted = Resequencer::new(8);
        let mut want = Vec::new();
        let full = [0u64, 1, 3, 5, 2, 4, 6];
        for &seq in &full {
            want.extend(uninterrupted.push(Some(seq), msg(seq)));
        }
        want.extend(uninterrupted.flush());

        let mut got = live;
        for &seq in &full {
            got.extend(restored.push(Some(seq), msg(seq)));
        }
        got.extend(restored.flush());
        assert_eq!(got, want);
        // Dup discards differ (the replayed prefix), but loss accounting
        // matches.
        assert_eq!(restored.stats().lost, uninterrupted.stats().lost);
        assert_eq!(restored.stats().gaps, uninterrupted.stats().gaps);
    }

    /// Hand-build [`Resequencer::export_state`] bytes with arbitrary
    /// `next` / pending entries (including invariant-violating ones no
    /// live push sequence can produce).
    fn crafted_state(next: u64, depth: u64, pending: &[(u64, Message)]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&next.to_le_bytes());
        out.extend_from_slice(&depth.to_le_bytes());
        for _ in 0..8 {
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        out.extend_from_slice(&(pending.len() as u32).to_le_bytes());
        for (seq, m) in pending {
            let enc = frame::encode(m);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            out.extend_from_slice(&enc);
        }
        out
    }

    #[test]
    fn resequencer_force_advance_discards_stale_pending_seq() {
        // Regression: a pending entry below the delivery position (here
        // via a restored checkpoint from a foreign writer; any caller
        // invariant slip reaches the same code) made `seq - self.next`
        // underflow in force_advance — a debug panic, or a ~u64::MAX
        // gap/lost count in release. It must be discarded as a late
        // duplicate instead.
        let state = crafted_state(5, 8, &[(2, msg(2)), (7, msg(7))]);
        let mut rsq = Resequencer::restore_state(&state).unwrap();
        let got = rsq.flush();
        let seqs: Vec<u64> = got.iter().map(|(_, m)| m.id.0).collect();
        assert_eq!(seqs, vec![7], "stale seq 2 is not re-delivered");
        assert_eq!(got[0].0, 2, "only the true hole (seqs 5, 6) is a gap");
        assert_eq!(rsq.stats().dup_discarded, 1);
        assert_eq!(rsq.stats().gaps, 1);
        assert_eq!(rsq.stats().lost, 2);
    }

    #[test]
    fn resequencer_dup_after_forced_advance_is_discarded() {
        // A late duplicate arriving *after* a forced advance past a hole:
        // its seq is below the (jumped) delivery position and must be
        // counted as a duplicate, never turned into gap accounting.
        let mut rsq = Resequencer::new(1);
        let mut got = Vec::new();
        got.extend(rsq.push(Some(0), msg(0)));
        got.extend(rsq.push(Some(5), msg(5))); // parks
        got.extend(rsq.push(Some(7), msg(7))); // over depth → force-advance to 5
        got.extend(rsq.push(Some(3), msg(3))); // late dup of the skipped hole
        got.extend(rsq.push(Some(6), msg(6))); // fills up to parked 7
        let seqs: Vec<u64> = got.iter().map(|(_, m)| m.id.0).collect();
        assert_eq!(seqs, vec![0, 5, 6, 7]);
        let gaps: Vec<u32> = got.iter().map(|(gap, _)| *gap).collect();
        assert_eq!(gaps, vec![0, 4, 0, 0]);
        assert_eq!(rsq.stats().dup_discarded, 1);
        assert_eq!(rsq.stats().gaps, 1);
        assert_eq!(rsq.stats().lost, 4);
    }

    #[test]
    fn resequencer_restore_rejects_malformed_state() {
        let mut rsq = Resequencer::new(4);
        rsq.push(Some(0), msg(0));
        rsq.push(Some(2), msg(2));
        let state = rsq.export_state();
        assert!(Resequencer::restore_state(&state[..state.len() - 1]).is_err());
        assert!(Resequencer::restore_state(&[0u8; 7]).is_err());
        let mut trailing = state.clone();
        trailing.push(0xFF);
        assert!(Resequencer::restore_state(&trailing).is_err());
    }

    #[test]
    fn unsequenced_frames_bypass_tracking() {
        let mut rsq = Resequencer::new(4);
        let got = rsq.push(None, msg(99));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert!(rsq.stats().is_clean());
    }
}

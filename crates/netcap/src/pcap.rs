//! Minimal pcap-style capture dumps.
//!
//! All examples and experiment binaries can persist captured traffic in a
//! libpcap-flavoured container: a global header followed by per-record
//! headers (`ts_sec`, `ts_usec`, `incl_len`, `orig_len`) and the encoded
//! frame bytes. The link type is a private value since records hold GRETEL
//! frames, not Ethernet.

use crate::frame::{self, CodecError};
use bytes::BytesMut;
use gretel_model::Message;
use std::io::{self, Read, Write};

/// pcap global-header magic (standard little-endian value).
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// Private link type for GRETEL frames (matches LINKTYPE_USER0).
pub const LINKTYPE_GRETEL: u32 = 147;

/// Write a pcap global header.
pub fn write_header<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&PCAP_MAGIC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_GRETEL.to_le_bytes())?;
    Ok(())
}

/// Append one message as a pcap record.
pub fn write_record<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let data = frame::encode(msg);
    let ts_sec = (msg.ts_us / 1_000_000) as u32;
    let ts_usec = (msg.ts_us % 1_000_000) as u32;
    w.write_all(&ts_sec.to_le_bytes())?;
    w.write_all(&ts_usec.to_le_bytes())?;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(&data)?;
    Ok(())
}

/// Write a whole capture (header + records).
pub fn write_capture<W: Write>(w: &mut W, msgs: &[Message]) -> io::Result<()> {
    write_header(w)?;
    for m in msgs {
        write_record(w, m)?;
    }
    Ok(())
}

/// Error reading a capture back.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a pcap file / wrong magic.
    BadMagic(u32),
    /// A record's frame failed to decode.
    Frame(CodecError),
    /// File ended mid-record.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "io error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic 0x{m:08x}"),
            PcapError::Frame(e) => write!(f, "bad frame: {e}"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 { Ok(false) } else { Err(PcapError::Truncated) };
        }
        filled += n;
    }
    Ok(true)
}

/// Streaming capture reader: yields one message at a time without
/// buffering the whole file (captures from long runs can be large).
pub struct PcapReader<R: Read> {
    inner: R,
    header_done: bool,
}

impl<R: Read> PcapReader<R> {
    /// Wrap a reader positioned at the start of a capture file.
    pub fn new(inner: R) -> PcapReader<R> {
        PcapReader { inner, header_done: false }
    }

    fn read_header(&mut self) -> Result<(), PcapError> {
        let mut header = [0u8; 24];
        if !read_exact_or_eof(&mut self.inner, &mut header)? {
            return Err(PcapError::Truncated);
        }
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if magic != PCAP_MAGIC {
            return Err(PcapError::BadMagic(magic));
        }
        self.header_done = true;
        Ok(())
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<Message, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.header_done {
            if let Err(e) = self.read_header() {
                return Some(Err(e));
            }
        }
        let mut rec = [0u8; 16];
        match read_exact_or_eof(&mut self.inner, &mut rec) {
            Ok(false) => return None,
            Ok(true) => {}
            Err(e) => return Some(Err(e)),
        }
        let incl_len = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let mut data = vec![0u8; incl_len];
        match read_exact_or_eof(&mut self.inner, &mut data) {
            Ok(true) => {}
            Ok(false) => return Some(Err(PcapError::Truncated)),
            Err(e) => return Some(Err(e)),
        }
        let mut buf = BytesMut::from(&data[..]);
        match frame::decode(&mut buf) {
            Ok(Some(msg)) => Some(Ok(msg)),
            Ok(None) => Some(Err(PcapError::Truncated)),
            Err(e) => Some(Err(PcapError::Frame(e))),
        }
    }
}

/// Read a whole capture back into messages.
pub fn read_capture<R: Read>(r: &mut R) -> Result<Vec<Message>, PcapError> {
    let mut header = [0u8; 24];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(PcapError::Truncated);
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    let mut out = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        if !read_exact_or_eof(r, &mut rec)? {
            break;
        }
        let incl_len = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let mut data = vec![0u8; incl_len];
        if !read_exact_or_eof(r, &mut data)? {
            return Err(PcapError::Truncated);
        }
        let mut buf = BytesMut::from(&data[..]);
        match frame::decode(&mut buf).map_err(PcapError::Frame)? {
            Some(msg) => out.push(msg),
            None => return Err(PcapError::Truncated),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, MessageId, NodeId, Service, WireKind,
    };

    fn msgs() -> Vec<Message> {
        (0..5u64)
            .map(|i| Message {
                id: MessageId(i),
                ts_us: i * 1_500_000, // crosses second boundaries
                src_node: NodeId(1),
                dst_node: NodeId(2),
                src_service: Service::Horizon,
                dst_service: Service::Nova,
                api: ApiId(i as u16),
                direction: Direction::Request,
                wire: WireKind::Rest {
                    method: HttpMethod::Get,
                    uri: format!("/v2.1/servers/{i}"),
                    status: None,
                },
                conn: ConnKey::default(),
                payload: vec![i as u8; 10],
                correlation_id: None,
                project: None,
                truth_op: None,
                truth_noise: false,
            })
            .collect()
    }

    #[test]
    fn capture_round_trips() {
        let original = msgs();
        let mut file = Vec::new();
        write_capture(&mut file, &original).unwrap();
        let read = read_capture(&mut file.as_slice()).unwrap();
        assert_eq!(read, original);
    }

    #[test]
    fn header_is_standard_pcap() {
        let mut file = Vec::new();
        write_capture(&mut file, &[]).unwrap();
        assert_eq!(file.len(), 24);
        assert_eq!(u32::from_le_bytes([file[0], file[1], file[2], file[3]]), PCAP_MAGIC);
    }

    #[test]
    fn bad_magic_rejected() {
        let file = vec![0u8; 24];
        assert!(matches!(read_capture(&mut file.as_slice()), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut file = Vec::new();
        write_capture(&mut file, &msgs()).unwrap();
        file.truncate(file.len() - 4);
        assert!(matches!(read_capture(&mut file.as_slice()), Err(PcapError::Truncated)));
    }

    #[test]
    fn streaming_reader_matches_bulk_reader() {
        let original = msgs();
        let mut file = Vec::new();
        write_capture(&mut file, &original).unwrap();
        let streamed: Vec<Message> = PcapReader::new(file.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, original);
    }

    #[test]
    fn streaming_reader_surfaces_bad_magic() {
        let file = vec![0u8; 24];
        let mut r = PcapReader::new(file.as_slice());
        assert!(matches!(r.next(), Some(Err(PcapError::BadMagic(0)))));
    }

    #[test]
    fn empty_capture_is_ok() {
        let mut file = Vec::new();
        write_capture(&mut file, &[]).unwrap();
        assert_eq!(read_capture(&mut file.as_slice()).unwrap(), vec![]);
    }
}

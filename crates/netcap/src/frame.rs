//! Binary wire codec for captured messages.
//!
//! Monitoring agents serialize each captured [`Message`] into a
//! length-delimited binary frame before shipping it to the analyzer
//! (standing in for the paper's Broccoli event transport). The framing is
//! also what gives throughput numbers their meaning: Mbps in the §7.4
//! experiments is measured over these bytes.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u32  frame length (bytes after this field)
//! u16  magic (0x4752 "GR")
//! u8   version (1)
//! u8   flags: bit0 direction=response, bit1 is_rpc, bit2 has_truth_op,
//!             bit3 truth_noise, bit4 has_correlation_id, bit5 has_seq,
//!             bit6 has_project
//! u64  message id
//! u64  timestamp (µs)
//! u8   src node | u8 dst node | u8 src service | u8 dst service
//! u16  api id
//! u8×2 conn: src node, dst node   u16×2 conn: src port, dst port
//! u32  project id (only when bit6 set; fixed offset 36 in the frame, so
//!      shard routers can peek it without a full decode)
//! -- REST (bit1 clear):
//!   u8   method  | u16 status (0 = none) | u16 uri len | uri bytes
//! -- RPC (bit1 set):
//!   u64  rpc msg id | u16 error len | error bytes | u16 method len | method
//! u32  payload len | payload bytes
//! u64  truth op (only when bit2 set)
//! u64  correlation id (only when bit4 set)
//! u64  per-agent frame sequence number (only when bit5 set)
//! ```
//!
//! The sequence number is a capture-plane field, not a message field: each
//! agent stamps its frames 0, 1, 2, … so the receiver can detect capture
//! loss (gaps), duplicates, and reordering per agent. Frames without bit5
//! (pre-existing dumps) decode as "no sequence information".

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gretel_model::{
    ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, OpInstanceId, ProjectId,
    Service, WireKind,
};
use std::fmt;

/// Frame magic value.
pub const MAGIC: u16 = 0x4752;
/// Current codec version.
pub const VERSION: u8 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the frame header demands.
    Truncated,
    /// Bad magic value.
    BadMagic(u16),
    /// Unsupported version.
    BadVersion(u8),
    /// A field held an invalid value.
    InvalidField(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic(m) => write!(f, "bad magic 0x{m:04x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::InvalidField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for CodecError {}

const FLAG_RESPONSE: u8 = 1 << 0;
const FLAG_RPC: u8 = 1 << 1;
const FLAG_TRUTH_OP: u8 = 1 << 2;
const FLAG_NOISE: u8 = 1 << 3;
const FLAG_CORR_ID: u8 = 1 << 4;
const FLAG_SEQ: u8 = 1 << 5;
const FLAG_PROJECT: u8 = 1 << 6;

/// Byte offset of the optional project id within a framed message (after
/// the 4-byte length prefix and the 32-byte fixed header).
const PROJECT_OFFSET: usize = 4 + 32;

fn method_to_u8(m: HttpMethod) -> u8 {
    match m {
        HttpMethod::Get => 0,
        HttpMethod::Post => 1,
        HttpMethod::Put => 2,
        HttpMethod::Delete => 3,
        HttpMethod::Patch => 4,
        HttpMethod::Head => 5,
    }
}

fn method_from_u8(v: u8) -> Option<HttpMethod> {
    Some(match v {
        0 => HttpMethod::Get,
        1 => HttpMethod::Post,
        2 => HttpMethod::Put,
        3 => HttpMethod::Delete,
        4 => HttpMethod::Patch,
        5 => HttpMethod::Head,
        _ => return None,
    })
}

/// Encode one message as a framed byte buffer.
pub fn encode(msg: &Message) -> Bytes {
    encode_inner(msg, None)
}

/// Encode one message with a per-agent frame sequence number.
///
/// The receiver recovers the number with [`decode_seq`]/[`decode_one_seq`]
/// and uses it to detect capture gaps and duplicates per agent.
pub fn encode_seq(msg: &Message, seq: u64) -> Bytes {
    encode_inner(msg, Some(seq))
}

fn encode_inner(msg: &Message, seq: Option<u64>) -> Bytes {
    let mut body = BytesMut::with_capacity(64 + msg.payload.len());
    let mut flags = 0u8;
    if msg.direction == Direction::Response {
        flags |= FLAG_RESPONSE;
    }
    if msg.wire.is_rpc() {
        flags |= FLAG_RPC;
    }
    if msg.truth_op.is_some() {
        flags |= FLAG_TRUTH_OP;
    }
    if msg.truth_noise {
        flags |= FLAG_NOISE;
    }
    if msg.correlation_id.is_some() {
        flags |= FLAG_CORR_ID;
    }
    if seq.is_some() {
        flags |= FLAG_SEQ;
    }
    if msg.project.is_some() {
        flags |= FLAG_PROJECT;
    }
    body.put_u16_le(MAGIC);
    body.put_u8(VERSION);
    body.put_u8(flags);
    body.put_u64_le(msg.id.0);
    body.put_u64_le(msg.ts_us);
    body.put_u8(msg.src_node.0);
    body.put_u8(msg.dst_node.0);
    body.put_u8(msg.src_service.index());
    body.put_u8(msg.dst_service.index());
    body.put_u16_le(msg.api.0);
    body.put_u8(msg.conn.src.0);
    body.put_u8(msg.conn.dst.0);
    body.put_u16_le(msg.conn.src_port);
    body.put_u16_le(msg.conn.dst_port);
    if let Some(p) = msg.project {
        body.put_u32_le(p.0);
    }
    match &msg.wire {
        WireKind::Rest { method, uri, status } => {
            body.put_u8(method_to_u8(*method));
            body.put_u16_le(status.unwrap_or(0));
            let uri = uri.as_bytes();
            body.put_u16_le(uri.len() as u16);
            body.put_slice(uri);
        }
        WireKind::Rpc { method, msg_id, error } => {
            body.put_u64_le(*msg_id);
            let err = error.as_deref().unwrap_or("");
            body.put_u16_le(err.len() as u16);
            body.put_slice(err.as_bytes());
            body.put_u16_le(method.len() as u16);
            body.put_slice(method.as_bytes());
        }
    }
    body.put_u32_le(msg.payload.len() as u32);
    body.put_slice(&msg.payload);
    if let Some(op) = msg.truth_op {
        body.put_u64_le(op.0);
    }
    if let Some(corr) = msg.correlation_id {
        body.put_u64_le(corr);
    }
    if let Some(seq) = seq {
        body.put_u64_le(seq);
    }

    let mut framed = BytesMut::with_capacity(4 + body.len());
    framed.put_u32_le(body.len() as u32);
    framed.extend_from_slice(&body);
    framed.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn get_string(buf: &mut impl Buf) -> Result<String, CodecError> {
    need(buf, 2)?;
    let len = buf.get_u16_le() as usize;
    need(buf, len)?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::InvalidField("utf8 string"))
}

/// Decode one framed message from `buf`, consuming exactly one frame.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (stream decoding); errors are permanent for the frame.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, CodecError> {
    Ok(decode_seq(buf)?.map(|(msg, _)| msg))
}

/// Decode one framed message plus its sequence number, if present.
///
/// Behaves exactly like [`decode`], additionally returning the per-agent
/// frame sequence number for frames written by [`encode_seq`] (`None` for
/// frames written by [`encode`]).
pub fn decode_seq(buf: &mut BytesMut) -> Result<Option<(Message, Option<u64>)>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let frame_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + frame_len {
        return Ok(None);
    }
    buf.advance(4);
    let mut frame = buf.split_to(frame_len);
    let decoded = decode_body(&mut frame)?;
    Ok(Some(decoded))
}

fn decode_body(buf: &mut impl Buf) -> Result<(Message, Option<u64>), CodecError> {
    need(buf, 2 + 1 + 1 + 8 + 8 + 4 + 2 + 2 + 4)?;
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = buf.get_u8();
    let id = MessageId(buf.get_u64_le());
    let ts_us = buf.get_u64_le();
    let src_node = NodeId(buf.get_u8());
    let dst_node = NodeId(buf.get_u8());
    let src_service = Service::from_index(buf.get_u8())
        .ok_or(CodecError::InvalidField("src service"))?;
    let dst_service = Service::from_index(buf.get_u8())
        .ok_or(CodecError::InvalidField("dst service"))?;
    let api = ApiId(buf.get_u16_le());
    let conn = ConnKey {
        src: NodeId(buf.get_u8()),
        dst: NodeId(buf.get_u8()),
        src_port: buf.get_u16_le(),
        dst_port: buf.get_u16_le(),
    };
    let project = if flags & FLAG_PROJECT != 0 {
        need(buf, 4)?;
        Some(ProjectId(buf.get_u32_le()))
    } else {
        None
    };
    let wire = if flags & FLAG_RPC != 0 {
        need(buf, 8)?;
        let msg_id = buf.get_u64_le();
        let err = get_string(buf)?;
        let method = get_string(buf)?;
        WireKind::Rpc { method, msg_id, error: (!err.is_empty()).then_some(err) }
    } else {
        need(buf, 3)?;
        let method =
            method_from_u8(buf.get_u8()).ok_or(CodecError::InvalidField("http method"))?;
        let status = buf.get_u16_le();
        let uri = get_string(buf)?;
        WireKind::Rest { method, uri, status: (status != 0).then_some(status) }
    };
    need(buf, 4)?;
    let payload_len = buf.get_u32_le() as usize;
    need(buf, payload_len)?;
    let mut payload = vec![0u8; payload_len];
    buf.copy_to_slice(&mut payload);
    let truth_op = if flags & FLAG_TRUTH_OP != 0 {
        need(buf, 8)?;
        Some(OpInstanceId(buf.get_u64_le()))
    } else {
        None
    };
    let correlation_id = if flags & FLAG_CORR_ID != 0 {
        need(buf, 8)?;
        Some(buf.get_u64_le())
    } else {
        None
    };
    let seq = if flags & FLAG_SEQ != 0 {
        need(buf, 8)?;
        Some(buf.get_u64_le())
    } else {
        None
    };
    let msg = Message {
        id,
        ts_us,
        src_node,
        dst_node,
        src_service,
        dst_service,
        api,
        direction: if flags & FLAG_RESPONSE != 0 { Direction::Response } else { Direction::Request },
        wire,
        conn,
        payload,
        correlation_id,
        project,
        truth_op,
        truth_noise: flags & FLAG_NOISE != 0,
    };
    Ok((msg, seq))
}

/// Convenience: decode a buffer holding exactly one frame.
pub fn decode_one(bytes: &[u8]) -> Result<Message, CodecError> {
    decode_one_seq(bytes).map(|(msg, _)| msg)
}

/// Convenience: decode a buffer holding exactly one frame, returning the
/// per-agent sequence number when the frame carries one.
///
/// Decodes in place (`&[u8]` is itself a [`Buf`] cursor): no staging copy
/// into a `BytesMut`, so a frame sliced out of a shared batch arena is
/// parsed straight from the arena's allocation.
pub fn decode_one_seq(bytes: &[u8]) -> Result<(Message, Option<u64>), CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let frame_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() < 4 + frame_len {
        return Err(CodecError::Truncated);
    }
    if bytes.len() > 4 + frame_len {
        return Err(CodecError::InvalidField("trailing bytes"));
    }
    let mut frame = &bytes[4..];
    decode_body(&mut frame)
}

/// Read the tenant routing key from a framed message without decoding it.
///
/// The project id sits at a fixed offset in the frame (directly after the
/// connection block), so a shard router can fan frames out of a
/// [`crate::batch::FrameBatch`] with a 40-byte peek instead of a full
/// decode. Returns `Ok(None)` for frames carrying no project scope. The
/// header is validated exactly as [`decode_one`] would (magic, version,
/// truncation), so a frame accepted here decodes to a [`Message`] whose
/// `project` equals the peeked value.
pub fn peek_project(frame: &[u8]) -> Result<Option<ProjectId>, CodecError> {
    if frame.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let magic = u16::from_le_bytes([frame[4], frame[5]]);
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    if frame[6] != VERSION {
        return Err(CodecError::BadVersion(frame[6]));
    }
    if frame[7] & FLAG_PROJECT == 0 {
        return Ok(None);
    }
    if frame.len() < PROJECT_OFFSET + 4 {
        return Err(CodecError::Truncated);
    }
    let raw: [u8; 4] = frame[PROJECT_OFFSET..PROJECT_OFFSET + 4].try_into().unwrap();
    Ok(Some(ProjectId(u32::from_le_bytes(raw))))
}

/// Encoded size of a message, including the length prefix.
pub fn encoded_len(msg: &Message) -> usize {
    encode(msg).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::message::render_rest_response_payload;

    fn sample_rest() -> Message {
        Message {
            id: MessageId(42),
            ts_us: 123_456_789,
            src_node: NodeId(1),
            dst_node: NodeId(2),
            src_service: Service::Nova,
            dst_service: Service::Neutron,
            api: ApiId(77),
            direction: Direction::Response,
            wire: WireKind::Rest {
                method: HttpMethod::Post,
                uri: "/v2.0/ports.json".into(),
                status: Some(500),
            },
            conn: ConnKey { src: NodeId(2), src_port: 9696, dst: NodeId(1), dst_port: 33000 },
            payload: render_rest_response_payload(500, "Internal Server Error", 128),
            correlation_id: None,
            project: None,
            truth_op: Some(OpInstanceId(7)),
            truth_noise: false,
        }
    }

    fn sample_rpc() -> Message {
        Message {
            id: MessageId(43),
            ts_us: 1,
            src_node: NodeId(4),
            dst_node: NodeId(0),
            src_service: Service::NovaCompute,
            dst_service: Service::Nova,
            api: ApiId(650),
            direction: Direction::Request,
            wire: WireKind::Rpc {
                method: "build_and_run_instance".into(),
                msg_id: 991,
                error: None,
            },
            conn: ConnKey { src: NodeId(4), src_port: 21000, dst: NodeId(0), dst_port: 5672 },
            payload: b"oslo".to_vec(),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: true,
        }
    }

    #[test]
    fn correlation_id_round_trips() {
        let mut m = sample_rest();
        m.correlation_id = Some(0xDEAD_BEEF);
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rest_round_trip() {
        let m = sample_rest();
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rpc_round_trip() {
        let m = sample_rpc();
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rpc_error_round_trip() {
        let mut m = sample_rpc();
        m.wire = WireKind::Rpc {
            method: "create_volume".into(),
            msg_id: 5,
            error: Some("VolumeLimitExceeded".into()),
        };
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn stream_decoding_handles_partial_frames() {
        let m1 = sample_rest();
        let m2 = sample_rpc();
        let mut wire = BytesMut::new();
        wire.extend_from_slice(&encode(&m1));
        wire.extend_from_slice(&encode(&m2));

        // Feed the stream one byte at a time.
        let total = wire.len();
        let mut rx = BytesMut::new();
        let mut decoded = Vec::new();
        for i in 0..total {
            rx.extend_from_slice(&wire[i..i + 1]);
            while let Some(m) = decode(&mut rx).unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, vec![m1, m2]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let m = sample_rest();
        let enc = encode(&m);
        let mut bytes = enc.to_vec();
        bytes[4] = 0xFF; // first magic byte after the length prefix
        assert!(matches!(decode_one(&bytes), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let m = sample_rest();
        let mut bytes = encode(&m).to_vec();
        bytes[6] = 99;
        assert!(matches!(decode_one(&bytes), Err(CodecError::BadVersion(99))));
    }

    #[test]
    fn truncation_is_detected() {
        let m = sample_rest();
        let bytes = encode(&m);
        // Chop the tail: the frame length no longer matches, so stream
        // decode reports "incomplete".
        let mut buf = BytesMut::from(&bytes[..bytes.len() - 3]);
        assert_eq!(decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn status_none_round_trips() {
        let mut m = sample_rest();
        m.direction = Direction::Request;
        m.wire = WireKind::Rest { method: HttpMethod::Get, uri: "/v2.1/servers".into(), status: None };
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn encoded_len_matches() {
        let m = sample_rest();
        assert_eq!(encoded_len(&m), encode(&m).len());
    }

    #[test]
    fn seq_round_trips() {
        let m = sample_rest();
        let framed = encode_seq(&m, 9001);
        assert_eq!(decode_one_seq(&framed).unwrap(), (m.clone(), Some(9001)));
        // The plain decoders still accept seq-bearing frames.
        assert_eq!(decode_one(&framed).unwrap(), m);
    }

    #[test]
    fn unsequenced_frames_decode_as_seq_none() {
        let m = sample_rpc();
        assert_eq!(decode_one_seq(&encode(&m)).unwrap(), (m, None));
    }

    #[test]
    fn project_round_trips() {
        let mut m = sample_rest();
        m.project = Some(ProjectId(1234));
        assert_eq!(decode_one(&encode(&m)).unwrap(), m);
        let mut r = sample_rpc();
        r.project = Some(ProjectId(u32::MAX));
        assert_eq!(decode_one(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn peek_project_matches_decode() {
        let mut m = sample_rest();
        m.project = Some(ProjectId(77));
        let framed = encode(&m);
        assert_eq!(peek_project(&framed).unwrap(), Some(ProjectId(77)));
        assert_eq!(decode_one(&framed).unwrap().project, Some(ProjectId(77)));
        // Seq-stamped frames peek identically (the tail does not move the
        // fixed header).
        assert_eq!(peek_project(&encode_seq(&m, 3)).unwrap(), Some(ProjectId(77)));
        // Frames without a project scope peek as None.
        assert_eq!(peek_project(&encode(&sample_rpc())).unwrap(), None);
    }

    #[test]
    fn peek_project_validates_the_header() {
        let mut m = sample_rest();
        m.project = Some(ProjectId(9));
        let framed = encode(&m);
        assert!(matches!(peek_project(&framed[..7]), Err(CodecError::Truncated)));
        let mut bad = framed.to_vec();
        bad[4] = 0xFF;
        assert!(matches!(peek_project(&bad), Err(CodecError::BadMagic(_))));
        let mut bad = framed.to_vec();
        bad[6] = 42;
        assert!(matches!(peek_project(&bad), Err(CodecError::BadVersion(42))));
    }

    #[test]
    fn spurious_project_flag_is_rejected() {
        // Corrupt a project-less frame by flipping the has_project bit: the
        // decoder then mis-reads four wire-kind bytes as the project id and
        // must fail rather than return a shifted message.
        let mut bytes = encode(&sample_rest()).to_vec();
        bytes[7] |= 1 << 6;
        assert!(decode_one(&bytes).is_err());
    }

    #[test]
    fn seq_rides_after_truth_op_and_correlation_id() {
        let mut m = sample_rest();
        m.correlation_id = Some(0xC0FFEE);
        let framed = encode_seq(&m, u64::MAX);
        assert_eq!(decode_one_seq(&framed).unwrap(), (m.clone(), Some(u64::MAX)));
        assert_eq!(framed.len(), encode(&m).len() + 8);
    }
}

//! Criterion bench: level-shift detector per-sample cost.
//!
//! The detector sits on the analyzer's per-message path (one update per
//! completed request/response pair), so its per-sample cost must stay in
//! the tens of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gretel_telemetry::{LevelShiftConfig, LevelShiftDetector, OutlierDetector};

fn bench_outlier(c: &mut Criterion) {
    let mut group = c.benchmark_group("level_shift");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("stationary_series", |b| {
        b.iter(|| {
            let mut det = LevelShiftDetector::new(LevelShiftConfig::default());
            let mut alarms = 0usize;
            for i in 0..n {
                if det.update(i, 25.0 + (i % 7) as f64).is_some() {
                    alarms += 1;
                }
            }
            alarms
        })
    });
    group.bench_function("shifting_series", |b| {
        b.iter(|| {
            let mut det = LevelShiftDetector::new(LevelShiftConfig::default());
            let mut alarms = 0usize;
            for i in 0..n {
                let level = if (i / 500) % 2 == 0 { 25.0 } else { 125.0 };
                if det.update(i, level + (i % 7) as f64).is_some() {
                    alarms += 1;
                }
            }
            alarms
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_outlier
}
criterion_main!(benches);

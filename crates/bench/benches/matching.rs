//! Criterion bench: operation detection cost (Algorithm 2).
//!
//! Measures one full detection (candidates → truncation → context-buffer
//! matching) as a function of snapshot size, against the full
//! 1200-fingerprint library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gretel_bench::Workbench;
use gretel_core::{Detector, Event, FaultMark, GretelConfig};
use gretel_model::{ApiId, Direction, MessageId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synth_events(wb: &Workbench, n: usize, offending: ApiId) -> (Vec<Event>, usize) {
    // Random mix of suite APIs with the offending API at the centre.
    let mut rng = StdRng::seed_from_u64(7);
    let pool: Vec<ApiId> = wb.suite.pools(gretel_model::Category::Compute).rest.clone();
    let cat = &wb.catalog;
    let mut events: Vec<Event> = (0..n)
        .map(|i| {
            let api = pool[rng.gen_range(0..pool.len())];
            let def = cat.get(api);
            Event {
                id: MessageId(i as u64),
                ts: i as u64 * 20,
                api,
                direction: Direction::Request,
                is_rpc: def.is_rpc(),
                state_change: def.is_state_change(),
                noise_api: false,
                src_node: NodeId(0),
                dst_node: NodeId(1),
                corr: None,
                fault: FaultMark::None,
                gap_before: 0,
            }
        })
        .collect();
    let center = n / 2;
    events[center].api = offending;
    events[center].fault = FaultMark::RestError(500);
    (events, center)
}

fn bench_matching(c: &mut Criterion) {
    let wb = Workbench::new(42);
    let offending = wb
        .catalog
        .rest_expect(gretel_model::Service::Neutron, gretel_model::HttpMethod::Post, "/v2.0/ports.json");
    let mut group = c.benchmark_group("operation_detection");
    for n in [768usize, 4096, 16384, 65536] {
        let (events, center) = synth_events(&wb, n, offending);
        let cfg = GretelConfig { alpha: n, ..GretelConfig::default() };
        let detector = Detector::new(&wb.library, cfg);
        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |b, _| {
            b.iter(|| detector.detect_operational(&events, center, offending))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matching
}
criterion_main!(benches);

//! Criterion bench: ablations of GRETEL's design choices (DESIGN.md §5).
//!
//! Compares detection cost across the matching policies:
//! * default (earliest-complete, analytic),
//! * presence + θ-drop stop (the paper's literal rule),
//! * presence + full-window growth,
//! * strict matching (starred atoms required),
//! * no truncation,
//! * no RPC pruning.
//!
//! Quality differences between these policies are measured by the fig7*
//! binaries; this bench tracks their *cost*.

use criterion::{criterion_group, criterion_main, Criterion};
use gretel_bench::Workbench;
use gretel_core::{Detector, Event, FaultMark, GretelConfig};
use gretel_model::{ApiId, Direction, MessageId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synth_events(wb: &Workbench, n: usize, offending: ApiId) -> (Vec<Event>, usize) {
    let mut rng = StdRng::seed_from_u64(11);
    let pool: Vec<ApiId> = wb.suite.pools(gretel_model::Category::Compute).rest.clone();
    let cat = &wb.catalog;
    let mut events: Vec<Event> = (0..n)
        .map(|i| {
            let api = pool[rng.gen_range(0..pool.len())];
            let def = cat.get(api);
            Event {
                id: MessageId(i as u64),
                ts: i as u64 * 20,
                api,
                direction: Direction::Request,
                is_rpc: def.is_rpc(),
                state_change: def.is_state_change(),
                noise_api: false,
                src_node: NodeId(0),
                dst_node: NodeId(1),
                corr: None,
                fault: FaultMark::None,
                gap_before: 0,
            }
        })
        .collect();
    let center = n / 2;
    events[center].api = offending;
    events[center].fault = FaultMark::RestError(500);
    (events, center)
}

fn bench_ablation(c: &mut Criterion) {
    let wb = Workbench::new(42);
    let offending = wb.catalog.rest_expect(
        gretel_model::Service::Neutron,
        gretel_model::HttpMethod::Post,
        "/v2.0/ports.json",
    );
    let n = 4096usize;
    let (events, center) = synth_events(&wb, n, offending);

    let variants: Vec<(&str, GretelConfig)> = vec![
        ("default_earliest_complete", GretelConfig { alpha: n, ..GretelConfig::default() }),
        (
            "paper_theta_drop_stop",
            GretelConfig { alpha: n, scored_slack: None, ..GretelConfig::default() },
        ),
        (
            "presence_full_window",
            GretelConfig {
                alpha: n,
                scored_slack: None,
                grow_full: true,
                ..GretelConfig::default()
            },
        ),
        (
            "strict_matching",
            GretelConfig { alpha: n, relaxed: false, scored_slack: None, ..GretelConfig::default() },
        ),
        ("no_truncation", GretelConfig { alpha: n, truncate: false, ..GretelConfig::default() }),
        ("no_rpc_pruning", GretelConfig { alpha: n, prune_rpcs: false, ..GretelConfig::default() }),
    ];

    let mut group = c.benchmark_group("matching_policy_ablation");
    for (name, cfg) in variants {
        let detector = Detector::new(&wb.library, cfg);
        group.bench_function(name, |b| {
            b.iter(|| detector.detect_operational(&events, center, offending))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation
}
criterion_main!(benches);

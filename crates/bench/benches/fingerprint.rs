//! Criterion bench: Algorithm 1 fingerprint generation.
//!
//! Cost of noise filtering + iterated LCS as trace length and trace count
//! grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gretel_core::generate_fingerprint;
use gretel_model::{ApiId, Catalog, OpSpecId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn traces(catalog: &Catalog, len: usize, count: usize, seed: u64) -> Vec<Vec<ApiId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<ApiId> = (0..len)
        .map(|_| ApiId(rng.gen_range(0..catalog.len() as u16)))
        .collect();
    (0..count)
        .map(|_| {
            // Each run: the base plus ~10% transient insertions.
            let mut t = Vec::with_capacity(len + len / 10);
            for &api in &base {
                t.push(api);
                if rng.gen_bool(0.1) {
                    t.push(ApiId(rng.gen_range(0..catalog.len() as u16)));
                }
            }
            t
        })
        .collect()
}

fn bench_fingerprint(c: &mut Criterion) {
    let catalog = Catalog::openstack();
    let mut group = c.benchmark_group("fingerprint_generation");
    for len in [50usize, 150, 400] {
        let t = traces(&catalog, len, 3, 5);
        group.bench_with_input(BenchmarkId::new("trace_len", len), &len, |b, _| {
            b.iter(|| generate_fingerprint(&catalog, OpSpecId(0), &t))
        });
    }
    for count in [2usize, 5, 10] {
        let t = traces(&catalog, 150, count, 9);
        group.bench_with_input(BenchmarkId::new("trace_count", count), &count, |b, _| {
            b.iter(|| generate_fingerprint(&catalog, OpSpecId(0), &t))
        });
    }
    group.finish();
}

/// Offline characterization: sequential vs. the scoped-thread worker pool
/// (byte-identical output, see `parallel_characterize_is_byte_identical`).
fn bench_characterize_parallel(c: &mut Criterion) {
    use gretel_core::FingerprintLibrary;
    use gretel_model::{Category, TempestSuite};
    use gretel_sim::Deployment;

    let catalog = Catalog::openstack();
    let counts: Vec<(Category, usize)> = Category::ALL.iter().map(|&c| (c, 12)).collect();
    let suite = TempestSuite::generate_with_counts(catalog.clone(), 42, &counts);
    let deployment = Deployment::standard();
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                FingerprintLibrary::characterize_parallel(
                    catalog.clone(),
                    suite.specs(),
                    &deployment,
                    2,
                    7,
                    t,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fingerprint, bench_characterize_parallel
}
criterion_main!(benches);

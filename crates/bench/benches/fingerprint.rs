//! Criterion bench: Algorithm 1 fingerprint generation.
//!
//! Cost of noise filtering + iterated LCS as trace length and trace count
//! grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gretel_core::generate_fingerprint;
use gretel_model::{ApiId, Catalog, OpSpecId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn traces(catalog: &Catalog, len: usize, count: usize, seed: u64) -> Vec<Vec<ApiId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<ApiId> = (0..len)
        .map(|_| ApiId(rng.gen_range(0..catalog.len() as u16)))
        .collect();
    (0..count)
        .map(|_| {
            // Each run: the base plus ~10% transient insertions.
            let mut t = Vec::with_capacity(len + len / 10);
            for &api in &base {
                t.push(api);
                if rng.gen_bool(0.1) {
                    t.push(ApiId(rng.gen_range(0..catalog.len() as u16)));
                }
            }
            t
        })
        .collect()
}

fn bench_fingerprint(c: &mut Criterion) {
    let catalog = Catalog::openstack();
    let mut group = c.benchmark_group("fingerprint_generation");
    for len in [50usize, 150, 400] {
        let t = traces(&catalog, len, 3, 5);
        group.bench_with_input(BenchmarkId::new("trace_len", len), &len, |b, _| {
            b.iter(|| generate_fingerprint(&catalog, OpSpecId(0), &t))
        });
    }
    for count in [2usize, 5, 10] {
        let t = traces(&catalog, 150, count, 9);
        group.bench_with_input(BenchmarkId::new("trace_count", count), &count, |b, _| {
            b.iter(|| generate_fingerprint(&catalog, OpSpecId(0), &t))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fingerprint
}
criterion_main!(benches);

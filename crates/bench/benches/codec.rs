//! Criterion bench: frame codec encode/decode.
//!
//! The agents encode every captured message and the receiver decodes it;
//! this bounds the monitoring network's sustainable line rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gretel_bench::Workbench;
use gretel_model::Message;
use gretel_netcap::{decode_one, encode};
use gretel_sim::{StreamConfig, SyntheticStream};

fn bench_codec(c: &mut Criterion) {
    let wb = Workbench::new(42);
    let specs: Vec<_> = wb.suite.specs().iter().step_by(29).cloned().collect();
    let msgs: Vec<Message> = SyntheticStream::new(
        wb.catalog.clone(),
        &specs,
        StreamConfig { total_messages: 4_096, ..StreamConfig::default() },
    )
    .collect();
    let frames: Vec<_> = msgs.iter().map(encode).collect();
    let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let mut group = c.benchmark_group("frame_codec");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("encode", |b| {
        b.iter(|| msgs.iter().map(encode).map(|f| f.len()).sum::<usize>())
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| decode_one(f).expect("valid frame").ts_us)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_codec
}
criterion_main!(benches);

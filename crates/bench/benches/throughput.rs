//! Criterion bench: the Fig 8c hot loop.
//!
//! Measures the analyzer's per-message cost on a synthetic 64-way
//! interleaved stream at two fault frequencies, plus HANSEL's per-message
//! stitching cost on the same stream.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gretel_bench::Workbench;
use gretel_core::{Analyzer, GretelConfig};
use gretel_hansel::{Hansel, HanselConfig};
use gretel_model::Message;
use gretel_sim::{StreamConfig, SyntheticStream};

fn stream(wb: &Workbench, fault_every: usize, n: usize) -> Vec<Message> {
    let specs: Vec<_> = wb.suite.specs().iter().step_by(13).cloned().collect();
    let cfg = StreamConfig { total_messages: n, fault_every, pps: 50_000, concurrent_ops: 64 };
    SyntheticStream::new(wb.catalog.clone(), &specs, cfg).collect()
}

/// Detection fast path: cached candidate patterns vs. deriving the same
/// slices from fingerprints per fault (what every detection did before the
/// pattern cache).
fn bench_pattern_cache(c: &mut Criterion) {
    let wb = Workbench::new(42);
    let lib = &wb.library;
    let catalog = &wb.catalog;
    let apis: Vec<_> = (0..catalog.len() as u16)
        .map(gretel_model::ApiId)
        .filter(|&a| !lib.candidates(a).is_empty())
        .step_by(7)
        .collect();
    let mut group = c.benchmark_group("pattern_cache");
    group.bench_function("cached_candidate_patterns", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &api in &apis {
                for p in lib.candidate_patterns(api, true) {
                    total += p.lits_pruned.len();
                }
            }
            total
        })
    });
    group.bench_function("fresh_derivation", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &api in &apis {
                for &op in lib.candidates(api) {
                    for fp in lib.get(op).truncate_at_each(api) {
                        total += fp.literals(catalog, true).len();
                    }
                }
            }
            total
        })
    });
    group.finish();
}

fn bench_throughput(c: &mut Criterion) {
    let wb = Workbench::new(42);
    let mut group = c.benchmark_group("analyzer_throughput");
    for fault_every in [100usize, 2000] {
        let msgs = stream(&wb, fault_every, 20_000);
        group.throughput(Throughput::Elements(msgs.len() as u64));
        group.bench_function(format!("gretel_1_in_{fault_every}"), |b| {
            b.iter_batched(
                || Analyzer::new(&wb.library, GretelConfig::auto(wb.library.fp_max(), 50_000.0, 1.0)),
                |mut analyzer| {
                    let mut n = 0usize;
                    for m in &msgs {
                        n += analyzer.process(m).len();
                    }
                    n + analyzer.finish().len()
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("hansel_1_in_{fault_every}"), |b| {
            b.iter_batched(
                || Hansel::new(HanselConfig::default()),
                |mut hansel| {
                    let mut n = 0usize;
                    for m in &msgs {
                        n += hansel.process(m).len();
                    }
                    n + hansel.finish().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput, bench_pattern_cache
}
criterion_main!(benches);

//! The pattern cache against its oracle at full scale: for every API in
//! the catalog, the precomputed candidate patterns of the 1200-test
//! workbench library must equal a fresh derivation from the fingerprints.
//! (gretel-core carries the same check on a small library; this covers the
//! real distribution of fingerprint shapes.)

use gretel_bench::Workbench;
use gretel_model::ApiId;

#[test]
fn cached_patterns_equal_fresh_derivation_across_the_full_suite() {
    let wb = Workbench::small(42, 40); // 200 tests: full-suite shape, testable in debug
    let lib = &wb.library;
    let catalog = &wb.catalog;
    for api in (0..catalog.len() as u16).map(ApiId) {
        for truncate in [true, false] {
            let cached = lib.candidate_patterns(api, truncate);
            let mut fresh_idx = 0usize;
            for &op in lib.candidates(api) {
                let fp = lib.get(op);
                let fresh_fps = if truncate {
                    fp.truncate_at_each(api)
                } else {
                    vec![fp.clone()]
                };
                for ffp in fresh_fps {
                    let p = &cached[fresh_idx];
                    fresh_idx += 1;
                    assert_eq!(p.op, op);
                    assert_eq!(p.apis, ffp.api_seq(), "api {api:?} op {op:?}");
                    assert_eq!(p.lits_all, ffp.literals(catalog, false));
                    assert_eq!(p.lits_pruned, ffp.literals(catalog, true));
                }
            }
            assert_eq!(fresh_idx, cached.len(), "api {api:?} truncate {truncate}");
        }
    }
}

//! Correlation-id ablation (paper §5.3.1, future enhancement).
//!
//! The paper notes OpenStack was introducing a `correlation_id` to tie
//! together the requests and responses of one operation, and that GRETEL
//! "can exploit these correlation identifiers to increase its precision by
//! reducing the number of packets against which a fingerprint is matched."
//! This repository implements that enhancement; the experiment measures
//! what it buys: precision θ, matched-set size, and recall with and
//! without propagated ids, at 8 faults across 100–400 concurrent tests.
//!
//! Usage: `cargo run --release -p gretel-bench --bin corr_ablation [--seed N]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    concurrent: usize,
    correlation_ids: bool,
    theta: f64,
    matched: f64,
    median_matched: f64,
    recall: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let mut rows = Vec::new();
    for &c in &[100usize, 400] {
        for corr in [false, true] {
            let mut theta = 0.0;
            let mut matched = 0.0;
            let mut recall = 0.0;
            let mut all_matched: Vec<f64> = Vec::new();
            for s in 0..seeds {
                let res = run(
                    &wb,
                    PrecisionParams {
                        concurrent: c,
                        faults: 8,
                        seed: seed ^ (s + 1),
                        correlation_ids: corr,
                        ..Default::default()
                    },
                );
                theta += res.mean_theta;
                matched += res.mean_matched;
                recall += res.recall;
                all_matched
                    .extend(res.scores.iter().filter(|f| f.diagnosed).map(|f| f.matched as f64));
            }
            let k = seeds as f64;
            all_matched.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let median_matched =
                all_matched.get(all_matched.len() / 2).copied().unwrap_or(0.0);
            rows.push(Row {
                concurrent: c,
                correlation_ids: corr,
                theta: theta / k,
                matched: matched / k,
                median_matched,
                recall: recall / k,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.concurrent.to_string(),
                if r.correlation_ids { "yes" } else { "no" }.into(),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.1}", r.matched),
                format!("{:.0}", r.median_matched),
                format!("{:.2}", r.recall),
            ]
        })
        .collect();
    results::print_table(
        "Correlation-id ablation (8 faults)",
        &["tests", "corr ids", "theta", "mean matched", "median", "recall"],
        &table,
    );
    println!(
        "\nWith correlation ids the truth operation is always matched (recall 1.0) and the\n\
         median fault narrows to a single operation; the mean is skewed by faults that\n\
         strike in an operation's first steps, where any evidence is genuinely ambiguous."
    );
    results::write_json("corr_ablation", &rows);
}

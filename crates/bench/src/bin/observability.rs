//! Observability overhead experiment: what does watching the pipeline cost?
//!
//! Each §7.2 operational case study runs through the sequenced service in
//! three arms: no registry at all (`metrics: None` — the pre-instrumentation
//! code path), a disabled registry (constructed but off — the shape a
//! production deployment keeps around a feature flag), and an enabled
//! registry recording every stage count, latency histogram and capture
//! meter. The headline numbers are:
//!
//! * **perturbation** — all three arms must emit byte-identical diagnosis
//!   streams (metrics are observation only, never control flow);
//! * **overhead** — best-of-N wall clock of the enabled arm over the
//!   disabled arm across the whole suite, asserted ≤ 5%;
//! * **determinism** — two enabled runs must agree under
//!   [`MetricsSnapshot::deterministic_eq`] (wall-clock histograms and the
//!   queue-depth gauge excluded, every counted event identical);
//! * **exports** — the Prometheus exposition parses back to the registry's
//!   values and the JSON snapshot survives a serde round trip;
//! * **self-watch** — stage latencies fed back through [`SelfWatch`] raise
//!   a `PerfFault` on the right stage when a detect stall is injected.
//!
//! Usage: `cargo run --release -p gretel-bench --bin observability [--seed N] [--smoke]`

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{
    run_service_cfg, self_watch_stage, Analyzer, Diagnosis, GretelConfig, SelfWatch, ServiceConfig,
};
use gretel_model::NodeId;
use gretel_netcap::CaptureImpairment;
use gretel_obs::{parse_prometheus_text, MetricsSnapshot, PipelineMetrics, Stage};
use gretel_sim::scenario::operational_suite;
use gretel_telemetry::LevelShiftConfig;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock noise floor: a run shorter than this can't resolve a 5%
/// delta, so the overhead gate allows `disabled × 1.05 + EPSILON_US`.
const EPSILON_US: u64 = 2_000;

/// One timed pass of the sequenced service over a scenario's traffic.
fn run_arm(
    wb: &Workbench,
    gcfg: GretelConfig,
    nodes: &[NodeId],
    traffic: &[gretel_model::Message],
    metrics: Option<Arc<PipelineMetrics>>,
) -> (Vec<Diagnosis>, u64, u64) {
    let cfg = ServiceConfig {
        impairment: Some(CaptureImpairment::none()),
        metrics,
        ..ServiceConfig::default()
    };
    let mut analyzer = Analyzer::new(&wb.library, gcfg);
    let t0 = Instant::now();
    let (diagnoses, _, astats) = run_service_cfg(&mut analyzer, nodes, traffic, &cfg);
    (diagnoses, t0.elapsed().as_micros() as u64, astats.messages)
}

/// Synthetic self-watch demo: train on steady detect-stage latencies, then
/// stall the stage 10× and report what the level-shift monitor raises.
fn self_watch_demo() -> (usize, Option<String>) {
    let metrics = PipelineMetrics::enabled();
    let mut watch = SelfWatch::new(LevelShiftConfig::default());
    let mut ts = 0u64;
    let mut faults = Vec::new();
    for i in 0..100u64 {
        metrics.observe(Stage::Detect, 2_000 + (i % 3));
        metrics.observe(Stage::Commit, 50);
        ts += 1_000;
        faults.extend(watch.poll(&metrics, ts));
    }
    let baseline_faults = faults.len();
    for i in 0..100u64 {
        metrics.observe(Stage::Detect, 20_000 + (i % 3));
        metrics.observe(Stage::Commit, 50);
        ts += 1_000;
        faults.extend(watch.poll(&metrics, ts));
    }
    assert_eq!(baseline_faults, 0, "self-watch must not alarm on a steady baseline");
    let stage = faults
        .first()
        .and_then(|f| self_watch_stage(f.api))
        .map(|s| s.name().to_string());
    (faults.len(), stage)
}

#[derive(Serialize)]
struct Row {
    scenario: String,
    messages: u64,
    diagnoses: usize,
    none_us: u64,
    disabled_us: u64,
    enabled_us: u64,
    disabled_identical: bool,
    enabled_identical: bool,
    snapshots_deterministic: bool,
    ingest_events: u64,
    detect_events: u64,
    detect_p50_us: u64,
    detect_p99_us: u64,
    commit_events: u64,
}

#[derive(Serialize)]
struct Output {
    seed: u64,
    reps: usize,
    rows: Vec<Row>,
    total_none_us: u64,
    total_disabled_us: u64,
    total_enabled_us: u64,
    overhead_pct: f64,
    all_identical: bool,
    all_deterministic: bool,
    prometheus_samples: usize,
    json_roundtrip: bool,
    self_watch_faults: usize,
    self_watch_stage: Option<String>,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let smoke = flag("--smoke");
    let reps: usize = if smoke { 2 } else { 3 };
    let wb = Workbench::new(seed);

    let suite = operational_suite(&wb.catalog, seed, 6);
    let suite = if smoke { &suite[..1] } else { &suite[..] };

    let mut rows = Vec::new();
    let mut export_registry: Option<Arc<PipelineMetrics>> = None;
    for sc in suite.iter() {
        let exec = sc.run(wb.catalog.clone());
        let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
        let gcfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
        let nodes: Vec<NodeId> = sc.deployment.nodes().iter().map(|n| n.id).collect();

        // Arm 1 — no registry: the pre-instrumentation pipeline, the oracle
        // every other arm is compared against byte for byte.
        let (expected, mut none_us, messages) =
            run_arm(&wb, gcfg, &nodes, &exec.messages, None);

        // Arm 2 — registry constructed but disabled (the feature-flag-off
        // shape); arm 3 — fully enabled, run twice for the determinism check.
        let mut disabled_us = u64::MAX;
        let mut enabled_us = u64::MAX;
        let mut disabled_identical = true;
        let mut enabled_identical = true;
        let mut first_snapshot: Option<MetricsSnapshot> = None;
        let mut snapshots_deterministic = true;
        let mut last_enabled: Option<Arc<PipelineMetrics>> = None;
        for _ in 0..reps {
            let (d, us, _) = run_arm(&wb, gcfg, &nodes, &exec.messages, None);
            none_us = none_us.min(us);
            debug_assert_eq!(d, expected);

            let m = Arc::new(PipelineMetrics::disabled());
            let (d, us, _) = run_arm(&wb, gcfg, &nodes, &exec.messages, Some(m.clone()));
            disabled_us = disabled_us.min(us);
            disabled_identical &= d == expected;
            assert_eq!(m.stage_events(Stage::Ingest), 0, "disabled registry must stay empty");

            let m = Arc::new(PipelineMetrics::enabled());
            let (d, us, _) = run_arm(&wb, gcfg, &nodes, &exec.messages, Some(m.clone()));
            enabled_us = enabled_us.min(us);
            enabled_identical &= d == expected;
            let snap = m.snapshot();
            if let Some(first) = &first_snapshot {
                snapshots_deterministic &= first.deterministic_eq(&snap);
            } else {
                first_snapshot = Some(snap);
            }
            last_enabled = Some(m);
        }

        let m = last_enabled.expect("at least one enabled rep ran");
        assert_eq!(
            m.stage_events(Stage::Ingest),
            messages,
            "every merged message must be counted at the ingest stage"
        );
        let detect = m.stage_latency(Stage::Detect);
        rows.push(Row {
            scenario: sc.name.to_string(),
            messages,
            diagnoses: expected.len(),
            none_us,
            disabled_us,
            enabled_us,
            disabled_identical,
            enabled_identical,
            snapshots_deterministic,
            ingest_events: m.stage_events(Stage::Ingest),
            detect_events: m.stage_events(Stage::Detect),
            detect_p50_us: detect.p50_us,
            detect_p99_us: detect.p99_us,
            commit_events: m.stage_events(Stage::Commit),
        });
        export_registry = Some(m);
    }

    // Export round trips, on the last scenario's enabled registry.
    let registry = export_registry.expect("suite is non-empty");
    let text = registry.prometheus_text();
    let samples = parse_prometheus_text(&text).expect("prometheus exposition parses");
    let ingest_sample = samples
        .iter()
        .find(|s| {
            s.name == "gretel_stage_events_total"
                && s.labels.iter().any(|(k, v)| k == "stage" && v == "ingest")
        })
        .expect("ingest events sample present");
    assert_eq!(
        ingest_sample.value as u64,
        registry.stage_events(Stage::Ingest),
        "exposition must round-trip the ingest event count"
    );
    let snap = registry.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    let json_roundtrip = back == snap;

    let (self_watch_faults, watched_stage) = self_watch_demo();

    let total_none_us: u64 = rows.iter().map(|r| r.none_us).sum();
    let total_disabled_us: u64 = rows.iter().map(|r| r.disabled_us).sum();
    let total_enabled_us: u64 = rows.iter().map(|r| r.enabled_us).sum();
    let overhead_pct =
        (total_enabled_us as f64 - total_disabled_us as f64) / total_disabled_us as f64 * 100.0;
    let all_identical = rows.iter().all(|r| r.disabled_identical && r.enabled_identical);
    let all_deterministic = rows.iter().all(|r| r.snapshots_deterministic);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{}", r.messages),
                format!("{}", r.diagnoses),
                format!("{}", r.disabled_us),
                format!("{}", r.enabled_us),
                format!("{}", r.disabled_identical && r.enabled_identical),
                format!("{}", r.detect_events),
                format!("{}", r.detect_p99_us),
            ]
        })
        .collect();
    results::print_table(
        "Observability: wall clock and output equality with metrics off/on",
        &["scenario", "msgs", "diags", "off µs", "on µs", "identical", "detects", "det p99µs"],
        &table,
    );
    println!(
        "overhead: {overhead_pct:.2}%  identical: {all_identical}  deterministic: {all_deterministic}  \
         prometheus samples: {}  self-watch: {} fault(s) on {:?}",
        samples.len(),
        self_watch_faults,
        watched_stage
    );

    // Smoke runs cover one scenario at reduced reps; don't clobber the
    // committed full-sweep artifact with them.
    if !smoke {
        results::write_json(
            "observability",
            &Output {
                seed,
                reps,
                rows,
                total_none_us,
                total_disabled_us,
                total_enabled_us,
                overhead_pct,
                all_identical,
                all_deterministic,
                prometheus_samples: samples.len(),
                json_roundtrip,
                self_watch_faults,
                self_watch_stage: watched_stage.clone(),
            },
        );
    }

    assert!(all_identical, "metrics must never perturb the diagnosis stream");
    assert!(all_deterministic, "enabled-run snapshots must agree modulo wall clock");
    assert!(json_roundtrip, "JSON snapshot must survive a serde round trip");
    assert_eq!(self_watch_faults, 1, "the injected stall must raise exactly one fault");
    assert_eq!(watched_stage.as_deref(), Some("detect"), "the fault must map to the detect stage");
    assert!(
        total_enabled_us as f64 <= total_disabled_us as f64 * 1.05 + EPSILON_US as f64,
        "instrumentation overhead {overhead_pct:.2}% exceeds the 5% budget \
         (enabled {total_enabled_us}µs vs disabled {total_disabled_us}µs)"
    );
}

//! Scaling study: detection cost and precision vs. fingerprint-library
//! size and deployment size.
//!
//! The paper argues fingerprints are "independent of the scale of the
//! deployment" (§7.1) and that matching hundreds of regexes is what the §6
//! optimizations target. This binary measures both axes:
//!
//! * library size 100 → 1200 fingerprints: per-fault detection wall time
//!   and precision on the same workload;
//! * deployment size 3 → 100 compute nodes: end-to-end precision on a
//!   fixed workload (should be flat — fingerprints don't mention nodes).
//!
//! Usage: `cargo run --release -p gretel-bench --bin scale [--seed N]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, results, Workbench};
use gretel_core::{Detector, Event, FaultMark, FingerprintLibrary, GretelConfig};
use gretel_model::{ApiId, Direction, MessageId, NodeId, OpSpecId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct LibraryRow {
    fingerprints: usize,
    detect_us: f64,
    matched: usize,
}

#[derive(Serialize)]
struct DeployRow {
    compute_nodes: usize,
    theta: f64,
    recall: f64,
}

fn synth_events(wb: &Workbench, n: usize, offending: ApiId, seed: u64) -> (Vec<Event>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = &wb.suite.pools(gretel_model::Category::Compute).rest;
    let cat = &wb.catalog;
    let mut events: Vec<Event> = (0..n)
        .map(|i| {
            let api = pool[rng.gen_range(0..pool.len())];
            let def = cat.get(api);
            Event {
                id: MessageId(i as u64),
                ts: i as u64 * 20,
                api,
                direction: Direction::Request,
                is_rpc: def.is_rpc(),
                state_change: def.is_state_change(),
                noise_api: false,
                src_node: NodeId(0),
                dst_node: NodeId(1),
                corr: None,
                fault: FaultMark::None,
                gap_before: 0,
            }
        })
        .collect();
    let center = n / 2;
    events[center].api = offending;
    events[center].fault = FaultMark::RestError(500);
    (events, center)
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let wb = Workbench::new(seed);
    let offending = wb.catalog.rest_expect(
        gretel_model::Service::Neutron,
        gretel_model::HttpMethod::Post,
        "/v2.0/ports.json",
    );

    // --- Axis 1: library size -------------------------------------------
    let full_json = wb.library.to_json();
    let all: Vec<gretel_core::Fingerprint> = serde_json::from_str(&full_json).expect("json");
    let (events, center) = synth_events(&wb, 8192, offending, seed ^ 0x5CA1);

    let mut lib_rows = Vec::new();
    for &n in &[100usize, 300, 600, 900, 1200] {
        // A prefix library (ids stay dense).
        let subset = serde_json::to_string(&all[..n]).expect("json");
        let lib = FingerprintLibrary::from_json(wb.catalog.clone(), &subset).expect("load");
        let cfg = GretelConfig { alpha: events.len(), ..GretelConfig::default() };
        let detector = Detector::new(&lib, cfg);
        // Warm up, then time.
        let _ = detector.detect_operational(&events, center, offending);
        let reps = 50;
        let t0 = Instant::now();
        let mut matched = 0;
        for _ in 0..reps {
            matched = detector.detect_operational(&events, center, offending).matched.len();
        }
        let per = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        lib_rows.push(LibraryRow { fingerprints: n, detect_us: per, matched });
    }
    let table: Vec<Vec<String>> = lib_rows
        .iter()
        .map(|r| {
            vec![
                r.fingerprints.to_string(),
                format!("{:.0}", r.detect_us),
                r.matched.to_string(),
            ]
        })
        .collect();
    results::print_table(
        "Scaling: detection cost vs library size (8192-event snapshot)",
        &["fingerprints", "detect µs", "matched"],
        &table,
    );

    // --- Axis 2: deployment size ----------------------------------------
    // Fingerprints were learned on the 7-node standard deployment; the
    // paper's claim is that they keep working as the deployment grows.
    let mut dep_rows = Vec::new();
    for &n_compute in &[3usize, 10, 50, 100] {
        let deployment = gretel_sim::Deployment::scaled(n_compute);
        let mut theta = 0.0;
        let mut recall = 0.0;
        let seeds = 2u64;
        for s in 0..seeds {
            let res = run_with_deployment(&wb, &deployment, seed ^ (s + 1));
            theta += res.mean_theta;
            recall += res.recall;
        }
        dep_rows.push(DeployRow {
            compute_nodes: n_compute,
            theta: theta / seeds as f64,
            recall: recall / seeds as f64,
        });
    }
    let table: Vec<Vec<String>> = dep_rows
        .iter()
        .map(|r| {
            vec![
                r.compute_nodes.to_string(),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.2}", r.recall),
            ]
        })
        .collect();
    results::print_table(
        "Scaling: precision vs deployment size (100 tests, 8 faults)",
        &["compute nodes", "theta", "recall"],
        &table,
    );
    results::write_json("scale_library", &lib_rows);
    results::write_json("scale_deployment", &dep_rows);
    // Sanity anchor: the canonical first fingerprint is deployment-free.
    let _ = OpSpecId(0);
}

/// The fig7-style precision run, but on an arbitrary deployment.
fn run_with_deployment(
    wb: &Workbench,
    deployment: &gretel_sim::Deployment,
    seed: u64,
) -> gretel_bench::precision::PrecisionResult {
    // precision::run uses wb.deployment; temporarily shadow by building a
    // Workbench-alike view. Simplest correct approach: reuse run() on a
    // cloned workbench with the new deployment.
    let wb2 = Workbench {
        catalog: wb.catalog.clone(),
        suite: gretel_model::TempestSuite::generate_with_counts(
            wb.catalog.clone(),
            42,
            &gretel_model::Category::ALL
                .iter()
                .map(|&c| (c, gretel_model::tempest::table1_targets(c).tests))
                .collect::<Vec<_>>(),
        ),
        deployment: deployment.clone(),
        library: wb.library.clone(),
        char_stats: wb.char_stats.clone(),
    };
    run(&wb2, PrecisionParams { concurrent: 100, faults: 8, seed, ..Default::default() })
}

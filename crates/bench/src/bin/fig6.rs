//! Fig 6 — Anomalous latency for Neutron's `GET /ports.json`.
//!
//! Reproduces §7.2.2: during a run of concurrent VM-create operations, a
//! CPU surge on the Neutron server inflates its API latencies; GRETEL's
//! level-shift detector flags the shift and root cause analysis attributes
//! it to the CPU. Prints the latency series (original + level) and the
//! alarms.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig6 [--seed N] [--ops N]`

use gretel_bench::{arg, results, Workbench};
use gretel_core::{analyze_stream, Analyzer, FaultKind, GretelConfig, RcaContext};
use gretel_model::{HttpMethod, Service};
use gretel_sim::scenario::neutron_api_latency_with_window;
use gretel_sim::secs;
use gretel_telemetry::TelemetryStore;
use serde::Serialize;

#[derive(Serialize)]
struct SeriesPoint {
    t_s: f64,
    latency_ms: f64,
}

#[derive(Serialize)]
struct Fig6Out {
    series: Vec<SeriesPoint>,
    alarms: Vec<f64>,
    root_causes: Vec<String>,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let ops: usize = arg("--ops", 150);
    let wb = Workbench::new(seed);

    let sc = neutron_api_latency_with_window(&wb.catalog, seed, ops, secs(40), secs(90));
    let exec = sc.run(wb.catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);

    // The monitored API: Neutron GET /v2.0/ports.json (the paper's
    // v2.0/ports.json). Our canonical VM create reads networks.json and
    // security-groups.json and writes ports.json; monitor the POST (the
    // port-create the paper's step 6 slows down) plus the GETs.
    let ports_post =
        wb.catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");

    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
    let ls = gretel_telemetry::LevelShiftConfig {
        baseline_window: 20,
        test_window: 4,
        ..Default::default()
    };
    let mut analyzer = Analyzer::with_perf_config(&wb.library, cfg, ls, true)
    .with_rca(RcaContext {
        deployment: &sc.deployment,
        telemetry: &telemetry,
        specs: wb.suite.specs(),
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    let series: Vec<SeriesPoint> = analyzer
        .latency_history(ports_post)
        .iter()
        .map(|&(ts, lat)| SeriesPoint { t_s: ts as f64 / 1e6, latency_ms: lat / 1e3 })
        .collect();
    let perf: Vec<_> = diagnoses
        .iter()
        .filter(|d| matches!(d.kind, FaultKind::Performance { .. }))
        .collect();

    // Console rendering: decimate the series.
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by((series.len() / 24).max(1))
        .map(|p| {
            let bar = "#".repeat((p.latency_ms / 8.0).min(60.0) as usize);
            vec![format!("{:7.2}s", p.t_s), format!("{:8.1}ms", p.latency_ms), bar]
        })
        .collect();
    results::print_table("Fig 6: Neutron POST /v2.0/ports.json latency", &["t", "latency", ""], &rows);

    println!("\nPerformance diagnoses ({}):", perf.len());
    let mut causes = Vec::new();
    for d in perf.iter().take(6) {
        print!("{}", d.render(wb.suite.specs()));
        for rc in &d.root_causes {
            causes.push(format!("{}: {}", rc.node, rc.why));
        }
    }
    causes.sort();
    causes.dedup();
    println!(
        "\nExpected root cause: CPU surge on {} — {}",
        match sc.expected_cause {
            gretel_sim::ExpectedCause::Resource(node, kind) => format!("{node} ({kind})"),
            gretel_sim::ExpectedCause::Dependency(node, ref dep) => format!("{node} ({dep})"),
        },
        if causes.iter().any(|c| c.contains("CPU")) { "FOUND" } else { "NOT FOUND" }
    );

    results::write_json(
        "fig6",
        &Fig6Out {
            series,
            alarms: perf.iter().map(|d| d.ts as f64 / 1e6).collect(),
            root_causes: causes,
        },
    );
}

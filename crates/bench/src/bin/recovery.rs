//! Crash-recovery experiment: exactly-once diagnosis under analysis-plane
//! failure — in-process crashes and whole-process kills.
//!
//! Each §7.2 operational case study is first run through the plain
//! pipeline (the oracle), then repeatedly through the fault-tolerant
//! service under increasing failure pressure, in two modes:
//!
//! * **in-process** (`run_service_recoverable`): scheduled service
//!   crashes with checkpoint/replay restarts, chaos that kills every
//!   worker's first two attempts at a job, and an arm that corrupts every
//!   checkpoint record so restores fall back to older (or cold) state.
//! * **process-kill** (`run_service_durable` over a `FileStore`): the
//!   entire service is killed mid-stream (SIGKILL model — nothing since
//!   the last checkpoint boundary survives) and a fresh invocation
//!   restarts from the on-disk segments. Arms cover clean restarts, small
//!   segments (restart reads back through sealed files), a corrupted
//!   newest record, and a torn tail (the in-flight write is cut mid-
//!   record, as after power loss).
//!
//! For every run the committed diagnosis stream is compared against the
//! oracle as a multiset: the headline numbers are **diagnoses lost** and
//! **diagnoses duplicated**, and the acceptance target for both is zero
//! at every crash rate, in every mode.
//!
//! Usage: `cargo run --release -p gretel-bench --bin recovery [--seed N] [--smoke] [--store-dir PATH]`

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{
    run_service_cfg, run_service_durable, run_service_recoverable, Analyzer, AnalyzerChaos,
    Diagnosis, DurableConfig, DurableOutcome, GretelConfig, RecoveryConfig, RecoveryStats,
    ServiceConfig,
};
use gretel_model::NodeId;
use gretel_netcap::CaptureImpairment;
use gretel_sim::scenario::operational_suite;
use gretel_sim::CrashSchedule;
use gretel_store::{FileStore, FileStoreConfig, Store};
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Service crashes scheduled per in-process run.
const CRASH_COUNTS: [usize; 4] = [0, 1, 2, 4];

/// One whole-process kill-restart arm.
struct DurableArm {
    name: &'static str,
    /// Scheduled process kills (one per invocation, via `seeded_kills`).
    kills: usize,
    /// Segment rotation threshold; small values force restarts to read
    /// back through several sealed segment files.
    rotate_bytes: usize,
    /// Corrupt the newest on-disk record between invocations (restore
    /// must fall back to an older checkpoint, or cold replay).
    corrupt_between: bool,
    /// Tear the active segment's tail mid-record between invocations
    /// (power-loss model; open truncates the torn write away).
    tear_between: bool,
}

const DURABLE_ARMS: [DurableArm; 4] = [
    DurableArm {
        name: "kill-clean",
        kills: 1,
        rotate_bytes: 1 << 20,
        corrupt_between: false,
        tear_between: false,
    },
    DurableArm {
        name: "kill-segments",
        kills: 2,
        rotate_bytes: 4096,
        corrupt_between: false,
        tear_between: false,
    },
    DurableArm {
        name: "kill-corrupt",
        kills: 1,
        rotate_bytes: 8192,
        corrupt_between: true,
        tear_between: false,
    },
    DurableArm {
        name: "kill-torn",
        kills: 1,
        rotate_bytes: 1 << 20,
        corrupt_between: false,
        tear_between: true,
    },
];

/// Multiset difference between the oracle's diagnoses and a recovery
/// run's: `(lost, duplicated)`.
fn diff(expected: &[Diagnosis], got: &[Diagnosis]) -> (usize, usize) {
    let mut counts: HashMap<String, i64> = HashMap::new();
    for d in expected {
        *counts.entry(format!("{d:?}")).or_default() += 1;
    }
    for d in got {
        *counts.entry(format!("{d:?}")).or_default() -= 1;
    }
    let lost = counts.values().filter(|&&c| c > 0).sum::<i64>() as usize;
    let duplicated = counts.values().filter(|&&c| c < 0).map(|c| -c).sum::<i64>() as usize;
    (lost, duplicated)
}

fn add_stats(total: &mut RecoveryStats, r: &RecoveryStats) {
    total.worker_crashes += r.worker_crashes;
    total.jobs_requeued += r.jobs_requeued;
    total.jobs_cancelled += r.jobs_cancelled;
    total.checkpoints_written += r.checkpoints_written;
    total.checkpoints_corrupt += r.checkpoints_corrupt;
    total.restores += r.restores;
    total.replayed_frames += r.replayed_frames;
    total.duplicate_releases_suppressed += r.duplicate_releases_suppressed;
    total.library_reloads += r.library_reloads;
}

/// Cut the active segment mid-record: the newest record on disk is always
/// a checkpoint or library snapshot (never released diagnoses — those are
/// written *before* the checkpoint that covers them), so a torn tail can
/// delay recovery but never lose output.
fn tear_tail(dir: &Path) {
    let cur = dir.join("current.seg");
    let Ok(buf) = std::fs::read(&cur) else { return };
    let mut last: Option<(usize, usize)> = None;
    for r in gretel_store::records(&buf) {
        let end = r.offset + gretel_store::RECORD_HEADER + r.payload.len();
        last = Some((r.offset, end));
    }
    // An empty active segment (kill landed right after a rotation) has
    // nothing to tear this round.
    let Some((off, end)) = last else { return };
    let cut = off + (end - off) / 2;
    let f = std::fs::OpenOptions::new().write(true).open(&cur).expect("open active segment");
    f.set_len(cut as u64).expect("tear active segment tail");
}

#[derive(Serialize)]
struct Row {
    scenario: String,
    /// `in-process` or a whole-process kill arm name.
    mode: String,
    crashes_scheduled: usize,
    process_kills: usize,
    corrupt_store: bool,
    torn_tail: bool,
    diagnoses: usize,
    lost: usize,
    duplicated: usize,
    identical: bool,
    worker_crashes: u64,
    jobs_requeued: u64,
    restores: u64,
    checkpoints_written: u64,
    checkpoints_corrupt: u64,
    replayed_frames: u64,
    duplicate_releases_suppressed: u64,
}

#[derive(Serialize)]
struct Output {
    seed: u64,
    kill_prob: f64,
    kill_attempts: u32,
    max_attempts: u32,
    rows: Vec<Row>,
    total_lost: usize,
    total_duplicated: usize,
    total_process_kills: usize,
    all_identical: bool,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let smoke = flag("--smoke");
    let store_dir: String = arg("--store-dir", String::new());
    let wb = Workbench::new(seed);

    let store_base: PathBuf = if store_dir.is_empty() {
        std::env::temp_dir().join(format!("gretel-recovery-{}-{seed}", std::process::id()))
    } else {
        PathBuf::from(store_dir)
    };

    let suite = operational_suite(&wb.catalog, seed, 6);
    let suite = if smoke { &suite[..1] } else { &suite[..] };
    let crash_counts: &[usize] = if smoke { &[2] } else { &CRASH_COUNTS };
    // Smoke keeps one clean kill and the torn-tail arm: together they
    // cover restart-from-disk and torn-write truncation, the two FileStore
    // paths the in-process arms cannot reach.
    let durable_arms: Vec<&DurableArm> = if smoke {
        DURABLE_ARMS.iter().filter(|a| a.name == "kill-clean" || a.name == "kill-torn").collect()
    } else {
        DURABLE_ARMS.iter().collect()
    };

    let mut rows = Vec::new();
    for (si, sc) in suite.iter().enumerate() {
        let exec = sc.run(wb.catalog.clone());
        let n_msgs = exec.messages.len() as u64;
        let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
        let gcfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
        let nodes: Vec<NodeId> = sc.deployment.nodes().iter().map(|n| n.id).collect();

        // Oracle: the plain sequenced pipeline, no failures.
        let base = ServiceConfig {
            impairment: Some(CaptureImpairment::none()),
            ..ServiceConfig::default()
        };
        let mut oracle = Analyzer::new(&wb.library, gcfg);
        let (expected, _, _) = run_service_cfg(&mut oracle, &nodes, &exec.messages, &base);

        // ---- In-process crash/replay arms -------------------------------
        for &crashes in crash_counts {
            for corrupt in [false, true] {
                if corrupt && crashes == 0 {
                    continue; // corruption only matters when a restore happens
                }
                let chaos = AnalyzerChaos {
                    kill_prob: 1.0, // every job kills its worker twice, then completes
                    kill_attempts: 2,
                    stall_prob: 0.0,
                    corrupt_prob: if corrupt { 1.0 } else { 0.0 },
                    seed: seed ^ (si as u64) << 8,
                };
                let cfg = RecoveryConfig {
                    service: base.clone(),
                    checkpoint_every: (n_msgs / 8).max(32),
                    chaos,
                    max_attempts: 5,
                    crash_points: CrashSchedule::seeded(
                        seed ^ 0xC4A5 ^ (si as u64),
                        crashes,
                        n_msgs,
                    )
                    .points,
                    ..RecoveryConfig::default()
                };
                let mut analyzer = Analyzer::new(&wb.library, gcfg);
                let (got, _, _, rec) =
                    run_service_recoverable(&mut analyzer, &nodes, &exec.messages, &cfg)
                        .expect("recovery run completes");
                let (lost, duplicated) = diff(&expected, &got);
                rows.push(Row {
                    scenario: sc.name.to_string(),
                    mode: "in-process".to_string(),
                    crashes_scheduled: crashes,
                    process_kills: 0,
                    corrupt_store: corrupt,
                    torn_tail: false,
                    diagnoses: got.len(),
                    lost,
                    duplicated,
                    identical: got == expected,
                    worker_crashes: rec.worker_crashes,
                    jobs_requeued: rec.jobs_requeued,
                    restores: rec.restores,
                    checkpoints_written: rec.checkpoints_written,
                    checkpoints_corrupt: rec.checkpoints_corrupt,
                    replayed_frames: rec.replayed_frames,
                    duplicate_releases_suppressed: rec.duplicate_releases_suppressed,
                });
            }
        }

        // ---- Whole-process kill-restart arms (durable FileStore) --------
        for (ai, armref) in durable_arms.iter().enumerate() {
            let arm = *armref;
            let dir = store_base.join(format!("s{si}-{}", arm.name));
            std::fs::remove_dir_all(&dir).ok();
            let fcfg = FileStoreConfig { rotate_bytes: arm.rotate_bytes, ..Default::default() };
            let kill_points = CrashSchedule::seeded_kills(
                seed ^ 0xD007 ^ ((si as u64) << 4) ^ ai as u64,
                arm.kills,
                n_msgs,
            )
            .points;

            let mut totals = RecoveryStats::default();
            let mut invocations = 0usize;
            let got = loop {
                // Each FileStore::open models one process start: inventory
                // the segments, truncate any torn tail, replay.
                let mut store = FileStore::open(&dir, fcfg).expect("open durable store");
                let dcfg = DurableConfig {
                    recovery: RecoveryConfig {
                        service: base.clone(),
                        checkpoint_every: (n_msgs / 8).max(32),
                        ..RecoveryConfig::default()
                    },
                    kill_point: kill_points.get(invocations).copied(),
                    reloads: Vec::new(),
                };
                let out = run_service_durable(
                    &wb.library,
                    gcfg,
                    &nodes,
                    &exec.messages,
                    &dcfg,
                    &mut store,
                )
                .expect("durable run completes or is killed");
                invocations += 1;
                assert!(
                    invocations <= arm.kills + 2,
                    "kill arm must converge once the schedule is exhausted"
                );
                match out {
                    DurableOutcome::Completed { diagnoses, recovery, .. } => {
                        add_stats(&mut totals, &recovery);
                        break diagnoses;
                    }
                    DurableOutcome::Killed { recovery, .. } => {
                        add_stats(&mut totals, &recovery);
                        drop(store);
                        if arm.corrupt_between {
                            // Flip a byte in the newest record — always a
                            // checkpoint or library snapshot, so recovery
                            // falls back without losing released output.
                            let mut s =
                                FileStore::open(&dir, fcfg).expect("reopen for corruption");
                            let n = s.len();
                            if n > 0 {
                                s.corrupt_record(
                                    n - 1,
                                    (seed as usize) ^ invocations.wrapping_mul(0x9E37),
                                );
                            }
                        }
                        if arm.tear_between {
                            tear_tail(&dir);
                        }
                    }
                }
            };
            std::fs::remove_dir_all(&dir).ok();

            let (lost, duplicated) = diff(&expected, &got);
            rows.push(Row {
                scenario: sc.name.to_string(),
                mode: arm.name.to_string(),
                crashes_scheduled: 0,
                process_kills: invocations - 1,
                corrupt_store: arm.corrupt_between,
                torn_tail: arm.tear_between,
                diagnoses: got.len(),
                lost,
                duplicated,
                identical: got == expected,
                worker_crashes: totals.worker_crashes,
                jobs_requeued: totals.jobs_requeued,
                restores: totals.restores,
                checkpoints_written: totals.checkpoints_written,
                checkpoints_corrupt: totals.checkpoints_corrupt,
                replayed_frames: totals.replayed_frames,
                duplicate_releases_suppressed: totals.duplicate_releases_suppressed,
            });
        }
    }
    std::fs::remove_dir_all(&store_base).ok();

    let total_lost: usize = rows.iter().map(|r| r.lost).sum();
    let total_duplicated: usize = rows.iter().map(|r| r.duplicated).sum();
    let total_process_kills: usize = rows.iter().map(|r| r.process_kills).sum();
    let all_identical = rows.iter().all(|r| r.identical);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.mode.clone(),
                format!("{}", r.crashes_scheduled),
                format!("{}", r.process_kills),
                format!("{}", r.corrupt_store),
                format!("{}", r.diagnoses),
                format!("{}/{}", r.lost, r.duplicated),
                format!("{}", r.worker_crashes),
                format!("{}", r.restores),
                format!("{}", r.replayed_frames),
            ]
        })
        .collect();
    results::print_table(
        "Crash recovery: diagnoses lost/duplicated under supervision + checkpoint/replay",
        &[
            "scenario", "mode", "crashes", "pkills", "corrupt", "diags", "lost/dup", "kills",
            "restores", "replayed",
        ],
        &table,
    );
    println!(
        "total lost: {total_lost}  total duplicated: {total_duplicated}  \
         process kills: {total_process_kills}  all identical: {all_identical}"
    );

    // Smoke runs cover a reduced arm matrix; writing them out would
    // clobber the committed full-sweep artifact (it happened: PR 5 had
    // to restore stale --smoke output).
    if !smoke {
        results::write_json(
            "recovery",
            &Output {
                seed,
                kill_prob: 1.0,
                kill_attempts: 2,
                max_attempts: 5,
                rows,
                total_lost,
                total_duplicated,
                total_process_kills,
                all_identical,
            },
        );
    }

    if smoke {
        assert_eq!(total_lost, 0, "smoke: no diagnosis may be lost");
        assert_eq!(total_duplicated, 0, "smoke: no diagnosis may be duplicated");
        assert!(all_identical, "smoke: recovered output must be byte-identical");
        assert!(total_process_kills > 0, "smoke: at least one process kill must fire");
    }
}

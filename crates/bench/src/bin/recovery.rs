//! Crash-recovery experiment: exactly-once diagnosis under analysis-plane
//! failure.
//!
//! Each §7.2 operational case study is first run through the plain
//! pipeline (the oracle), then repeatedly through the fault-tolerant
//! service (`run_service_recoverable`) under increasing failure pressure:
//! scheduled service crashes with checkpoint/replay restarts, chaos that
//! kills every worker's first two attempts at a job, and an arm that
//! corrupts every checkpoint record so restores fall back to older (or
//! cold) state. For every run the committed diagnosis stream is compared
//! against the oracle as a multiset: the headline numbers are **diagnoses
//! lost** and **diagnoses duplicated**, and the acceptance target for both
//! is zero at every crash rate.
//!
//! Usage: `cargo run --release -p gretel-bench --bin recovery [--seed N] [--smoke]`

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{
    run_service_cfg, run_service_recoverable, Analyzer, AnalyzerChaos, Diagnosis, GretelConfig,
    RecoveryConfig, ServiceConfig,
};
use gretel_model::NodeId;
use gretel_netcap::CaptureImpairment;
use gretel_sim::scenario::operational_suite;
use gretel_sim::CrashSchedule;
use serde::Serialize;
use std::collections::HashMap;

/// Service crashes scheduled per run.
const CRASH_COUNTS: [usize; 4] = [0, 1, 2, 4];

/// Multiset difference between the oracle's diagnoses and a recovery
/// run's: `(lost, duplicated)`.
fn diff(expected: &[Diagnosis], got: &[Diagnosis]) -> (usize, usize) {
    let mut counts: HashMap<String, i64> = HashMap::new();
    for d in expected {
        *counts.entry(format!("{d:?}")).or_default() += 1;
    }
    for d in got {
        *counts.entry(format!("{d:?}")).or_default() -= 1;
    }
    let lost = counts.values().filter(|&&c| c > 0).sum::<i64>() as usize;
    let duplicated = counts.values().filter(|&&c| c < 0).map(|c| -c).sum::<i64>() as usize;
    (lost, duplicated)
}

#[derive(Serialize)]
struct Row {
    scenario: String,
    crashes_scheduled: usize,
    corrupt_journal: bool,
    diagnoses: usize,
    lost: usize,
    duplicated: usize,
    identical: bool,
    worker_crashes: u64,
    jobs_requeued: u64,
    restores: u64,
    checkpoints_written: u64,
    checkpoints_corrupt: u64,
    replayed_frames: u64,
    duplicate_releases_suppressed: u64,
}

#[derive(Serialize)]
struct Output {
    seed: u64,
    kill_prob: f64,
    kill_attempts: u32,
    max_attempts: u32,
    rows: Vec<Row>,
    total_lost: usize,
    total_duplicated: usize,
    all_identical: bool,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let smoke = flag("--smoke");
    let wb = Workbench::new(seed);

    let suite = operational_suite(&wb.catalog, seed, 6);
    let suite = if smoke { &suite[..1] } else { &suite[..] };
    let crash_counts: &[usize] = if smoke { &[2] } else { &CRASH_COUNTS };

    let mut rows = Vec::new();
    for (si, sc) in suite.iter().enumerate() {
        let exec = sc.run(wb.catalog.clone());
        let n_msgs = exec.messages.len() as u64;
        let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
        let gcfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
        let nodes: Vec<NodeId> = sc.deployment.nodes().iter().map(|n| n.id).collect();

        // Oracle: the plain sequenced pipeline, no failures.
        let base = ServiceConfig {
            impairment: Some(CaptureImpairment::none()),
            ..ServiceConfig::default()
        };
        let mut oracle = Analyzer::new(&wb.library, gcfg);
        let (expected, _, _) = run_service_cfg(&mut oracle, &nodes, &exec.messages, &base);

        for &crashes in crash_counts {
            for corrupt in [false, true] {
                if corrupt && crashes == 0 {
                    continue; // corruption only matters when a restore happens
                }
                let chaos = AnalyzerChaos {
                    kill_prob: 1.0, // every job kills its worker twice, then completes
                    kill_attempts: 2,
                    stall_prob: 0.0,
                    corrupt_prob: if corrupt { 1.0 } else { 0.0 },
                    seed: seed ^ (si as u64) << 8,
                };
                let cfg = RecoveryConfig {
                    service: base.clone(),
                    checkpoint_every: (n_msgs / 8).max(32),
                    chaos,
                    max_attempts: 5,
                    crash_points: CrashSchedule::seeded(
                        seed ^ 0xC4A5 ^ (si as u64),
                        crashes,
                        n_msgs,
                    )
                    .points,
                    ..RecoveryConfig::default()
                };
                let mut analyzer = Analyzer::new(&wb.library, gcfg);
                let (got, _, _, rec) =
                    run_service_recoverable(&mut analyzer, &nodes, &exec.messages, &cfg)
                        .expect("recovery run completes");
                let (lost, duplicated) = diff(&expected, &got);
                rows.push(Row {
                    scenario: sc.name.to_string(),
                    crashes_scheduled: crashes,
                    corrupt_journal: corrupt,
                    diagnoses: got.len(),
                    lost,
                    duplicated,
                    identical: got == expected,
                    worker_crashes: rec.worker_crashes,
                    jobs_requeued: rec.jobs_requeued,
                    restores: rec.restores,
                    checkpoints_written: rec.checkpoints_written,
                    checkpoints_corrupt: rec.checkpoints_corrupt,
                    replayed_frames: rec.replayed_frames,
                    duplicate_releases_suppressed: rec.duplicate_releases_suppressed,
                });
            }
        }
    }

    let total_lost: usize = rows.iter().map(|r| r.lost).sum();
    let total_duplicated: usize = rows.iter().map(|r| r.duplicated).sum();
    let all_identical = rows.iter().all(|r| r.identical);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{}", r.crashes_scheduled),
                format!("{}", r.corrupt_journal),
                format!("{}", r.diagnoses),
                format!("{}/{}", r.lost, r.duplicated),
                format!("{}", r.worker_crashes),
                format!("{}", r.restores),
                format!("{}", r.replayed_frames),
            ]
        })
        .collect();
    results::print_table(
        "Crash recovery: diagnoses lost/duplicated under supervision + checkpoint/replay",
        &["scenario", "crashes", "corrupt", "diags", "lost/dup", "kills", "restores", "replayed"],
        &table,
    );
    println!(
        "total lost: {total_lost}  total duplicated: {total_duplicated}  all identical: {all_identical}"
    );

    results::write_json(
        "recovery",
        &Output {
            seed,
            kill_prob: 1.0,
            kill_attempts: 2,
            max_attempts: 5,
            rows,
            total_lost,
            total_duplicated,
            all_identical,
        },
    );

    if smoke {
        assert_eq!(total_lost, 0, "smoke: no diagnosis may be lost");
        assert_eq!(total_duplicated, 0, "smoke: no diagnosis may be duplicated");
        assert!(all_identical, "smoke: recovered output must be byte-identical");
    }
}

//! Fig 8a — Operations matched with 16 identical concurrent faulty
//! operations.
//!
//! 16 instances of the *same* faulty operation run alongside a varying
//! number of concurrent tests (100–400). Paper: the average number of
//! operations matched per fault decreases steadily as concurrency grows
//! (the context buffer grows with the message rate, forcing a more
//! precise match).
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig8a [--seed N] [--seeds K]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    concurrent: usize,
    matched: f64,
    theta: f64,
    recall: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let mut rows = Vec::new();
    for &c in &[100usize, 200, 300, 400] {
        let mut matched = 0.0;
        let mut theta = 0.0;
        let mut recall = 0.0;
        for s in 0..seeds {
            let res = run(
                &wb,
                PrecisionParams {
                    concurrent: c,
                    faults: 16,
                    identical_faults: true,
                    seed: seed ^ (s + 1),
                    ..Default::default()
                },
            );
            matched += res.mean_matched;
            theta += res.mean_theta;
            recall += res.recall;
        }
        let k = seeds as f64;
        rows.push(Row { concurrent: c, matched: matched / k, theta: theta / k, recall: recall / k });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.concurrent.to_string(),
                format!("{:.1}", r.matched),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.2}", r.recall),
            ]
        })
        .collect();
    results::print_table(
        "Fig 8a: ops matched, 16 identical concurrent faulty operations",
        &["tests", "avg matched", "theta", "recall"],
        &table,
    );
    results::write_json("fig8a", &rows);
}

//! Fig 7a — GRETEL's precision under parallel workloads.
//!
//! Varies concurrency over 100–400 tests (category-proportional sampling)
//! and injected operational faults over {1, 4, 8, 16}; reports the mean
//! precision θ per scenario. Paper: >98 % everywhere, rising slightly with
//! load.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig7a [--seed N]
//!         [--seeds K] [--quick]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    concurrent: usize,
    faults: usize,
    theta: f64,
    matched: f64,
    recall: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let concurrency: &[usize] =
        if flag("--quick") { &[100, 200] } else { &[100, 200, 300, 400] };
    let fault_counts: &[usize] = if flag("--quick") { &[1, 8] } else { &[1, 4, 8, 16] };

    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for &c in concurrency {
        let mut row = vec![c.to_string()];
        for &f in fault_counts {
            let mut theta = 0.0;
            let mut matched = 0.0;
            let mut recall = 0.0;
            for s in 0..seeds {
                let res = run(
                    &wb,
                    PrecisionParams {
                        concurrent: c,
                        faults: f,
                        seed: seed ^ (s + 1),
                        ..Default::default()
                    },
                );
                theta += res.mean_theta;
                matched += res.mean_matched;
                recall += res.recall;
            }
            let k = seeds as f64;
            cells.push(Cell {
                concurrent: c,
                faults: f,
                theta: theta / k,
                matched: matched / k,
                recall: recall / k,
            });
            row.push(format!("{:.2}%", 100.0 * theta / k));
        }
        rows.push(row);
    }

    let mut header = vec!["tests".to_string()];
    header.extend(fault_counts.iter().map(|f| format!("{f} fault(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    results::print_table("Fig 7a: precision (theta) vs concurrency x faults", &header_refs, &rows);

    let min_theta = cells.iter().map(|c| c.theta).fold(1.0f64, f64::min);
    println!("\nminimum theta = {:.4} (paper: >98% in all scenarios)", min_theta);
    let mean_recall = cells.iter().map(|c| c.recall).sum::<f64>() / cells.len() as f64;
    println!("mean recall (truth op in matched set) = {mean_recall:.2} — not reported by the paper");
    results::write_json("fig7a", &cells);
}

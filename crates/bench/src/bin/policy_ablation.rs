//! Matching-policy ablation: quality, not just cost.
//!
//! DESIGN.md §7 documents why the default matching policy deviates from a
//! literal reading of §5.3.1. This experiment produces the data behind
//! that choice: precision θ, matched-set size and recall for each policy
//! at 8 faults across 100/400 concurrent tests:
//!
//! * `default`         — earliest-complete, bounded literals, grace;
//! * `paper-theta-drop`— presence matching, stop at the first θ drop;
//! * `presence-full`   — presence matching over the whole window;
//! * `strict`          — every atom (starred included) required in order;
//! * `no-truncation`   — fingerprints not truncated at the fault.
//!
//! Usage: `cargo run --release -p gretel-bench --bin policy_ablation [--seed N]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::GretelConfig;
use serde::Serialize;

/// A named configuration patch.
type Policy = (&'static str, fn(&mut GretelConfig));

#[derive(Serialize)]
struct Row {
    policy: String,
    concurrent: usize,
    theta: f64,
    matched: f64,
    recall: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let policies: Vec<Policy> = vec![
        ("default", |_| {}),
        ("paper-theta-drop", |c| {
            c.scored_slack = None;
        }),
        ("presence-full", |c| {
            c.scored_slack = None;
            c.grow_full = true;
        }),
        ("strict", |c| {
            c.scored_slack = None;
            c.relaxed = false;
            c.grow_full = true;
        }),
        ("no-truncation", |c| {
            c.truncate = false;
        }),
    ];

    let mut rows = Vec::new();
    for (name, patch) in policies {
        for &c in &[100usize, 400] {
            let mut theta = 0.0;
            let mut matched = 0.0;
            let mut recall = 0.0;
            for s in 0..seeds {
                let res = run(
                    &wb,
                    PrecisionParams {
                        concurrent: c,
                        faults: 8,
                        seed: seed ^ (s + 1),
                        config_override: Some(patch),
                        ..Default::default()
                    },
                );
                theta += res.mean_theta;
                matched += res.mean_matched;
                recall += res.recall;
            }
            let k = seeds as f64;
            rows.push(Row {
                policy: name.to_string(),
                concurrent: c,
                theta: theta / k,
                matched: matched / k,
                recall: recall / k,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.concurrent.to_string(),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.1}", r.matched),
                format!("{:.2}", r.recall),
            ]
        })
        .collect();
    results::print_table(
        "Matching-policy ablation (8 faults)",
        &["policy", "tests", "theta", "matched", "recall"],
        &table,
    );
    results::write_json("policy_ablation", &rows);
}

//! Fig 5 — CDF of fingerprint overlap for representative Compute
//! operations against all other categories.
//!
//! The paper selects 70 representative Compute operations and reports that
//! ~90 % of them have <15 % symbol overlap with operations of other
//! categories. Overlap of op A vs category C is measured as the largest
//! Jaccard-style fraction |sym(A) ∩ sym(B)| / |sym(A)| over ops B ∈ C.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig5 [--seed N]`

use gretel_bench::{arg, results, Workbench};
use gretel_model::{ApiId, Category};
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct CdfPoint {
    overlap_pct: f64,
    cdf: f64,
}

fn symbol_set(wb: &Workbench, op: gretel_model::OpSpecId) -> HashSet<ApiId> {
    wb.library.get(op).atoms.iter().map(|a| a.api).collect()
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let n_rep: usize = arg("--ops", 70);
    let wb = Workbench::new(seed);

    // Representative Compute ops: spread evenly across the category.
    let compute: Vec<_> = wb.suite.by_category(Category::Compute).collect();
    let stride = (compute.len() / n_rep).max(1);
    let reps: Vec<_> = compute.iter().step_by(stride).take(n_rep).collect();

    // Pre-compute symbol sets of all non-Compute ops.
    let others: Vec<HashSet<ApiId>> = wb
        .suite
        .specs()
        .iter()
        .filter(|s| s.category != Category::Compute)
        .map(|s| symbol_set(&wb, s.id))
        .collect();

    let mut overlaps: Vec<f64> = reps
        .iter()
        .map(|spec| {
            let set = symbol_set(&wb, spec.id);
            let max_inter = others
                .iter()
                .map(|o| set.intersection(o).count())
                .max()
                .unwrap_or(0);
            100.0 * max_inter as f64 / set.len().max(1) as f64
        })
        .collect();
    overlaps.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));

    let cdf: Vec<CdfPoint> = overlaps
        .iter()
        .enumerate()
        .map(|(i, &o)| CdfPoint { overlap_pct: o, cdf: (i + 1) as f64 / overlaps.len() as f64 })
        .collect();

    let rows: Vec<Vec<String>> = cdf
        .iter()
        .step_by((cdf.len() / 14).max(1))
        .map(|p| vec![format!("{:.1}%", p.overlap_pct), format!("{:.2}", p.cdf)])
        .collect();
    results::print_table("Fig 5: CDF of Compute fingerprint overlap vs other categories", &["overlap", "CDF"], &rows);

    let below15 = overlaps.iter().filter(|&&o| o < 15.0).count() as f64 / overlaps.len() as f64;
    println!(
        "\n{:.0}% of representative Compute operations have <15% overlap (paper: ~90%)",
        below15 * 100.0
    );
    results::write_json("fig5", &cdf);
}

//! §7.4.2 — System overhead of the analyzer and agents.
//!
//! Runs 100 concurrent tests through the threaded agents → receiver →
//! analyzer pipeline (paper Fig 3) and reports wall-clock processing time,
//! message/byte throughput, and the process's peak resident memory. The
//! paper reports ~4.26 % analyzer CPU and ~123 MB RSS on its testbed.
//!
//! Usage: `cargo run --release -p gretel-bench --bin overhead [--seed N] [--ops N]`

use gretel_bench::precision::PrecisionParams;
use gretel_bench::{arg, results, Workbench};
use gretel_core::{run_service, Analyzer, GretelConfig};
use gretel_model::{NodeId, OperationSpec};
use gretel_sim::{secs, FaultPlan, RunConfig, Runner};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Overhead {
    ops: usize,
    messages: u64,
    frames: u64,
    wire_bytes: u64,
    wall_ms: f64,
    events_per_sec: f64,
    mbps: f64,
    peak_rss_mb: Option<f64>,
    diagnoses: usize,
    snapshots: u64,
}

fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let ops: usize = arg("--ops", 100);
    let wb = Workbench::new(seed);

    // 100 concurrent healthy tests (the paper's overhead run is
    // fault-free with watchers disabled).
    let params = PrecisionParams { concurrent: ops, faults: 0, ..Default::default() };
    let specs: Vec<&OperationSpec> =
        wb.suite.specs().iter().take(params.concurrent).collect();
    let plan = FaultPlan::none();
    let exec = Runner::new(
        wb.catalog.clone(),
        &wb.deployment,
        &plan,
        RunConfig { seed, start_window: secs(10), ..RunConfig::default() },
    )
    .run(&specs);

    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
    let mut analyzer = Analyzer::new(&wb.library, cfg);
    let nodes: Vec<NodeId> = wb.deployment.nodes().iter().map(|n| n.id).collect();

    let t0 = Instant::now();
    let (diagnoses, svc, stats) = run_service(&mut analyzer, &nodes, &exec.messages, 1024);
    let wall = t0.elapsed();

    let out = Overhead {
        ops,
        messages: stats.messages,
        frames: svc.frames,
        wire_bytes: svc.bytes,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: stats.messages as f64 / wall.as_secs_f64(),
        mbps: svc.bytes as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        peak_rss_mb: peak_rss_mb(),
        diagnoses: diagnoses.len(),
        snapshots: stats.snapshots,
    };

    results::print_table(
        "7.4.2 system overhead (threaded agents -> receiver -> analyzer)",
        &["metric", "value"],
        &[
            vec!["concurrent tests".into(), out.ops.to_string()],
            vec!["messages processed".into(), out.messages.to_string()],
            vec!["frames shipped".into(), out.frames.to_string()],
            vec!["wire MB".into(), format!("{:.1}", out.wire_bytes as f64 / 1e6)],
            vec!["wall time ms".into(), format!("{:.1}", out.wall_ms)],
            vec!["events/s".into(), format!("{:.0}", out.events_per_sec)],
            vec!["Mbps".into(), format!("{:.1}", out.mbps)],
            vec![
                "peak RSS MB".into(),
                out.peak_rss_mb.map(|v| format!("{v:.0}")).unwrap_or("n/a".into()),
            ],
            vec!["diagnoses".into(), out.diagnoses.to_string()],
            vec!["snapshots".into(), out.snapshots.to_string()],
        ],
    );
    println!("\npaper: analyzer ~4.26% CPU, ~123 MB; Bro agents <12.38% CPU, ~1 GB");
    results::write_json("overhead", &out);
}

//! Capture-loss robustness (paper Limitation 1, quantified).
//!
//! The paper notes GRETEL's accuracy "is contingent upon the message
//! context available in the sliding window" — a partial snapshot may miss.
//! This experiment quantifies graceful degradation: the monitoring path
//! drops a fraction of captured messages (errors kept, so the fault is
//! still seen) and we measure precision θ, matched-set size and recall as
//! loss rises from 0 to 50 %.
//!
//! Usage: `cargo run --release -p gretel-bench --bin loss_ablation [--seed N]`

use gretel_bench::workload::{build_fault_plan, diagnosis_for, faulty_pool};
use gretel_bench::{arg, results, Workbench};
use gretel_core::{analyze_stream, Analyzer, GretelConfig};
use gretel_model::OperationSpec;
use gretel_netcap::{degrade, Degradation};
use gretel_sim::{secs, RunConfig, Runner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    drop_prob: f64,
    theta: f64,
    matched: f64,
    recall: f64,
    diagnosed: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let concurrent: usize = arg("--concurrent", 100);
    let faults: usize = arg("--faults", 8);
    let wb = Workbench::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10C0);

    // One workload, analyzed under increasing capture loss.
    let pool = faulty_pool(&wb);
    let mut specs: Vec<&OperationSpec> = Vec::new();
    for _ in 0..faults + concurrent {
        specs.push(pool[rng.gen_range(0..pool.len())]);
    }
    let (plan, truth) = build_fault_plan(&wb, &specs[..faults], &mut rng, None);
    let exec = Runner::new(
        wb.catalog.clone(),
        &wb.deployment,
        &plan,
        RunConfig { seed, start_window: secs(20), ..RunConfig::default() },
    )
    .run(&specs);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);

    let mut rows = Vec::new();
    for &drop_prob in &[0.0f64, 0.05, 0.1, 0.2, 0.35, 0.5] {
        let observed = degrade(
            &exec.messages,
            Degradation { drop_prob, seed: seed ^ 0xD207 },
            true,
        );
        let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate * (1.0 - drop_prob), 2.0);
        let mut analyzer = Analyzer::new(&wb.library, cfg);
        let diagnoses = analyze_stream(&mut analyzer, observed.iter());

        let mut hit = 0usize;
        let mut diagnosed = 0usize;
        let mut n_sum = 0usize;
        let mut theta_sum = 0.0;
        for fault in &truth {
            if let Some(d) = diagnosis_for(&diagnoses, &observed, fault) {
                diagnosed += 1;
                n_sum += d.matched.len();
                theta_sum += gretel_core::theta(d.matched.len(), wb.library.len());
                if d.matched.contains(&fault.spec) {
                    hit += 1;
                }
            }
        }
        let k = diagnosed.max(1) as f64;
        rows.push(Row {
            drop_prob,
            theta: theta_sum / k,
            matched: n_sum as f64 / k,
            recall: hit as f64 / truth.len() as f64,
            diagnosed: diagnosed as f64 / truth.len() as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", 100.0 * r.drop_prob),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.1}", r.matched),
                format!("{:.2}", r.recall),
                format!("{:.2}", r.diagnosed),
            ]
        })
        .collect();
    results::print_table(
        "Capture-loss robustness (errors kept; context dropped)",
        &["loss", "theta", "matched", "recall", "diagnosed"],
        &table,
    );
    results::write_json("loss_ablation", &rows);
}

//! Fig 7c — Effect of pruning RPCs from fingerprints.
//!
//! 100 concurrent tests with 8 injected faults, matched once with the
//! full fingerprints and once with RPC symbols pruned (the §6 matching
//! optimization). Paper: RPCs improve precision only marginally, so the
//! optimization is nearly free.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig7c [--seed N] [--seeds K]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    matched: f64,
    theta: f64,
    recall: f64,
    with_api_error: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let mut rows = Vec::new();
    for (name, prune) in [("without RPCs (pruned)", true), ("with RPCs", false)] {
        let mut matched = 0.0;
        let mut theta = 0.0;
        let mut recall = 0.0;
        let mut cands = 0.0;
        for s in 0..seeds {
            let res = run(
                &wb,
                PrecisionParams {
                    concurrent: 100,
                    faults: 8,
                    seed: seed ^ (s + 1),
                    prune_rpcs: Some(prune),
                    ..Default::default()
                },
            );
            matched += res.mean_matched;
            theta += res.mean_theta;
            recall += res.recall;
            cands += res.mean_candidates;
        }
        let k = seeds as f64;
        rows.push(Row {
            variant: name.to_string(),
            matched: matched / k,
            theta: theta / k,
            recall: recall / k,
            with_api_error: cands / k,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.1}", r.matched),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.2}", r.recall),
                format!("{:.1}", r.with_api_error),
            ]
        })
        .collect();
    results::print_table(
        "Fig 7c: fingerprints with vs without RPCs (100 tests, 8 faults)",
        &["variant", "matched", "theta", "recall", "with API error"],
        &table,
    );
    println!(
        "\ndelta(matched) = {:.1} ops — paper: RPCs only marginally improve precision",
        (rows[0].matched - rows[1].matched).abs()
    );
    results::write_json("fig7c", &rows);
}

//! §7.2 case studies — end-to-end root cause analysis.
//!
//! Runs the four §7.2 scenarios (plus §3.1.1), each through the full
//! pipeline: simulate → capture → analyze → diagnose, and checks the root
//! cause against ground truth:
//!
//! * 7.2.1 failed image upload → low free disk on the Glance server;
//! * 7.2.2 Neutron API latency → CPU surge on the Neutron server;
//! * 7.2.3 linuxbridge agent failure → crashed agent on the compute hosts;
//! * 7.2.4 NTP failure → stopped NTP agent on the Cinder host;
//! * 3.1.1 no compute available → nova-compute down everywhere.
//!
//! Usage: `cargo run --release -p gretel-bench --bin case_studies [--seed N]`

use gretel_bench::{arg, results, Workbench};
use gretel_core::{analyze_stream, Analyzer, CauseKind, GretelConfig, RcaContext};
use gretel_sim::scenario::{
    failed_image_upload, linuxbridge_crash, mysql_outage, neutron_api_latency,
    no_compute_available, ntp_failure, rabbitmq_outage, Scenario,
};
use gretel_sim::ExpectedCause;
use gretel_telemetry::TelemetryStore;
use serde::Serialize;

#[derive(Serialize)]
struct CaseResult {
    name: String,
    diagnoses: usize,
    root_cause_found: bool,
    root_causes: Vec<String>,
    expected: String,
}

fn run_case(wb: &Workbench, sc: &Scenario) -> CaseResult {
    let exec = sc.run(wb.catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
    let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
    // RCA resolves matched operations against the specs the library was
    // trained on (the suite); the scenario's canonical specs share ids
    // with the first suite entries only by coincidence, so suite specs are
    // the correct universe here.
    let mut analyzer = Analyzer::new(&wb.library, cfg).with_rca(RcaContext {
        deployment: &sc.deployment,
        telemetry: &telemetry,
        specs: wb.suite.specs(),
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    let mut causes: Vec<String> = Vec::new();
    let mut found = false;
    for d in &diagnoses {
        for rc in &d.root_causes {
            causes.push(format!("{}: {}", rc.node, rc.why));
            found |= match &sc.expected_cause {
                ExpectedCause::Resource(node, kind) => {
                    rc.node == *node && matches!(&rc.cause, CauseKind::Resource(k) if k == kind)
                }
                ExpectedCause::Dependency(node, dep) => {
                    rc.node == *node && matches!(&rc.cause, CauseKind::Dependency(d) if d == dep)
                }
            };
        }
    }
    causes.sort();
    causes.dedup();

    let expected = match &sc.expected_cause {
        ExpectedCause::Resource(node, kind) => format!("{node}: anomalous {kind}"),
        ExpectedCause::Dependency(node, dep) => format!("{node}: {dep} down"),
    };
    println!("\n--- {} ---", sc.name);
    println!("{}", sc.description);
    for d in diagnoses.iter().take(2) {
        print!("{}", d.render(wb.suite.specs()));
    }
    println!("expected: {expected} -> {}", if found { "FOUND" } else { "NOT FOUND" });

    CaseResult {
        name: sc.name.to_string(),
        diagnoses: diagnoses.len(),
        root_cause_found: found,
        root_causes: causes,
        expected,
    }
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let wb = Workbench::new(seed);

    let scenarios = [failed_image_upload(&wb.catalog, seed, 6),
        neutron_api_latency(&wb.catalog, seed, 40),
        linuxbridge_crash(&wb.catalog, seed, 6),
        ntp_failure(&wb.catalog, seed, 6),
        no_compute_available(&wb.catalog, seed, 6),
        mysql_outage(&wb.catalog, seed, 6),
        rabbitmq_outage(&wb.catalog, seed, 6)];

    let cases: Vec<CaseResult> = scenarios.iter().map(|sc| run_case(&wb, sc)).collect();

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.diagnoses.to_string(),
                if c.root_cause_found { "FOUND" } else { "MISSED" }.to_string(),
                c.expected.clone(),
            ]
        })
        .collect();
    results::print_table(
        "7.2 case studies: root cause analysis",
        &["scenario", "diagnoses", "root cause", "expected"],
        &rows,
    );
    let found = cases.iter().filter(|c| c.root_cause_found).count();
    println!("\n{found}/{} scenarios reached the paper's root cause", cases.len());
    results::write_json("case_studies", &cases);
}

//! Fig 7b — Operations matched with and without the snapshot.
//!
//! At 8 injected faults, varies concurrency over 100–400 tests and
//! compares the operations matched using the context-buffer snapshot
//! against matching on the REST error API alone ("With API error").
//! Paper: the snapshot cuts the matched set dramatically, improving
//! slightly as parallelism (and thus the context buffer) grows.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig7b [--seed N] [--seeds K]`

use gretel_bench::precision::{run, PrecisionParams};
use gretel_bench::{arg, flag, results, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    concurrent: usize,
    with_snapshot: f64,
    with_api_error: f64,
    theta: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let seeds: u64 = arg("--seeds", if flag("--quick") { 1 } else { 3 });
    let wb = Workbench::new(seed);

    let mut rows = Vec::new();
    for &c in &[100usize, 200, 300, 400] {
        let mut matched = 0.0;
        let mut candidates = 0.0;
        let mut theta = 0.0;
        for s in 0..seeds {
            let res = run(
                &wb,
                PrecisionParams {
                    concurrent: c,
                    faults: 8,
                    seed: seed ^ (s + 1),
                    ..Default::default()
                },
            );
            matched += res.mean_matched;
            candidates += res.mean_candidates;
            theta += res.mean_theta;
        }
        let k = seeds as f64;
        rows.push(Row {
            concurrent: c,
            with_snapshot: matched / k,
            with_api_error: candidates / k,
            theta: theta / k,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.concurrent.to_string(),
                format!("{:.1}", r.with_snapshot),
                format!("{:.1}", r.with_api_error),
                format!("{:.2}%", 100.0 * r.theta),
            ]
        })
        .collect();
    results::print_table(
        "Fig 7b: operations matched (8 faults)",
        &["tests", "with snapshot", "with API error", "theta"],
        &table,
    );
    println!(
        "\nsnapshot matching reduces the candidate set by {:.0}x on average",
        rows.iter().map(|r| r.with_api_error / r.with_snapshot.max(1.0)).sum::<f64>()
            / rows.len() as f64
    );
    results::write_json("fig7b", &rows);
}

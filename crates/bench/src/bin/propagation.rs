//! Failure-propagation cascades — root-vs-symptom attribution.
//!
//! Runs the cascade suite (Cinder→Nova crash cascade, NTP→multi-service
//! skew, Nova⇌Cinder partition split) through the full pipeline plus the
//! state-graph post-pass ([`gretel_core::graph::attribute_cascades`]) and
//! scores the root-vs-symptom labels against the scheduler's ground
//! truth. Three invariants are enforced alongside the scores:
//!
//! * **accuracy** — precision and recall of (service, root|symptom)
//!   labels must both be ≥ 0.9 across the suite;
//! * **no-regression oracle** — every §7.2 operational scenario re-run
//!   through the graph path must serialize **byte-identically** to the
//!   flat RCA path (the post-pass is invisible without cascade
//!   structure);
//! * **determinism** — a second identical run must reproduce the labeled
//!   diagnoses byte-for-byte.
//!
//! Usage: `cargo run --release -p gretel-bench --bin propagation [--seed N] [--smoke]`

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::graph::{attribute_cascades, Attribution, CascadeParams};
use gretel_core::{
    analyze_stream, Analyzer, Diagnosis, FingerprintLibrary, GretelConfig, RcaContext,
};
use gretel_model::Service;
use gretel_sim::cascade::{cascade_suite, CascadeScenario};
use gretel_sim::scenario::operational_suite;
use gretel_telemetry::TelemetryStore;
use serde::Serialize;

#[derive(Serialize)]
struct CascadeResult {
    name: String,
    diagnoses: usize,
    labeled: usize,
    truth_roots: Vec<String>,
    truth_symptoms: Vec<String>,
    predicted_roots: Vec<String>,
    predicted_symptoms: Vec<String>,
    true_positives: usize,
    false_positives: usize,
    false_negatives: usize,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    precision: f64,
    recall: f64,
    cascades: Vec<CascadeResult>,
    flat_path_identical: Vec<String>,
    replay_deterministic: bool,
}

/// Full pipeline for one cascade scenario: characterize on the
/// scenario's own operation suite (its cascades exercise RPC-only agent
/// ops that the tempest motif set does not cover), simulate, analyze
/// with flat RCA, then run the graph post-pass. Returns the labeled
/// diagnoses.
fn diagnose(wb: &Workbench, sc: &CascadeScenario) -> Vec<Diagnosis> {
    let (library, _) =
        FingerprintLibrary::characterize(wb.catalog.clone(), &sc.specs, &sc.deployment, 2, 7);
    let exec = sc.run(wb.catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
    let cfg = GretelConfig::auto(library.fp_max(), p_rate, 2.0);
    let mut analyzer = Analyzer::new(&library, cfg).with_rca(RcaContext {
        deployment: &sc.deployment,
        telemetry: &telemetry,
        specs: &sc.specs,
    });
    let mut diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    attribute_cascades(
        &mut diagnoses,
        analyzer.traffic_graph(),
        &wb.catalog,
        CascadeParams::default(),
    );
    diagnoses
}

/// The per-service labels the post-pass actually assigned.
fn predicted_labels(diagnoses: &[Diagnosis]) -> (Vec<Service>, Vec<(Service, Service)>) {
    let mut roots: Vec<Service> = Vec::new();
    let mut symptoms: Vec<(Service, Service)> = Vec::new();
    for d in diagnoses {
        match &d.attribution {
            Some(Attribution::Root { service, .. }) => {
                if !roots.contains(service) {
                    roots.push(*service);
                }
            }
            Some(Attribution::Symptom { service, of, .. }) => {
                if !symptoms.contains(&(*service, *of)) {
                    symptoms.push((*service, *of));
                }
            }
            None => {}
        }
    }
    roots.sort_by_key(|s| s.index());
    symptoms.sort_by_key(|&(s, _)| s.index());
    (roots, symptoms)
}

fn run_cascade(wb: &Workbench, sc: &CascadeScenario) -> CascadeResult {
    let diagnoses = diagnose(wb, sc);
    let (roots, symptoms) = predicted_labels(&diagnoses);
    let truth_roots = sc.truth.root_services();
    let truth_symptoms = sc.truth.symptom_services();

    // A root prediction is correct iff the service really is a cascade
    // root; a symptom prediction additionally has to blame a true root.
    let mut tp = 0;
    let mut fp = 0;
    for r in &roots {
        if truth_roots.contains(r) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    for (s, of) in &symptoms {
        if truth_symptoms.contains(s) && truth_roots.contains(of) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let fn_ = truth_roots.iter().filter(|r| !roots.contains(r)).count()
        + truth_symptoms
            .iter()
            .filter(|s| !symptoms.iter().any(|(ps, _)| ps == *s))
            .count();

    println!("\n--- {} ---", sc.name);
    println!("{}", sc.description);
    for d in diagnoses.iter().filter(|d| d.attribution.is_some()).take(2) {
        print!("{}", d.render(&sc.specs));
    }
    println!(
        "truth: roots {:?} symptoms {:?} | predicted: roots {:?} symptoms {:?}",
        truth_roots, truth_symptoms, roots, symptoms
    );

    CascadeResult {
        name: sc.name.to_string(),
        diagnoses: diagnoses.len(),
        labeled: diagnoses.iter().filter(|d| d.attribution.is_some()).count(),
        truth_roots: truth_roots.iter().map(|s| s.name().to_string()).collect(),
        truth_symptoms: truth_symptoms.iter().map(|s| s.name().to_string()).collect(),
        predicted_roots: roots.iter().map(|s| s.name().to_string()).collect(),
        predicted_symptoms: symptoms
            .iter()
            .map(|(s, of)| format!("{} of {}", s.name(), of.name()))
            .collect(),
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
    }
}

/// Byte-identity oracle: a §7.2 scenario run through the graph path must
/// serialize exactly as the flat path does.
fn assert_flat_identity(wb: &Workbench, sc: &gretel_sim::Scenario) -> String {
    let exec = sc.run(wb.catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6).max(1e-6);
    let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
    let mut analyzer = Analyzer::new(&wb.library, cfg).with_rca(RcaContext {
        deployment: &sc.deployment,
        telemetry: &telemetry,
        specs: wb.suite.specs(),
    });
    let mut diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    let flat = serde_json::to_string(&diagnoses).expect("serialize");
    attribute_cascades(
        &mut diagnoses,
        analyzer.traffic_graph(),
        &wb.catalog,
        CascadeParams::default(),
    );
    let graphed = serde_json::to_string(&diagnoses).expect("serialize");
    assert_eq!(flat, graphed, "graph post-pass changed the report for {}", sc.name);
    sc.name.to_string()
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let smoke = flag("--smoke");
    let wb = Workbench::new(seed);

    let cascades = cascade_suite(&wb.catalog, seed);
    let cascades = if smoke { &cascades[..1] } else { &cascades[..] };

    let cases: Vec<CascadeResult> = cascades.iter().map(|sc| run_cascade(&wb, sc)).collect();

    let tp: usize = cases.iter().map(|c| c.true_positives).sum();
    let fp: usize = cases.iter().map(|c| c.false_positives).sum();
    let fn_: usize = cases.iter().map(|c| c.false_negatives).sum();
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };

    // No-regression oracle over the §7.2 operational suite.
    let operational = operational_suite(&wb.catalog, seed, if smoke { 2 } else { 6 });
    let operational = if smoke { &operational[..1] } else { &operational[..] };
    let flat_path_identical: Vec<String> =
        operational.iter().map(|sc| assert_flat_identity(&wb, sc)).collect();

    // Replay determinism: the first cascade, end to end, twice.
    let a = serde_json::to_string(&diagnose(&wb, &cascades[0])).expect("serialize");
    let b = serde_json::to_string(&diagnose(&wb, &cascades[0])).expect("serialize");
    let replay_deterministic = a == b;

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.diagnoses.to_string(),
                c.predicted_roots.join(", "),
                c.predicted_symptoms.join(", "),
                format!("{}/{}/{}", c.true_positives, c.false_positives, c.false_negatives),
            ]
        })
        .collect();
    results::print_table(
        "failure propagation: root-vs-symptom attribution",
        &["scenario", "diagnoses", "roots", "symptoms", "tp/fp/fn"],
        &rows,
    );
    println!(
        "\nprecision {precision:.3}  recall {recall:.3}  (flat-path identity: {} scenario(s), replay {})",
        flat_path_identical.len(),
        if replay_deterministic { "deterministic" } else { "DIVERGED" }
    );

    assert!(replay_deterministic, "cascade attribution must be replay-deterministic");
    assert!(precision >= 0.9, "root-vs-symptom precision {precision:.3} below 0.9");
    assert!(recall >= 0.9, "root-vs-symptom recall {recall:.3} below 0.9");
    if !smoke {
        let report = Report {
            seed,
            precision,
            recall,
            cascades: cases,
            flat_path_identical,
            replay_deterministic,
        };
        results::write_json("propagation", &report);
    }
}

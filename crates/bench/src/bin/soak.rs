//! Tenant-sharded sustained-load soak.
//!
//! Drives multi-tenant interleaved traffic (32 Keystone projects,
//! correlation ids on, faulted operations aborting — the deployment mode
//! under which sharding preserves the diagnosis stream) through the
//! tenant-sharded pipeline at 1/2/4/8 shards and gates on three
//! properties at once:
//!
//! * **determinism** — the merged diagnosis stream of every shard count
//!   is byte-identical (checkpoint-codec encoding) to the inline
//!   unsharded analyzer's, and the merged traffic graphs are equal;
//! * **throughput** — aggregate messages/second per shard count. The
//!   multi-core target is ≥1M msgs/s at the best shard count; the gate is
//!   only armed on hosts with ≥4 hardware threads — on a 1-CPU container
//!   shards time-slice one core, so the rows measure sharding overhead,
//!   not scaling, and the JSON says so;
//! * **bounded memory** — peak RSS (`VmHWM`) after the whole sweep stays
//!   under a fixed ceiling, so per-shard resequencers/windows/registries
//!   don't multiply footprint past what one pipeline uses.
//!
//! A durable arm repeats the 4-shard run with one `FileStore` journal per
//! shard under `--store-dir` (or a temp directory) and holds it to the
//! same byte-identity oracle.
//!
//! Usage: `cargo run --release -p gretel-bench --bin soak
//! [--seed N] [--messages N] [--smoke] [--store-dir PATH]`
//!
//! `--smoke` shrinks the workload, keeps every gate except the
//! multi-core throughput target, and writes no results file (so a CI
//! smoke pass never clobbers `results/soak.json` with toy numbers).

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{
    analyze_stream, canonical_order, encode_diagnoses, run_sharded, run_sharded_durable, Analyzer,
    DurableConfig, GretelConfig, ShardedConfig,
};
use gretel_model::{Message, NodeId};
use gretel_sim::{StreamConfig, SyntheticStream};
use gretel_store::{FileStore, FileStoreConfig, Store};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Peak-RSS ceiling for the whole sweep. The workload itself is ~100 MB
/// of messages; the gate exists to catch a per-shard structure that
/// accidentally scales footprint with shard count.
const PEAK_RSS_CEILING_MB: f64 = 4096.0;

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    messages: usize,
    diagnoses: usize,
    /// Smallest and largest per-shard routed message counts — how evenly
    /// the project hash spreads this workload.
    min_shard_messages: usize,
    max_shard_messages: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
    /// Byte-identical to the inline unsharded analyzer (always true in a
    /// completed run; the binary asserts before writing).
    identical: bool,
    peak_rss_mb: Option<f64>,
}

#[derive(Serialize)]
struct DurableRow {
    shards: usize,
    diagnoses: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
    identical: bool,
    /// Checkpoints written across all shard journals.
    checkpoints: u64,
}

#[derive(Serialize)]
struct SoakResults {
    seed: u64,
    messages: usize,
    projects: u32,
    /// Hardware parallelism of the measuring host. The ≥1M msgs/s
    /// multi-core throughput target is only armed when this is ≥4: on a
    /// 1-CPU container every shard time-slices the same core, so the
    /// per-shard-count rows measure sharding overhead, not scaling.
    host_threads: usize,
    throughput_gate_armed: bool,
    peak_rss_ceiling_mb: f64,
    /// Widest single-operation span in the generated stream (messages)
    /// and the window size derived from it (α = 4 × span, the 2× margin
    /// over the eviction bound byte-identity needs).
    max_op_span: usize,
    alpha: usize,
    rows: Vec<ShardRow>,
    durable: DurableRow,
}

fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let smoke = flag("--smoke");
    let n_messages: usize = arg("--messages", if smoke { 20_000 } else { 400_000 });
    let store_dir: String = arg("--store-dir", String::new());
    let temp_stores = store_dir.is_empty();
    let store_base: PathBuf = if temp_stores {
        std::env::temp_dir().join(format!("gretel-soak-{}-{seed}", std::process::id()))
    } else {
        PathBuf::from(store_dir)
    };
    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let wb = if smoke { Workbench::small(seed, 2) } else { Workbench::new(seed) };
    let specs: Vec<_> = wb.suite.specs().iter().step_by(13).cloned().collect();
    let pps = 50_000u64;
    let projects = 32u32;
    let stream_cfg = StreamConfig {
        total_messages: n_messages,
        fault_every: 1_000,
        pps,
        concurrent_ops: 64,
        projects,
        correlation_ids: true,
        abort_on_fault: true,
        ..StreamConfig::default()
    };
    let traffic: Vec<Message> =
        SyntheticStream::new(wb.catalog.clone(), &specs, stream_cfg).collect();
    let nodes: Vec<NodeId> = (0..stream_cfg.node_spread).map(NodeId).collect();
    // Window sizing: byte-identity across shard layouts needs every
    // operation's events still in the window when its fault's snapshot
    // freezes (α/2 events after the fault), i.e. α ≥ 2 × the widest
    // operation span — under the *full* load, the binding case. The
    // harness knows the workload, so it measures that span directly and
    // doubles the bound; a deployment gets the same effect from
    // GretelConfig::auto with an operation-duration horizon.
    let mut spans: std::collections::HashMap<u64, (usize, usize)> =
        std::collections::HashMap::new();
    for (i, m) in traffic.iter().enumerate() {
        if let Some(op) = m.truth_op {
            let e = spans.entry(op.0).or_insert((i, i));
            e.1 = i;
        }
    }
    let max_span = spans.values().map(|(a, b)| b - a + 1).max().unwrap_or(1);
    let alpha = (4 * max_span).max(2 * wb.library.fp_max());
    let gcfg = GretelConfig { alpha, ..GretelConfig::default() };
    println!("[window: max op span {max_span} messages -> alpha {alpha}]");

    // The oracle: the plain inline analyzer over the whole stream, in the
    // same canonical order the sharded merge produces.
    let mut inline = Analyzer::new(&wb.library, gcfg);
    let mut expected = analyze_stream(&mut inline, traffic.iter());
    canonical_order(&mut expected);
    let expected_bytes = encode_diagnoses(&expected);
    let expected_graph = inline.traffic_graph().clone();
    assert!(!expected.is_empty(), "soak workload must produce diagnoses");

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cfg = ShardedConfig { shards, metrics: true, ..ShardedConfig::default() };
        let start = Instant::now();
        let out =
            run_sharded(&wb.library, gcfg, &nodes, &traffic, &cfg).expect("sharded soak run");
        let wall = start.elapsed();
        let identical = encode_diagnoses(&out.diagnoses) == expected_bytes;
        assert!(
            identical,
            "{shards} shard(s): merged diagnoses must be byte-identical to the unsharded run"
        );
        assert_eq!(out.graph, expected_graph, "{shards} shard(s): merged traffic graph");
        let routed: usize = out.shards.iter().map(|s| s.messages).sum();
        assert_eq!(routed, traffic.len(), "every message routed to exactly one shard");
        rows.push(ShardRow {
            shards,
            messages: traffic.len(),
            diagnoses: out.diagnoses.len(),
            min_shard_messages: out.shards.iter().map(|s| s.messages).min().unwrap_or(0),
            max_shard_messages: out.shards.iter().map(|s| s.messages).max().unwrap_or(0),
            wall_ms: wall.as_secs_f64() * 1e3,
            msgs_per_sec: traffic.len() as f64 / wall.as_secs_f64(),
            identical,
            peak_rss_mb: peak_rss_mb(),
        });
    }
    // Multi-tenant traffic must actually spread: at 8 shards no single
    // shard may own the whole stream.
    let spread = rows.last().expect("8-shard row exists");
    assert!(
        spread.max_shard_messages < traffic.len(),
        "8 shards: traffic must not all land on one shard"
    );

    // Durable arm: the 4-shard run with one FileStore journal per shard,
    // held to the same oracle.
    let durable = {
        let shards = 4usize;
        let mut stores: Vec<FileStore> = (0..shards)
            .map(|i| {
                let dir = store_base.join(format!("shard-{i}"));
                FileStore::open(&dir, FileStoreConfig::default()).expect("open shard journal")
            })
            .collect();
        let mut store_refs: Vec<&mut (dyn Store + Send)> =
            stores.iter_mut().map(|s| s as &mut (dyn Store + Send)).collect();
        let cfg = ShardedConfig { shards, ..ShardedConfig::default() };
        let start = Instant::now();
        let out = run_sharded_durable(
            &wb.library,
            gcfg,
            &nodes,
            &traffic,
            &cfg,
            &DurableConfig::default(),
            &mut store_refs,
        )
        .expect("durable sharded soak run");
        let wall = start.elapsed();
        let identical = encode_diagnoses(&out.diagnoses) == expected_bytes;
        assert!(identical, "durable shards must reproduce the unsharded diagnosis stream");
        DurableRow {
            shards,
            diagnoses: out.diagnoses.len(),
            wall_ms: wall.as_secs_f64() * 1e3,
            msgs_per_sec: traffic.len() as f64 / wall.as_secs_f64(),
            identical,
            checkpoints: out
                .shards
                .iter()
                .filter_map(|s| s.recovery)
                .map(|r| r.checkpoints_written)
                .sum(),
        }
    };
    if temp_stores {
        let _ = std::fs::remove_dir_all(&store_base);
    }

    // Bounded memory: the whole sweep — 15 pipelines, 8 of them live at
    // once — stays under the ceiling.
    if let Some(rss) = peak_rss_mb() {
        assert!(
            rss < PEAK_RSS_CEILING_MB,
            "peak RSS {rss:.0} MB exceeds the {PEAK_RSS_CEILING_MB:.0} MB soak ceiling"
        );
    }

    // The multi-core throughput target, honestly caveated: armed only
    // where shards can actually run in parallel, and never in smoke mode
    // (debug builds, toy workloads).
    let throughput_gate_armed = !smoke && host_threads >= 4;
    if throughput_gate_armed {
        let best = rows.iter().map(|r| r.msgs_per_sec).fold(0.0f64, f64::max);
        assert!(
            best >= 1_000_000.0,
            "multi-core soak target: best shard count must sustain ≥1M msgs/s, got {best:.0}"
        );
    }

    results::print_table(
        &format!("sharded soak (messages={}, projects={projects}, host_threads={host_threads})", traffic.len()),
        &["shards", "diagnoses", "min/shard", "max/shard", "wall_ms", "msgs/s", "identical"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.shards.to_string(),
                    r.diagnoses.to_string(),
                    r.min_shard_messages.to_string(),
                    r.max_shard_messages.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.0}", r.msgs_per_sec),
                    r.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    results::print_table(
        "durable arm (FileStore journal per shard)",
        &["shards", "diagnoses", "checkpoints", "wall_ms", "msgs/s", "identical"],
        &[vec![
            durable.shards.to_string(),
            durable.diagnoses.to_string(),
            durable.checkpoints.to_string(),
            format!("{:.1}", durable.wall_ms),
            format!("{:.0}", durable.msgs_per_sec),
            durable.identical.to_string(),
        ]],
    );

    if smoke {
        println!("[smoke ok: determinism + memory gates passed; results file not written]");
    } else {
        results::write_json(
            "soak",
            &SoakResults {
                seed,
                messages: traffic.len(),
                projects,
                host_threads,
                throughput_gate_armed,
                peak_rss_ceiling_mb: PEAK_RSS_CEILING_MB,
                max_op_span: max_span,
                alpha,
                rows,
                durable,
            },
        );
    }
}

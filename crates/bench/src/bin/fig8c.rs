//! Fig 8c — GRETEL's throughput vs fault frequency.
//!
//! Replays a synthetic 50K-pps-paced stream (the tcpreplay substitute)
//! through the full decode → scan → window → detect pipeline at fault
//! frequencies of 1 per {100, 500, 1000, 1500, 2000} messages, and
//! measures sustained wall-clock throughput in events/s and Mbps over the
//! encoded frames. HANSEL runs the same streams for comparison.
//!
//! Paper: ~7.5 Mbps at 1/100 rising to near line rate (~77 Mbps / 50K
//! events/s) at 1/1K+; HANSEL peaks at 1.6K messages/s.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig8c [--seed N]
//!         [--messages N]`

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{Analyzer, GretelConfig};
use gretel_hansel::{Hansel, HanselConfig};
use gretel_model::Message;
use gretel_netcap::ThroughputMeter;
use gretel_sim::{StreamConfig, SyntheticStream};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    fault_every: usize,
    gretel_mps: f64,
    gretel_mbps: f64,
    gretel_diagnoses: usize,
    gretel_report_latency_s: f64,
    hansel_mps: f64,
    hansel_mbps: f64,
    hansel_report_latency_s: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let total: usize = arg("--messages", if flag("--quick") { 100_000 } else { 500_000 });
    let wb = Workbench::new(seed);

    // Stream over a representative subset of suite specs.
    let specs: Vec<_> = wb.suite.specs().iter().step_by(13).cloned().collect();

    let mut rows = Vec::new();
    for &fault_every in &[100usize, 500, 1000, 1500, 2000] {
        let cfg = StreamConfig {
            total_messages: total,
            fault_every,
            pps: 50_000,
            concurrent_ops: 64,
            ..StreamConfig::default()
        };
        let stream: Vec<Message> =
            SyntheticStream::new(wb.catalog.clone(), &specs, cfg).collect();
        // Wire bytes: what the monitoring network carries.
        let wire_bytes: u64 =
            stream.iter().map(|m| gretel_netcap::encoded_len(m) as u64).sum();

        // GRETEL.
        let gcfg = GretelConfig::auto(wb.library.fp_max(), 50_000.0, 1.0);
        let mut analyzer = Analyzer::new(&wb.library, gcfg);
        let mut meter = ThroughputMeter::new();
        let mut diagnoses = 0usize;
        // Reporting latency: stream time between the fault and the moment
        // its diagnosis is emitted (paper: GRETEL "<2 seconds", HANSEL 30s).
        let mut report_lat_us = 0u64;
        for m in &stream {
            for d in analyzer.process(m) {
                report_lat_us += m.ts_us.saturating_sub(d.ts);
                diagnoses += 1;
            }
        }
        diagnoses += analyzer.finish().len();
        meter.record_batch(stream.len() as u64, wire_bytes);
        meter.stop();
        let gretel_report_latency_s = if diagnoses > 0 {
            report_lat_us as f64 / diagnoses as f64 / 1e6
        } else {
            0.0
        };

        // HANSEL on the same stream.
        let mut hansel = Hansel::new(HanselConfig::default());
        let mut hmeter = ThroughputMeter::new();
        let mut hansel_lat_us = 0u64;
        let mut reports = 0usize;
        for m in &stream {
            for r in hansel.process(m) {
                hansel_lat_us += r.latency_us();
                reports += 1;
            }
        }
        for r in hansel.finish() {
            hansel_lat_us += r.latency_us();
            reports += 1;
        }
        hmeter.record_batch(stream.len() as u64, wire_bytes);
        hmeter.stop();
        let hansel_report_latency_s =
            if reports > 0 { hansel_lat_us as f64 / reports as f64 / 1e6 } else { 0.0 };

        rows.push(Row {
            fault_every,
            gretel_mps: meter.mps(),
            gretel_mbps: meter.mbps(),
            gretel_diagnoses: diagnoses,
            gretel_report_latency_s,
            hansel_mps: hmeter.mps(),
            hansel_mbps: hmeter.mbps(),
            hansel_report_latency_s,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("1/{}", r.fault_every),
                format!("{:.0}", r.gretel_mps),
                format!("{:.1}", r.gretel_mbps),
                r.gretel_diagnoses.to_string(),
                format!("{:.2}s", r.gretel_report_latency_s),
                format!("{:.0}", r.hansel_mps),
                format!("{:.0}s", r.hansel_report_latency_s),
            ]
        })
        .collect();
    results::print_table(
        "Fig 8c: sustained throughput vs fault frequency",
        &[
            "faults",
            "GRETEL ev/s",
            "GRETEL Mbps",
            "diagnoses",
            "GRETEL lat",
            "HANSEL ev/s",
            "HANSEL lat",
        ],
        &table,
    );
    let speedup = rows.last().map(|r| r.gretel_mps / r.hansel_mps.max(1.0)).unwrap_or(0.0);
    println!("\nGRETEL / HANSEL throughput at 1/2K faults: {speedup:.1}x");
    println!("paper targets: ~7.5 Mbps @1/100, near line rate (~77 Mbps / 50K ev/s) @1/1K+;");
    println!("GRETEL reports in <2 s, HANSEL buffers 30 s (both reproduced above).");
    println!("NOTE: the paper's HANSEL is Python; this Rust reimplementation removes its");
    println!("constant-factor gap, so compare reporting latency and the fault-frequency trend.");
    results::write_json("fig8c", &rows);
}

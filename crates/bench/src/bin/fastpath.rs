//! Detection fast-path scaling study.
//!
//! Quantifies the three performance pillars of this reproduction:
//!
//! * **online** — end-to-end analyzer throughput (messages/s) on the
//!   Fig 8c synthetic 64-way interleaved stream at two fault frequencies,
//!   with the pattern cache + indexed subsequence matching in the hot
//!   loop;
//! * **transport** — the batched zero-copy ingest path: the same stream
//!   through the full capture→merge→analyze service at `ingest_batch`
//!   1/8/64/256, gating that batching cuts channel operations per merged
//!   message at least 2× while the diagnosis stream stays byte-identical;
//! * **offline** — full-suite (1200 tests) characterization wall time at
//!   1/2/4/8 worker threads (`characterize_parallel` is asserted
//!   byte-identical to the sequential path, so only time changes).
//!
//! Usage: `cargo run --release -p gretel-bench --bin fastpath
//! [--seed N] [--messages N]`

use gretel_bench::{arg, results, Workbench};
use gretel_core::{
    run_service_cfg, Analyzer, FingerprintLibrary, GretelConfig, ServiceConfig,
};
use gretel_model::{Message, NodeId};
use gretel_sim::{StreamConfig, SyntheticStream};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ThroughputRow {
    fault_every: usize,
    messages: usize,
    diagnoses: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
}

#[derive(Serialize)]
struct BatchedRow {
    batch_size: usize,
    messages: u64,
    frames: u64,
    channel_ops: u64,
    ops_per_msg: f64,
    diagnoses: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
}

#[derive(Serialize)]
struct CharacterizeRow {
    threads: usize,
    specs: usize,
    wall_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct FastpathResults {
    seed: u64,
    /// Hardware parallelism of the measuring host
    /// (`std::thread::available_parallelism`). Characterization speedups
    /// are bounded by this — on a 1-CPU container the scaling rows record
    /// dispatch overhead, not parallel speedup — and the batched-transport
    /// rows measure dispatch amortization, which is exactly what a 1-CPU
    /// host resolves.
    host_threads: usize,
    throughput: Vec<ThroughputRow>,
    batched: Vec<BatchedRow>,
    characterize: Vec<CharacterizeRow>,
}

fn stream(wb: &Workbench, fault_every: usize, n: usize) -> Vec<Message> {
    let specs: Vec<_> = wb.suite.specs().iter().step_by(13).cloned().collect();
    let cfg = StreamConfig {
        total_messages: n,
        fault_every,
        pps: 50_000,
        concurrent_ops: 64,
        ..StreamConfig::default()
    };
    SyntheticStream::new(wb.catalog.clone(), &specs, cfg).collect()
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let n_messages: usize = arg("--messages", 200_000);
    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let wb = Workbench::new(seed);

    // Online: analyzer throughput at two fault frequencies.
    let mut throughput = Vec::new();
    for fault_every in [100usize, 2000] {
        let msgs = stream(&wb, fault_every, n_messages);
        let mut analyzer =
            Analyzer::new(&wb.library, GretelConfig::auto(wb.library.fp_max(), 50_000.0, 1.0));
        let start = Instant::now();
        let mut diagnoses = 0usize;
        for m in &msgs {
            diagnoses += analyzer.process(m).len();
        }
        diagnoses += analyzer.finish().len();
        let wall = start.elapsed();
        throughput.push(ThroughputRow {
            fault_every,
            messages: msgs.len(),
            diagnoses,
            wall_ms: wall.as_secs_f64() * 1e3,
            msgs_per_sec: msgs.len() as f64 / wall.as_secs_f64(),
        });
    }

    // Transport: the batched zero-copy ingest path. Same synthetic
    // stream, full service (capture agents → bounded channels → k-way
    // merge → analyzer), swept over the batch size. Diagnoses must be
    // byte-identical at every size; the headline number is channel
    // operations per merged message.
    let batched_msgs = stream(&wb, 2000, n_messages);
    // The synthetic stream spreads sources over `inst % 7` nodes.
    let nodes: Vec<NodeId> = (0..7).map(NodeId).collect();
    let mut batched = Vec::new();
    let mut batched_oracle: Option<Vec<gretel_core::Diagnosis>> = None;
    for batch_size in [1usize, 8, 64, 256] {
        let cfg = ServiceConfig { ingest_batch: batch_size, ..ServiceConfig::default() };
        // Channel ops are deterministic; wall clock on a shared host is
        // not — keep the best of three passes.
        let mut best: Option<(f64, Vec<gretel_core::Diagnosis>, _, _)> = None;
        for _ in 0..3 {
            let mut analyzer = Analyzer::new(
                &wb.library,
                GretelConfig::auto(wb.library.fp_max(), 50_000.0, 1.0),
            );
            let start = Instant::now();
            let (diags, svc, astats) = run_service_cfg(&mut analyzer, &nodes, &batched_msgs, &cfg);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            match &batched_oracle {
                Some(expected) => assert_eq!(
                    &diags, expected,
                    "batch size must never change the diagnosis stream"
                ),
                None => batched_oracle = Some(diags.clone()),
            }
            if best.as_ref().is_none_or(|(w, ..)| wall_ms < *w) {
                best = Some((wall_ms, diags, svc, astats));
            }
        }
        let (wall_ms, diags, svc, astats) = best.expect("three passes ran");
        batched.push(BatchedRow {
            batch_size,
            messages: astats.messages,
            frames: svc.frames,
            channel_ops: svc.channel_ops,
            ops_per_msg: svc.channel_ops as f64 / astats.messages as f64,
            diagnoses: diags.len(),
            wall_ms,
            msgs_per_sec: astats.messages as f64 / (wall_ms / 1e3),
        });
    }
    // The gate the fast path exists for: ≥2× fewer channel operations
    // per merged message than the per-frame transport.
    let ops1 = batched[0].ops_per_msg;
    for row in &batched[1..] {
        assert!(
            row.ops_per_msg * 2.0 <= ops1,
            "ingest_batch={} must at least halve channel ops/msg: {:.4} vs {:.4}",
            row.batch_size,
            row.ops_per_msg,
            ops1,
        );
    }

    // Offline: full-suite characterization scaling.
    let mut characterize = Vec::new();
    let mut base_ms = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let (lib, _) = FingerprintLibrary::characterize_parallel(
            wb.catalog.clone(),
            wb.suite.specs(),
            &wb.deployment,
            2,
            seed ^ 0xF1F1,
            threads,
        );
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(lib.len(), wb.suite.len());
        if threads == 1 {
            base_ms = wall_ms;
        }
        characterize.push(CharacterizeRow {
            threads,
            specs: wb.suite.len(),
            wall_ms,
            speedup: base_ms / wall_ms,
        });
    }

    results::print_table(
        "analyzer throughput (pattern cache + indexed matching)",
        &["fault_every", "messages", "diagnoses", "wall_ms", "msgs/s"],
        &throughput
            .iter()
            .map(|r| {
                vec![
                    r.fault_every.to_string(),
                    r.messages.to_string(),
                    r.diagnoses.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.0}", r.msgs_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    );
    results::print_table(
        "batched ingest transport (full service, fault_every=2000)",
        &["batch", "messages", "frames", "chan ops", "ops/msg", "wall_ms", "msgs/s"],
        &batched
            .iter()
            .map(|r| {
                vec![
                    r.batch_size.to_string(),
                    r.messages.to_string(),
                    r.frames.to_string(),
                    r.channel_ops.to_string(),
                    format!("{:.4}", r.ops_per_msg),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.0}", r.msgs_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    );
    results::print_table(
        &format!("characterization scaling (1200-test suite, 2 runs each; host_threads={host_threads})"),
        &["threads", "wall_ms", "speedup"],
        &characterize
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    results::write_json(
        "fastpath",
        &FastpathResults { seed, host_threads, throughput, batched, characterize },
    );
}

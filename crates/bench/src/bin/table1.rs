//! Table 1 — Characterization of the Tempest test suite.
//!
//! Regenerates the paper's Table 1: per category, the number of tests,
//! unique REST/RPC APIs, REST/RPC events captured during characterization,
//! and the average fingerprint size with and without RPCs.
//!
//! Usage: `cargo run --release -p gretel-bench --bin table1 [--seed N]`

use gretel_bench::{arg, results, Workbench};
use gretel_model::{Category, OpSpecId};
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct Row {
    category: String,
    tests: usize,
    unique_rpc: usize,
    unique_rest: usize,
    rpc_events: usize,
    rest_events: usize,
    avg_fp_with_rpc: f64,
    avg_fp_without_rpc: f64,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let wb = Workbench::new(seed);
    let cat = &wb.catalog;

    let mut rows = Vec::new();
    let mut total_rpc_events = 0usize;
    let mut total_rest_events = 0usize;
    for category in Category::ALL {
        let specs: Vec<_> = wb.suite.by_category(category).collect();
        let mut unique_rest: HashSet<_> = HashSet::new();
        let mut unique_rpc: HashSet<_> = HashSet::new();
        let mut fp_with = 0usize;
        let mut fp_without = 0usize;
        let mut rest_events = 0usize;
        let mut rpc_events = 0usize;
        for spec in &specs {
            let fp = wb.library.get(spec.id);
            for atom in &fp.atoms {
                if cat.get(atom.api).is_rpc() {
                    unique_rpc.insert(atom.api);
                } else {
                    unique_rest.insert(atom.api);
                }
            }
            fp_with += fp.len();
            fp_without += fp.len_without_rpcs(cat);
            let st = &wb.char_stats[spec.id.index()];
            rest_events += st.rest_events;
            rpc_events += st.rpc_events;
        }
        total_rest_events += rest_events;
        total_rpc_events += rpc_events;
        rows.push(Row {
            category: category.name().to_string(),
            tests: specs.len(),
            unique_rpc: unique_rpc.len(),
            unique_rest: unique_rest.len(),
            rpc_events,
            rest_events,
            avg_fp_with_rpc: fp_with as f64 / specs.len() as f64,
            avg_fp_without_rpc: fp_without as f64 / specs.len() as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.clone(),
                r.tests.to_string(),
                r.unique_rpc.to_string(),
                r.unique_rest.to_string(),
                format!("{:.1}K", r.rpc_events as f64 / 1000.0),
                format!("{:.1}K", r.rest_events as f64 / 1000.0),
                format!("{:.0}", r.avg_fp_with_rpc),
                format!("{:.0}", r.avg_fp_without_rpc),
            ]
        })
        .collect();
    let mut table = table;
    table.push(vec![
        "Total".into(),
        wb.suite.len().to_string(),
        "-".into(),
        "-".into(),
        format!("{:.1}K", total_rpc_events as f64 / 1000.0),
        format!("{:.1}K", total_rest_events as f64 / 1000.0),
        "-".into(),
        "-".into(),
    ]);
    results::print_table(
        "Table 1: Characterization of the Tempest test suite",
        &[
            "Category",
            "Tests",
            "uRPC",
            "uREST",
            "RPC ev",
            "REST ev",
            "FP w/RPC",
            "FP w/o",
        ],
        &table,
    );
    println!(
        "\nFPmax = {} (paper: 384); catalog: {} public REST APIs",
        wb.library.fp_max(),
        wb.catalog.public_rest_count()
    );
    // Paper example sanity: the canonical VM create fingerprint (a Compute
    // spec in the suite is larger, so show its size range instead).
    let largest = (0..wb.suite.len())
        .map(|i| wb.library.get(OpSpecId(i as u16)).len())
        .max()
        .unwrap_or(0);
    println!("largest fingerprint: {largest} atoms");
    results::write_json("table1", &rows);
}

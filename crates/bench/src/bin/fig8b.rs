//! Fig 8b — Performance faults under a tc-style latency injection.
//!
//! Reproduces §7.3(4): while ~200 operations execute concurrently, 50 ms
//! of latency is injected on all traffic to/from the Glance server for a
//! 10-minute window starting at the 5-minute mark; GRETEL's level-shift
//! detector raises alarms during (and only around) the window. The paper
//! observed 18 alarms.
//!
//! Usage: `cargo run --release -p gretel-bench --bin fig8b [--seed N]
//!         [--ops N] [--quick] [--detector ls|spike]`
//!
//! The default adaptive LS detector raises one alarm per confirmed shift;
//! `--detector spike` plugs in the additive-outlier detector, which — like
//! the paper's `tsoutliers` counting — re-alarms on every excursion during
//! the window, so its count lands nearer the paper's 18.

use gretel_bench::{arg, flag, results, Workbench};
use gretel_core::{analyze_stream, Analyzer, FaultKind, GretelConfig, PerfMonitor};
use gretel_telemetry::{LevelShiftConfig, OutlierDetector, SpikeDetector};
use gretel_model::{HttpMethod, Service};
use gretel_sim::scenario::glance_latency_injection;
use gretel_sim::secs;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8bOut {
    inject_from_s: u64,
    inject_until_s: u64,
    alarms_in_window: usize,
    alarms_outside: usize,
    alarm_times_s: Vec<f64>,
    series_len: usize,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let quick = flag("--quick");
    let ops: usize = arg("--ops", if quick { 60 } else { 200 });
    // Scaled-down window (the paper's 5..15 min over a ~20 min run; our
    // simulated ops finish faster, so the window scales with the run).
    let from = secs(arg("--from", if quick { 20 } else { 60 }));
    let until = secs(arg("--until", if quick { 60 } else { 180 }));
    let wb = Workbench::new(seed);

    let sc = glance_latency_injection(&wb.catalog, seed, ops, from, until);
    let exec = sc.run(wb.catalog.clone());

    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, 2.0);
    let detector: String = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--detector")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "ls".to_string())
    };
    let monitor = match detector.as_str() {
        "spike" => PerfMonitor::with_factory(
            Box::new(|| {
                Box::new(SpikeDetector::new(30, 8.0)) as Box<dyn OutlierDetector + Send>
            }),
            true,
        ),
        _ => PerfMonitor::new(
            LevelShiftConfig { baseline_window: 20, test_window: 4, ..Default::default() },
            true,
        ),
    };
    println!("[detector: {detector}]");
    let mut analyzer = Analyzer::with_perf_monitor(&wb.library, cfg, monitor);
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    let image_get = wb.catalog.rest_expect(Service::Glance, HttpMethod::Get, "/v2/images/{id}");
    let perf: Vec<_> = diagnoses
        .iter()
        .filter(|d| matches!(d.kind, FaultKind::Performance { .. }))
        .collect();
    let margin = secs(20);
    let in_window = perf
        .iter()
        .filter(|d| d.ts + margin >= from && d.ts < until + margin)
        .count();
    let outside = perf.len() - in_window;

    // Render the GET /v2/images/{id} latency series.
    let series = analyzer.latency_history(image_get);
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by((series.len() / 24).max(1))
        .map(|&(ts, lat)| {
            let in_w = ts >= from && ts < until;
            let bar = "#".repeat(((lat / 1e3) / 8.0).min(60.0) as usize);
            vec![
                format!("{:7.1}s{}", ts as f64 / 1e6, if in_w { " *" } else { "  " }),
                format!("{:8.1}ms", lat / 1e3),
                bar,
            ]
        })
        .collect();
    results::print_table(
        "Fig 8b: Glance GET /v2/images/{id} latency (* = injection window)",
        &["t", "latency", ""],
        &rows,
    );

    println!(
        "\nlevel-shift alarms: {} in/around the injection window, {} elsewhere (paper: 18 during the window)",
        in_window, outside
    );
    for d in perf.iter().take(8) {
        if let FaultKind::Performance { observed_ms, baseline_ms } = d.kind {
            println!(
                "  alarm t={:7.1}s api={} {:.1}ms (baseline {:.1}ms)",
                d.ts as f64 / 1e6,
                d.api,
                observed_ms,
                baseline_ms
            );
        }
    }
    results::write_json(
        "fig8b",
        &Fig8bOut {
            inject_from_s: from / 1_000_000,
            inject_until_s: until / 1_000_000,
            alarms_in_window: in_window,
            alarms_outside: outside,
            alarm_times_s: perf.iter().map(|d| d.ts as f64 / 1e6).collect(),
            series_len: series.len(),
        },
    );
}

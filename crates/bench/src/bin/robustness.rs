//! Capture-loss robustness through the *real* impaired pipeline.
//!
//! Where `loss_ablation` drops messages from the log before analysis (a
//! model of loss), this experiment injects the loss into the capture plane
//! itself: agents stamp per-agent sequence numbers, a seeded
//! [`CaptureImpairment`] drops / duplicates / reorders frames in flight,
//! the receiver resequences and reports gaps, and the analyzer matches in
//! degraded mode across them. Each diagnosis is tagged `Exact` or
//! `Degraded`, so the output also measures how honestly the system reports
//! its own evidence quality.
//!
//! Two sweeps:
//!
//! * a synthetic fault workload (as in `loss_ablation`) over increasing
//!   impairment rates — precision θ, recall, localization accuracy and
//!   degraded-diagnosis fraction per rate;
//! * the §7.2 operational case studies, each re-run under impairment — is
//!   the fault still diagnosed at all?
//!
//! Usage: `cargo run --release -p gretel-bench --bin robustness [--seed N]`

use gretel_bench::workload::{build_fault_plan, diagnosis_for, faulty_pool};
use gretel_bench::{arg, results, Workbench};
use gretel_core::{Analyzer, GretelConfig, ServiceConfig};
use gretel_model::{NodeId, OperationSpec};
use gretel_netcap::CaptureImpairment;
use gretel_sim::scenario::operational_suite;
use gretel_sim::{secs, RunConfig, Runner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Impairment rates swept: the acceptance bar is that localization at 1 %
/// loss stays within a few points of lossless.
const RATES: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2];

fn impairment(rate: f64, seed: u64) -> Option<CaptureImpairment> {
    Some(CaptureImpairment {
        drop_prob: rate,
        dup_prob: rate / 2.0,
        reorder_prob: rate,
        reorder_span: 4,
        stall: None,
        seed: seed ^ 0x0b57,
    })
}

#[derive(Serialize)]
struct Row {
    drop_prob: f64,
    dup_prob: f64,
    reorder_prob: f64,
    theta: f64,
    matched: f64,
    recall: f64,
    diagnosed: f64,
    localization: f64,
    degraded_frac: f64,
    capture_gaps: u64,
    lost_frames: u64,
    frames: u64,
    backpressure_drops: u64,
}

#[derive(Serialize)]
struct ScenarioRow {
    scenario: String,
    drop_prob: f64,
    diagnosed: bool,
    degraded_diagnoses: usize,
    total_diagnoses: usize,
}

#[derive(Serialize)]
struct Output {
    seed: u64,
    workers: usize,
    resequence_depth: usize,
    sweep: Vec<Row>,
    scenarios: Vec<ScenarioRow>,
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let concurrent: usize = arg("--concurrent", 100);
    let faults: usize = arg("--faults", 8);
    let wb = Workbench::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10C0);
    let base_cfg = ServiceConfig::default();
    let workers = base_cfg.effective_workers();

    // One workload, captured under increasing capture-plane impairment.
    let pool = faulty_pool(&wb);
    let mut specs: Vec<&OperationSpec> = Vec::new();
    for _ in 0..faults + concurrent {
        specs.push(pool[rng.gen_range(0..pool.len())]);
    }
    let (plan, truth) = build_fault_plan(&wb, &specs[..faults], &mut rng, None);
    let exec = Runner::new(
        wb.catalog.clone(),
        &wb.deployment,
        &plan,
        RunConfig { seed, start_window: secs(20), ..RunConfig::default() },
    )
    .run(&specs);
    let p_rate = exec.messages.len() as f64 / (exec.duration.max(1) as f64 / 1e6);
    let nodes: Vec<NodeId> = wb.deployment.nodes().iter().map(|n| n.id).collect();

    let mut rows = Vec::new();
    for &rate in &RATES {
        let cfg = ServiceConfig { impairment: impairment(rate, seed), ..ServiceConfig::default() };
        let gcfg = GretelConfig::auto(wb.library.fp_max(), p_rate * (1.0 - rate), 2.0);
        let mut analyzer = Analyzer::new(&wb.library, gcfg);
        let (diagnoses, svc, astats) =
            gretel_core::run_service_cfg(&mut analyzer, &nodes, &exec.messages, &cfg);

        let mut hit = 0usize;
        let mut diagnosed = 0usize;
        let mut n_sum = 0usize;
        let mut theta_sum = 0.0;
        for fault in &truth {
            if let Some(d) = diagnosis_for(&diagnoses, &exec.messages, fault) {
                diagnosed += 1;
                n_sum += d.matched.len();
                theta_sum += gretel_core::theta(d.matched.len(), wb.library.len());
                if d.matched.contains(&fault.spec) {
                    hit += 1;
                }
            }
        }
        let degraded = diagnoses.iter().filter(|d| !d.confidence.is_exact()).count();
        let k = diagnosed.max(1) as f64;
        rows.push(Row {
            drop_prob: rate,
            dup_prob: rate / 2.0,
            reorder_prob: rate,
            theta: theta_sum / k,
            matched: n_sum as f64 / k,
            recall: hit as f64 / truth.len() as f64,
            diagnosed: diagnosed as f64 / truth.len() as f64,
            localization: hit as f64 / k,
            degraded_frac: degraded as f64 / diagnoses.len().max(1) as f64,
            capture_gaps: astats.capture_gaps,
            lost_frames: astats.lost_frames,
            frames: svc.frames,
            backpressure_drops: svc.backpressure_drops,
        });
    }

    // Case studies under impairment: does each operational scenario still
    // produce a diagnosis at all?
    let mut scenarios = Vec::new();
    for sc in operational_suite(&wb.catalog, seed, 6) {
        let sexec = sc.run(wb.catalog.clone());
        let sp_rate = sexec.messages.len() as f64 / (sexec.duration.max(1) as f64 / 1e6).max(1e-6);
        let snodes: Vec<NodeId> = sc.deployment.nodes().iter().map(|n| n.id).collect();
        for &rate in &[0.0, 0.01, 0.05] {
            let cfg =
                ServiceConfig { impairment: impairment(rate, seed), ..ServiceConfig::default() };
            let gcfg = GretelConfig::auto(wb.library.fp_max(), sp_rate * (1.0 - rate), 2.0);
            let mut analyzer = Analyzer::new(&wb.library, gcfg);
            let (diagnoses, _, _) =
                gretel_core::run_service_cfg(&mut analyzer, &snodes, &sexec.messages, &cfg);
            scenarios.push(ScenarioRow {
                scenario: sc.name.to_string(),
                drop_prob: rate,
                diagnosed: !diagnoses.is_empty(),
                degraded_diagnoses: diagnoses.iter().filter(|d| !d.confidence.is_exact()).count(),
                total_diagnoses: diagnoses.len(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", 100.0 * r.drop_prob),
                format!("{:.2}%", 100.0 * r.theta),
                format!("{:.1}", r.matched),
                format!("{:.2}", r.recall),
                format!("{:.2}", r.localization),
                format!("{:.2}", r.degraded_frac),
                format!("{}", r.lost_frames),
            ]
        })
        .collect();
    results::print_table(
        "Capture-plane robustness (impaired pipeline, degraded-mode matching)",
        &["loss", "theta", "matched", "recall", "localization", "degraded", "lost"],
        &table,
    );
    let stable: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                format!("{:.0}%", 100.0 * s.drop_prob),
                format!("{}", s.diagnosed),
                format!("{}/{}", s.degraded_diagnoses, s.total_diagnoses),
            ]
        })
        .collect();
    results::print_table(
        "Case studies under impairment",
        &["scenario", "loss", "diagnosed", "degraded/total"],
        &stable,
    );

    results::write_json(
        "robustness",
        &Output {
            seed,
            workers,
            resequence_depth: base_cfg.resequence_depth,
            sweep: rows,
            scenarios,
        },
    );
}

//! Result output: aligned console tables plus JSON files under
//! `results/` for EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Print an aligned table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write a JSON result file under `results/<name>.json` (workspace root).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if fs::write(&path, json).is_ok() {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "two".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn json_round_trips() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        write_json("unit-test", &R { x: 7 });
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/unit-test.json");
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 7"));
        let _ = fs::remove_file(path);
    }
}

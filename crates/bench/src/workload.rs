//! Shared workload construction and scoring for the fault experiments.
//!
//! Several experiment binaries need the same machinery: pick faulty
//! operations (the paper injects erroneous APIs "only from the Compute and
//! Network category", §7.3), choose a state-change REST step to fail,
//! build the fault plan, and afterwards score each injected fault against
//! the analyzer's diagnoses using ground truth.

use crate::Workbench;
use gretel_core::{Diagnosis, FaultKind};
use gretel_model::{ApiId, Category, Message, OpInstanceId, OperationSpec};
use gretel_sim::{ApiFault, FaultPlan, FaultScope, InjectedError};
use rand::rngs::StdRng;
use rand::Rng;

/// Ground truth for one injected fault.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The faulty instance.
    pub inst: OpInstanceId,
    /// The spec it runs.
    pub spec: gretel_model::OpSpecId,
    /// The spec's name (for reports).
    pub name: String,
    /// The API the fault was injected into.
    pub api: ApiId,
}

/// Pick a state-change REST API (plus its occurrence index within the
/// spec) to inject a fault into.
pub fn pick_fault_step(
    wb: &Workbench,
    spec: &OperationSpec,
    rng: &mut StdRng,
) -> Option<(ApiId, u32)> {
    let rest_sc: Vec<usize> = spec
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            let def = wb.catalog.get(s.api);
            !def.is_rpc() && def.is_state_change()
        })
        .map(|(i, _)| i)
        .collect();
    if rest_sc.is_empty() {
        return None;
    }
    let step_idx = rest_sc[rng.gen_range(0..rest_sc.len())];
    let api = spec.steps[step_idx].api;
    let occurrence = spec.steps[..step_idx].iter().filter(|s| s.api == api).count() as u32;
    Some((api, occurrence))
}

/// The pool of specs eligible for fault injection (paper §7.3: Compute and
/// Network only).
pub fn faulty_pool(wb: &Workbench) -> Vec<&OperationSpec> {
    wb.suite
        .specs()
        .iter()
        .filter(|s| matches!(s.category, Category::Compute | Category::Network))
        .collect()
}

/// Inject one 500-status abort fault per faulty spec (instance ids
/// `0..faulty.len()`); returns the plan plus ground truth.
pub fn build_fault_plan(
    wb: &Workbench,
    faulty: &[&OperationSpec],
    rng: &mut StdRng,
    identical_pick: Option<(ApiId, u32)>,
) -> (FaultPlan, Vec<InjectedFault>) {
    let mut plan = FaultPlan::none();
    let mut truth = Vec::with_capacity(faulty.len());
    for (i, spec) in faulty.iter().enumerate() {
        let (api, occurrence) = identical_pick
            .or_else(|| pick_fault_step(wb, spec, rng))
            .expect("spec has state-change REST steps");
        let inst = OpInstanceId(i as u64);
        plan = plan.with_api_fault(ApiFault {
            api,
            scope: FaultScope::Instance(inst),
            occurrence,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        truth.push(InjectedFault { inst, spec: spec.id, name: spec.name.clone(), api });
    }
    (plan, truth)
}

/// Find the diagnosis for an injected fault: an operational diagnosis on
/// the right API whose fault message was emitted by the faulty instance.
/// (Ground-truth scoring only — GRETEL itself never reads `truth_op`.)
pub fn diagnosis_for<'d>(
    diagnoses: &'d [Diagnosis],
    messages: &[Message],
    fault: &InjectedFault,
) -> Option<&'d Diagnosis> {
    diagnoses
        .iter()
        .filter(|d| d.api == fault.api && matches!(d.kind, FaultKind::Operational { .. }))
        .find(|d| {
            messages
                .iter()
                .find(|m| m.ts_us == d.ts && m.api == d.api && m.is_rest_error())
                .and_then(|m| m.truth_op)
                == Some(fault.inst)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fault_pool_is_compute_and_network_only() {
        let wb = Workbench::small(1, 6);
        for spec in faulty_pool(&wb) {
            assert!(matches!(spec.category, Category::Compute | Category::Network));
        }
    }

    #[test]
    fn fault_plan_covers_each_instance_once() {
        let wb = Workbench::small(2, 6);
        let pool = faulty_pool(&wb);
        let mut rng = StdRng::seed_from_u64(1);
        let faulty: Vec<&OperationSpec> = pool.iter().take(4).copied().collect();
        let (plan, truth) = build_fault_plan(&wb, &faulty, &mut rng, None);
        assert_eq!(plan.api_faults.len(), 4);
        assert_eq!(truth.len(), 4);
        for (i, f) in truth.iter().enumerate() {
            assert_eq!(f.inst, OpInstanceId(i as u64));
            assert!(wb.suite.spec(f.spec).contains(f.api));
        }
    }

    #[test]
    fn pick_fault_step_returns_state_change_rest() {
        let wb = Workbench::small(3, 6);
        let mut rng = StdRng::seed_from_u64(2);
        for spec in faulty_pool(&wb).iter().take(10) {
            let (api, occ) = pick_fault_step(&wb, spec, &mut rng).expect("pickable");
            let def = wb.catalog.get(api);
            assert!(!def.is_rpc() && def.is_state_change());
            let occurrences = spec.steps.iter().filter(|s| s.api == api).count() as u32;
            assert!(occ < occurrences);
        }
    }
}

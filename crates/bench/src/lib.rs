//! # gretel-bench — experiment harnesses
//!
//! Shared support for the binaries that regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md §3 for the index) and for the
//! Criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod precision;
pub mod results;
pub mod workload;

use gretel_core::{CharacterizationStats, FingerprintLibrary};
use gretel_model::{Catalog, TempestSuite};
use gretel_sim::Deployment;
use std::sync::Arc;

/// Everything the experiments share: the catalog, the generated suite,
/// the deployment and the characterized fingerprint library.
pub struct Workbench {
    /// The OpenStack API catalog.
    pub catalog: Arc<Catalog>,
    /// The 1200-test synthetic Tempest suite.
    pub suite: TempestSuite,
    /// The 7-node deployment.
    pub deployment: Deployment,
    /// Fingerprints learned from the suite (Algorithm 1 over 2 isolated
    /// runs per test).
    pub library: FingerprintLibrary,
    /// Raw event counts from characterization (Table 1's Events columns).
    pub char_stats: Vec<CharacterizationStats>,
}

impl Workbench {
    /// Build the full workbench (≈200 ms in release mode).
    pub fn new(seed: u64) -> Workbench {
        let catalog = Catalog::openstack();
        let suite = TempestSuite::generate(catalog.clone(), seed);
        let deployment = Deployment::standard();
        let (library, char_stats) = FingerprintLibrary::characterize(
            catalog.clone(),
            suite.specs(),
            &deployment,
            2,
            seed ^ 0xF1F1,
        );
        Workbench { catalog, suite, deployment, library, char_stats }
    }

    /// A reduced workbench for unit tests (`per_category` tests per
    /// category).
    pub fn small(seed: u64, per_category: usize) -> Workbench {
        let catalog = Catalog::openstack();
        let counts: Vec<(gretel_model::Category, usize)> = gretel_model::Category::ALL
            .iter()
            .map(|&c| (c, per_category))
            .collect();
        let suite = TempestSuite::generate_with_counts(catalog.clone(), seed, &counts);
        let deployment = Deployment::standard();
        let (library, char_stats) = FingerprintLibrary::characterize(
            catalog.clone(),
            suite.specs(),
            &deployment,
            2,
            seed ^ 0xF1F1,
        );
        Workbench { catalog, suite, deployment, library, char_stats }
    }
}

/// Parse `--key value` style arguments with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare flag is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workbench_builds_and_characterizes() {
        let wb = Workbench::small(3, 4);
        assert_eq!(wb.suite.len(), 20);
        assert_eq!(wb.library.len(), 20);
        assert!(wb.library.fp_max() > 0);
        assert_eq!(wb.char_stats.len(), 20);
    }
}

//! The §7.3 precision experiment machinery (Figs 7a–7c, 8a).
//!
//! Mirrors the paper's setup: sample non-faulty Tempest tests proportional
//! to their category distribution, run them concurrently with a given
//! number of faulty instances (erroneous APIs drawn from the Compute and
//! Network categories only), and measure GRETEL's precision
//! θ = (N − n)/(N − 1) over the full 1200-fingerprint library per injected
//! fault.

use crate::workload::{build_fault_plan, diagnosis_for, faulty_pool, pick_fault_step};
use crate::Workbench;
use gretel_core::{analyze_stream, Analyzer, GretelConfig};
use gretel_model::{Category, OperationSpec};
use gretel_sim::{secs, NoiseConfig, RunConfig, Runner};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Parameters of one precision run.
#[derive(Debug, Clone, Copy)]
pub struct PrecisionParams {
    /// Concurrent non-faulty tests.
    pub concurrent: usize,
    /// Number of injected faulty operations.
    pub faults: usize,
    /// Use the same faulty spec for all faults (the Fig 8a setup).
    pub identical_faults: bool,
    /// RNG seed.
    pub seed: u64,
    /// Override `prune_rpcs` (None → default true).
    pub prune_rpcs: Option<bool>,
    /// Window over which instance starts are spread.
    pub start_window_secs: u64,
    /// The `t` of the α formula (seconds of traffic the window covers).
    pub t_secs: f64,
    /// Propagate (and exploit) per-operation correlation ids — the
    /// §5.3.1 enhancement the paper leaves to OpenStack's rollout.
    pub correlation_ids: bool,
    /// Full analyzer-config override (applied after `auto`; `prune_rpcs`
    /// still wins). For ablations.
    pub config_override: Option<fn(&mut GretelConfig)>,
}

impl Default for PrecisionParams {
    fn default() -> Self {
        PrecisionParams {
            concurrent: 100,
            faults: 1,
            identical_faults: false,
            seed: 1,
            prune_rpcs: None,
            start_window_secs: 20,
            t_secs: 2.0,
            correlation_ids: false,
            config_override: None,
        }
    }
}

/// Scoring for one injected fault.
#[derive(Debug, Clone, Serialize)]
pub struct FaultScore {
    /// Ground-truth spec name.
    pub truth: String,
    /// Whether a diagnosis was produced for this fault at all.
    pub diagnosed: bool,
    /// Whether the truth operation is among the matched set.
    pub hit: bool,
    /// Number of operations matched (`n`).
    pub matched: usize,
    /// θ over the full library.
    pub theta: f64,
    /// Operations matching on the API error alone (no snapshot) — the
    /// "With API error" baseline of Figs 7b/7c.
    pub candidates: usize,
}

/// Aggregate result of one precision run.
#[derive(Debug, Clone, Serialize)]
pub struct PrecisionResult {
    /// Concurrency level.
    pub concurrent: usize,
    /// Faults injected.
    pub faults: usize,
    /// Per-fault scores.
    pub scores: Vec<FaultScore>,
    /// Mean θ across diagnosed faults.
    pub mean_theta: f64,
    /// Mean matched operations across diagnosed faults.
    pub mean_matched: f64,
    /// Mean candidates ("with API error" baseline).
    pub mean_candidates: f64,
    /// Fraction of faults whose truth op was matched.
    pub recall: f64,
    /// Total messages the analyzer processed.
    pub messages: u64,
}

/// Run one precision experiment.
pub fn run(wb: &Workbench, params: PrecisionParams) -> PrecisionResult {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xBEEF);

    // Category-proportional sample of non-faulty tests.
    let mut background: Vec<&OperationSpec> = Vec::with_capacity(params.concurrent);
    let by_cat: Vec<(Category, Vec<&OperationSpec>)> = Category::ALL
        .iter()
        .map(|&c| (c, wb.suite.by_category(c).collect::<Vec<_>>()))
        .collect();
    let total_tests: usize = by_cat.iter().map(|(_, v)| v.len()).sum();
    for (cat, specs) in &by_cat {
        let share = (params.concurrent * specs.len()).div_ceil(total_tests);
        for _ in 0..share {
            if background.len() >= params.concurrent {
                break;
            }
            background.push(specs[rng.gen_range(0..specs.len())]);
            let _ = cat;
        }
    }
    background.shuffle(&mut rng);
    background.truncate(params.concurrent);

    // Faulty instances: Compute and Network specs only (paper §7.3).
    let pool = faulty_pool(wb);
    let mut faulty: Vec<&OperationSpec> = Vec::with_capacity(params.faults);
    if params.identical_faults {
        let spec = pool[rng.gen_range(0..pool.len())];
        faulty.extend(std::iter::repeat_n(spec, params.faults));
    } else {
        for _ in 0..params.faults {
            faulty.push(pool[rng.gen_range(0..pool.len())]);
        }
    }

    // Assemble the run: faulty instances get ids 0..faults.
    let mut all: Vec<&OperationSpec> = Vec::with_capacity(faulty.len() + background.len());
    all.extend(faulty.iter().copied());
    all.extend(background.iter().copied());

    let identical_pick = params
        .identical_faults
        .then(|| pick_fault_step(wb, faulty[0], &mut rng).expect("state-change REST step"));
    let (plan, truth) = build_fault_plan(wb, &faulty, &mut rng, identical_pick);

    let run_cfg = RunConfig {
        seed: params.seed,
        start_window: secs(params.start_window_secs),
        noise: NoiseConfig::default(),
        correlation_ids: params.correlation_ids,
        ..RunConfig::default()
    };
    let exec = Runner::new(wb.catalog.clone(), &wb.deployment, &plan, run_cfg).run(&all);

    // Analyzer with α derived from the observed rate (paper §5.3.1).
    let p_rate = if exec.duration > 0 {
        exec.messages.len() as f64 / (exec.duration as f64 / 1e6)
    } else {
        150.0
    };
    let mut cfg = GretelConfig::auto(wb.library.fp_max(), p_rate, params.t_secs);
    if let Some(f) = params.config_override {
        f(&mut cfg);
    }
    if let Some(p) = params.prune_rpcs {
        cfg.prune_rpcs = p;
    }
    let mut analyzer = Analyzer::new(&wb.library, cfg);
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    // Score each injected fault: the diagnosis whose offending API matches
    // and whose fault message belongs to the faulty instance.
    let scores: Vec<FaultScore> = truth
        .iter()
        .map(|fault| match diagnosis_for(&diagnoses, &exec.messages, fault) {
            Some(d) => FaultScore {
                truth: fault.name.clone(),
                diagnosed: true,
                hit: d.matched.contains(&fault.spec),
                matched: d.matched.len(),
                theta: gretel_core::theta(d.matched.len(), wb.library.len()),
                candidates: d.candidates,
            },
            None => FaultScore {
                truth: fault.name.clone(),
                diagnosed: false,
                hit: false,
                matched: 0,
                theta: 0.0,
                candidates: 0,
            },
        })
        .collect();

    let diagnosed: Vec<&FaultScore> = scores.iter().filter(|s| s.diagnosed).collect();
    let m = diagnosed.len().max(1) as f64;
    PrecisionResult {
        concurrent: params.concurrent,
        faults: params.faults,
        mean_theta: diagnosed.iter().map(|s| s.theta).sum::<f64>() / m,
        mean_matched: diagnosed.iter().map(|s| s.matched as f64).sum::<f64>() / m,
        mean_candidates: diagnosed.iter().map(|s| s.candidates as f64).sum::<f64>() / m,
        recall: scores.iter().filter(|s| s.hit).count() as f64 / scores.len().max(1) as f64,
        messages: analyzer.stats().messages,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_precision_run_hits_the_truth() {
        let wb = Workbench::small(5, 10);
        let res = run(
            &wb,
            PrecisionParams {
                concurrent: 10,
                faults: 2,
                seed: 5,
                start_window_secs: 6,
                ..Default::default()
            },
        );
        assert_eq!(res.scores.len(), 2);
        assert!(res.recall > 0.0, "at least one fault matched its truth op: {:?}", res.scores);
        assert!(res.mean_theta > 0.0);
        assert!(res.messages > 0);
    }

    #[test]
    fn identical_faults_share_the_api() {
        let wb = Workbench::small(6, 8);
        let res = run(
            &wb,
            PrecisionParams {
                concurrent: 8,
                faults: 4,
                identical_faults: true,
                seed: 9,
                start_window_secs: 6,
                ..Default::default()
            },
        );
        assert_eq!(res.scores.len(), 4);
        let names: std::collections::HashSet<_> =
            res.scores.iter().map(|s| s.truth.as_str()).collect();
        assert_eq!(names.len(), 1, "all faults target the same spec");
    }
}

//! Fault injection plans.
//!
//! A [`FaultPlan`] is the simulated counterpart of everything the paper
//! does to its testbed to create faults: returning error statuses from
//! APIs, `tc`-style latency injection on a node's links, crashing service
//! processes (the §7.2.3 linuxbridge agent), stopping NTP (§7.2.4), and
//! exhausting node resources (the §7.2.1 full Glance disk, the §7.2.2 CPU
//! surge). The executor consults the plan while running operations; the
//! telemetry log reflects resource and dependency faults so root cause
//! analysis has something to find.

use crate::engine::{splitmix64, SimTime};
use crate::resources::ResourceKind;
use gretel_model::{ApiId, Dependency, NodeId, OpInstanceId, ProjectId, Service};
use serde::{Deserialize, Serialize};

/// Error injected into an API invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedError {
    /// REST response with this HTTP status. `reason` overrides the
    /// canonical reason phrase (e.g. the paper's "No valid host was
    /// found" body).
    RestStatus {
        /// HTTP status code (>= 400 for an error).
        status: u16,
        /// Optional custom reason phrase.
        reason: Option<String>,
    },
    /// RPC reply carrying a serialized exception of this class.
    RpcException {
        /// Exception class name embedded in the oslo payload.
        class: String,
    },
}

/// Which operation instances an [`ApiFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Every instance invoking the API.
    AllInstances,
    /// Only the given instance.
    Instance(OpInstanceId),
    /// Every instance belonging to one tenant (Keystone project). The
    /// executor assigns each instance a project (see
    /// `RunConfig::projects`); a project-scoped fault hits exactly that
    /// tenant's traffic — the primitive both tenant-targeted cascade
    /// scenarios and project-sharded deployments need.
    Project(ProjectId),
}

impl FaultScope {
    fn matches(self, inst: OpInstanceId, project: ProjectId) -> bool {
        match self {
            FaultScope::AllInstances => true,
            FaultScope::Instance(i) => i == inst,
            FaultScope::Project(p) => p == project,
        }
    }
}

/// Inject an error into invocations of one API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiFault {
    /// The API to fail.
    pub api: ApiId,
    /// Which instances are affected.
    pub scope: FaultScope,
    /// Which occurrence of the API within the operation fails (0 = first).
    pub occurrence: u32,
    /// The error to return.
    pub error: InjectedError,
    /// Whether the operation aborts after the failed step (operational
    /// faults abort; performance-degrading errors may not).
    pub abort_op: bool,
}

/// `tc netem`-style extra latency on all traffic to/from a node during a
/// window (the Fig 8b experiment injects 50 ms on the Glance server for
/// 10 minutes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyFault {
    /// Affected node.
    pub node: NodeId,
    /// Extra one-way latency added to each affected step.
    pub extra: SimTime,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A software-dependency failure visible to the watchers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DepFault {
    /// A service process crashes on a node at `at` and stays down.
    ServiceCrash {
        /// Node the process runs on.
        node: NodeId,
        /// The crashed service.
        service: Service,
        /// Crash time.
        at: SimTime,
    },
    /// The NTP agent on a node stops at `at`.
    NtpStop {
        /// Affected node.
        node: NodeId,
        /// Stop time.
        at: SimTime,
    },
}

/// An [`ApiFault`] that is only active during a half-open `[from, until)`
/// window — the form cascade schedulers emit: a secondary fault switches
/// on some delay after its trigger, instead of existing for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedApiFault {
    /// The fault to apply while the window is active.
    pub fault: ApiFault,
    /// Activation time (inclusive).
    pub from: SimTime,
    /// Deactivation time (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
}

/// A partial network partition between two services: invocations crossing
/// the pair (either direction) are dropped while the window is active.
/// `drop_prob < 1.0` models a flaky link rather than a clean cut; the
/// per-invocation drop coin comes from [`splitmix64`] over `(seed,
/// instance, invocation time)` — never from the executor's main RNG
/// stream, so adding a partition to a plan does not perturb the rest of a
/// seeded run.
///
/// A partition is invisible to every node-local watcher: both processes
/// stay up, resources stay nominal. Only the traffic itself shows it —
/// exactly the case that defeats flat per-node RCA and needs the
/// cross-service graph walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionFault {
    /// One side of the severed pair.
    pub a: Service,
    /// The other side.
    pub b: Service,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
    /// Probability a crossing invocation is dropped; `1.0` = full cut.
    pub drop_prob: f64,
    /// Seed for the per-invocation drop coin (partial partitions).
    pub seed: u64,
}

impl PartitionFault {
    /// Whether this partition severs a `src → dst` invocation by `inst`
    /// at time `t`.
    fn severs(&self, src: Service, dst: Service, inst: OpInstanceId, t: SimTime) -> bool {
        let pair = (self.a == src && self.b == dst) || (self.a == dst && self.b == src);
        if !pair || t < self.from || t >= self.until {
            return false;
        }
        if self.drop_prob >= 1.0 {
            return true;
        }
        if self.drop_prob <= 0.0 {
            return false;
        }
        // 53-bit uniform in [0, 1) from the coin.
        let coin = splitmix64(self.seed, inst.0, t);
        ((coin >> 11) as f64 / (1u64 << 53) as f64) < self.drop_prob
    }
}

/// Override a node metric during a window (resource exhaustion / surge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceFault {
    /// Affected node.
    pub node: NodeId,
    /// Metric to override.
    pub kind: ResourceKind,
    /// Absolute value the metric is pinned to during the window.
    pub value: f64,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
}

/// A complete fault schedule for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// API-level error injections.
    pub api_faults: Vec<ApiFault>,
    /// Time-windowed API error injections (cascade secondaries).
    pub timed_api_faults: Vec<TimedApiFault>,
    /// Link latency injections.
    pub latency: Vec<LatencyFault>,
    /// Dependency failures.
    pub deps: Vec<DepFault>,
    /// Resource overrides.
    pub resources: Vec<ResourceFault>,
    /// Partial network partitions between service pairs.
    pub partitions: Vec<PartitionFault>,
}

impl FaultPlan {
    /// An empty plan (fault-free run).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: add an API fault.
    pub fn with_api_fault(mut self, f: ApiFault) -> FaultPlan {
        self.api_faults.push(f);
        self
    }

    /// Builder-style: add a time-windowed API fault.
    pub fn with_timed_api_fault(mut self, f: TimedApiFault) -> FaultPlan {
        self.timed_api_faults.push(f);
        self
    }

    /// Builder-style: add a partition fault.
    pub fn with_partition(mut self, f: PartitionFault) -> FaultPlan {
        self.partitions.push(f);
        self
    }

    /// Builder-style: add a latency fault.
    pub fn with_latency(mut self, f: LatencyFault) -> FaultPlan {
        self.latency.push(f);
        self
    }

    /// Builder-style: add a dependency fault.
    pub fn with_dep(mut self, f: DepFault) -> FaultPlan {
        self.deps.push(f);
        self
    }

    /// Builder-style: add a resource fault.
    pub fn with_resource(mut self, f: ResourceFault) -> FaultPlan {
        self.resources.push(f);
        self
    }

    /// The error (if any) to inject for the `occurrence`-th invocation of
    /// `api` by instance `inst` (running under `project`) at time `t`.
    /// Untimed faults match regardless of `t`; timed faults only inside
    /// their half-open window.
    pub fn api_error(
        &self,
        api: ApiId,
        inst: OpInstanceId,
        project: ProjectId,
        occurrence: u32,
        t: SimTime,
    ) -> Option<&ApiFault> {
        self.api_faults
            .iter()
            .find(|f| {
                f.api == api && f.scope.matches(inst, project) && f.occurrence == occurrence
            })
            .or_else(|| {
                self.timed_api_faults
                    .iter()
                    .filter(|tf| t >= tf.from && t < tf.until)
                    .map(|tf| &tf.fault)
                    .find(|f| {
                        f.api == api
                            && f.scope.matches(inst, project)
                            && f.occurrence == occurrence
                    })
            })
    }

    /// Whether a `src → dst` service invocation by `inst` at time `t` is
    /// severed by an active partition.
    pub fn partition_cut(
        &self,
        src: Service,
        dst: Service,
        inst: OpInstanceId,
        t: SimTime,
    ) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, inst, t))
    }

    /// Total extra latency injected on traffic touching `node` at time `t`.
    pub fn extra_latency(&self, node: NodeId, t: SimTime) -> SimTime {
        self.latency
            .iter()
            .filter(|f| f.node == node && t >= f.from && t < f.until)
            .map(|f| f.extra)
            .sum()
    }

    /// Whether `service` on `node` is down at time `t`.
    pub fn is_service_down(&self, node: NodeId, service: Service, t: SimTime) -> bool {
        self.deps.iter().any(|d| match d {
            DepFault::ServiceCrash { node: n, service: s, at } => {
                *n == node && *s == service && t >= *at
            }
            DepFault::NtpStop { node: n, at } => {
                *n == node && service == Service::Ntp && t >= *at
            }
        })
    }

    /// Whether a dependency is healthy on `node` at time `t` (what the
    /// watchers report).
    pub fn dependency_healthy(&self, node: NodeId, dep: Dependency, t: SimTime) -> bool {
        match dep {
            Dependency::ServiceProcess(s) => !self.is_service_down(node, s, t),
            Dependency::NtpAgent => !self.is_service_down(node, Service::Ntp, t),
            // Reachability of the shared MySQL / RabbitMQ singletons
            // follows the remote process: if it crashed anywhere, every
            // node's TCP watcher sees it unreachable.
            Dependency::MySqlReachable => !self.is_singleton_down(Service::MySql, t),
            Dependency::RabbitMqReachable => !self.is_singleton_down(Service::RabbitMq, t),
            Dependency::Libvirt => true,
        }
    }

    /// Whether a singleton infrastructure service is down on any node.
    pub fn is_singleton_down(&self, service: Service, t: SimTime) -> bool {
        self.deps.iter().any(|d| {
            matches!(d, DepFault::ServiceCrash { service: s, at, .. } if *s == service && t >= *at)
        })
    }

    /// Resource override value for `(node, kind)` at time `t`, if any.
    pub fn resource_override(&self, node: NodeId, kind: ResourceKind, t: SimTime) -> Option<f64> {
        self.resources
            .iter()
            .find(|f| f.node == node && f.kind == kind && t >= f.from && t < f.until)
            .map(|f| f.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::secs;

    /// Any project — scope checks that don't involve projects.
    const P0: ProjectId = ProjectId(0);

    #[test]
    fn api_fault_matching_respects_scope_and_occurrence() {
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ApiId(5),
            scope: FaultScope::Instance(OpInstanceId(3)),
            occurrence: 1,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        assert!(plan.api_error(ApiId(5), OpInstanceId(3), P0, 1, 0).is_some());
        assert!(plan.api_error(ApiId(5), OpInstanceId(3), P0, 0, 0).is_none());
        assert!(plan.api_error(ApiId(5), OpInstanceId(4), P0, 1, 0).is_none());
        assert!(plan.api_error(ApiId(6), OpInstanceId(3), P0, 1, 0).is_none());
    }

    #[test]
    fn all_instances_scope_matches_everyone() {
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ApiId(1),
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RpcException { class: "Boom".into() },
            abort_op: true,
        });
        assert!(plan.api_error(ApiId(1), OpInstanceId(0), P0, 0, 0).is_some());
        assert!(plan.api_error(ApiId(1), OpInstanceId(77), P0, 0, 0).is_some());
    }

    #[test]
    fn project_scope_matches_only_that_tenant() {
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ApiId(2),
            scope: FaultScope::Project(ProjectId(7)),
            occurrence: 0,
            error: InjectedError::RestStatus { status: 503, reason: None },
            abort_op: true,
        });
        // Any instance of project 7 is hit, regardless of instance id.
        assert!(plan.api_error(ApiId(2), OpInstanceId(0), ProjectId(7), 0, 0).is_some());
        assert!(plan.api_error(ApiId(2), OpInstanceId(99), ProjectId(7), 0, 0).is_some());
        // Other tenants are untouched, even with the same instance ids.
        assert!(plan.api_error(ApiId(2), OpInstanceId(0), ProjectId(8), 0, 0).is_none());
        assert!(plan.api_error(ApiId(2), OpInstanceId(99), ProjectId(0), 0, 0).is_none());
    }

    #[test]
    fn scope_matches_directly() {
        let i3 = OpInstanceId(3);
        assert!(FaultScope::AllInstances.matches(i3, ProjectId(1)));
        assert!(FaultScope::Instance(i3).matches(i3, ProjectId(9)));
        assert!(!FaultScope::Instance(OpInstanceId(4)).matches(i3, ProjectId(9)));
        assert!(FaultScope::Project(ProjectId(2)).matches(i3, ProjectId(2)));
        assert!(!FaultScope::Project(ProjectId(2)).matches(i3, ProjectId(3)));
    }

    #[test]
    fn timed_api_fault_only_active_in_window() {
        let plan = FaultPlan::none().with_timed_api_fault(TimedApiFault {
            fault: ApiFault {
                api: ApiId(4),
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 500, reason: None },
                abort_op: true,
            },
            from: secs(10),
            until: secs(20),
        });
        let i = OpInstanceId(0);
        assert!(plan.api_error(ApiId(4), i, P0, 0, secs(9)).is_none());
        assert!(plan.api_error(ApiId(4), i, P0, 0, secs(10)).is_some());
        assert!(plan.api_error(ApiId(4), i, P0, 0, secs(19)).is_some());
        assert!(plan.api_error(ApiId(4), i, P0, 0, secs(20)).is_none());
    }

    #[test]
    fn full_partition_severs_both_directions_inside_window() {
        let plan = FaultPlan::none().with_partition(PartitionFault {
            a: Service::Nova,
            b: Service::Cinder,
            from: secs(5),
            until: secs(50),
            drop_prob: 1.0,
            seed: 1,
        });
        let i = OpInstanceId(0);
        assert!(plan.partition_cut(Service::Nova, Service::Cinder, i, secs(5)));
        assert!(plan.partition_cut(Service::Cinder, Service::Nova, i, secs(30)));
        assert!(!plan.partition_cut(Service::Nova, Service::Cinder, i, secs(4)));
        assert!(!plan.partition_cut(Service::Nova, Service::Cinder, i, secs(50)));
        // Other pairs are unaffected.
        assert!(!plan.partition_cut(Service::Nova, Service::Glance, i, secs(30)));
    }

    #[test]
    fn partial_partition_is_deterministic_and_roughly_calibrated() {
        let p = PartitionFault {
            a: Service::Nova,
            b: Service::Cinder,
            from: 0,
            until: SimTime::MAX,
            drop_prob: 0.5,
            seed: 42,
        };
        let drops = (0..1000u64)
            .filter(|&k| p.severs(Service::Nova, Service::Cinder, OpInstanceId(k), secs(k)))
            .count();
        // Deterministic replay: identical fault, identical outcome.
        let again = (0..1000u64)
            .filter(|&k| p.severs(Service::Nova, Service::Cinder, OpInstanceId(k), secs(k)))
            .count();
        assert_eq!(drops, again);
        assert!((300..700).contains(&drops), "~half of 1000 coins drop, got {drops}");
        // Degenerate probabilities short-circuit the coin entirely.
        let never = PartitionFault { drop_prob: 0.0, ..p };
        let always = PartitionFault { drop_prob: 1.0, ..p };
        assert!(!never.severs(Service::Nova, Service::Cinder, OpInstanceId(1), 0));
        assert!(always.severs(Service::Nova, Service::Cinder, OpInstanceId(1), 0));
    }

    #[test]
    fn latency_window_is_half_open() {
        let plan = FaultPlan::none().with_latency(LatencyFault {
            node: NodeId(2),
            extra: 50_000,
            from: secs(300),
            until: secs(900),
        });
        assert_eq!(plan.extra_latency(NodeId(2), secs(299)), 0);
        assert_eq!(plan.extra_latency(NodeId(2), secs(300)), 50_000);
        assert_eq!(plan.extra_latency(NodeId(2), secs(899)), 50_000);
        assert_eq!(plan.extra_latency(NodeId(2), secs(900)), 0);
        assert_eq!(plan.extra_latency(NodeId(3), secs(500)), 0);
    }

    #[test]
    fn overlapping_latency_faults_stack() {
        let plan = FaultPlan::none()
            .with_latency(LatencyFault { node: NodeId(1), extra: 10, from: 0, until: 100 })
            .with_latency(LatencyFault { node: NodeId(1), extra: 5, from: 50, until: 100 });
        assert_eq!(plan.extra_latency(NodeId(1), 60), 15);
        assert_eq!(plan.extra_latency(NodeId(1), 10), 10);
    }

    #[test]
    fn service_crash_is_permanent_from_at() {
        let plan = FaultPlan::none().with_dep(DepFault::ServiceCrash {
            node: NodeId(4),
            service: Service::NeutronAgent,
            at: secs(10),
        });
        assert!(!plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(9)));
        assert!(plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(10)));
        assert!(plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(1000)));
        assert!(!plan.is_service_down(NodeId(5), Service::NeutronAgent, secs(1000)));
    }

    #[test]
    fn ntp_stop_reports_unhealthy_watcher() {
        let plan = FaultPlan::none()
            .with_dep(DepFault::NtpStop { node: NodeId(3), at: secs(5) });
        assert!(plan.dependency_healthy(NodeId(3), Dependency::NtpAgent, secs(4)));
        assert!(!plan.dependency_healthy(NodeId(3), Dependency::NtpAgent, secs(6)));
        assert!(plan.dependency_healthy(
            NodeId(3),
            Dependency::ServiceProcess(Service::Cinder),
            secs(6)
        ));
    }

    #[test]
    fn resource_override_applies_in_window() {
        let plan = FaultPlan::none().with_resource(ResourceFault {
            node: NodeId(2),
            kind: ResourceKind::DiskFreeGb,
            value: 0.2,
            from: 0,
            until: SimTime::MAX,
        });
        assert_eq!(plan.resource_override(NodeId(2), ResourceKind::DiskFreeGb, secs(50)), Some(0.2));
        assert_eq!(plan.resource_override(NodeId(2), ResourceKind::CpuPercent, secs(50)), None);
    }
}

#[cfg(test)]
mod properties {
    //! Property tests over random fault plans: the latency stacking model
    //! and crash permanence are load-bearing for every scenario, so their
    //! invariants are pinned across the whole input space, not just the
    //! handful of hand-picked windows above.
    use super::*;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_latency_fault()(
            node in 0u8..6,
            extra in 1u64..100_000,
            from in 0u64..1_000_000u64,
            len in 1u64..1_000_000u64,
        ) -> LatencyFault {
            LatencyFault { node: NodeId(node), extra, from, until: from.saturating_add(len) }
        }
    }

    fn arb_plan() -> impl Strategy<Value = FaultPlan> {
        proptest::collection::vec(arb_latency_fault(), 0..8).prop_map(|latency| FaultPlan {
            latency,
            ..FaultPlan::default()
        })
    }

    proptest! {
        /// `extra_latency` at `t` equals the sum of exactly the faults
        /// whose half-open window contains `t` — stacking is additive and
        /// windows never leak.
        #[test]
        fn extra_latency_is_sum_of_active_windows(
            plan in arb_plan(),
            node in 0u8..6,
            t in 0u64..2_100_000u64,
        ) {
            let node = NodeId(node);
            let expected: SimTime = plan
                .latency
                .iter()
                .filter(|f| f.node == node && t >= f.from && t < f.until)
                .map(|f| f.extra)
                .sum();
            prop_assert_eq!(plan.extra_latency(node, t), expected);
        }

        /// Window edges are half-open for every fault in every plan: the
        /// fault contributes at `from` and has stopped at `until`.
        #[test]
        fn window_edges_are_half_open(plan in arb_plan()) {
            for f in &plan.latency {
                prop_assert!(plan.extra_latency(f.node, f.from) >= f.extra);
                let at_until = plan.extra_latency(f.node, f.until);
                let others: SimTime = plan
                    .latency
                    .iter()
                    .filter(|g| {
                        g.node == f.node
                            && !std::ptr::eq(*g, f)
                            && f.until >= g.from
                            && f.until < g.until
                    })
                    .map(|g| g.extra)
                    .sum();
                prop_assert_eq!(at_until, others, "no contribution at its own `until`");
            }
        }

        /// A crashed service never comes back: once `is_service_down`
        /// reports true at `t`, it reports true at every `t' >= t`.
        #[test]
        fn service_crash_is_permanent(
            node in 0u8..6,
            svc_idx in 0usize..Service::ALL.len(),
            at in 0u64..1_000_000u64,
            t1 in 0u64..2_000_000u64,
            dt in 0u64..2_000_000u64,
        ) {
            let svc = Service::ALL[svc_idx];
            let plan = FaultPlan::none()
                .with_dep(DepFault::ServiceCrash { node: NodeId(node), service: svc, at });
            let down1 = plan.is_service_down(NodeId(node), svc, t1);
            prop_assert_eq!(down1, t1 >= at);
            if down1 {
                prop_assert!(
                    plan.is_service_down(NodeId(node), svc, t1 + dt),
                    "crash must be permanent"
                );
            }
        }
    }
}

//! Fault injection plans.
//!
//! A [`FaultPlan`] is the simulated counterpart of everything the paper
//! does to its testbed to create faults: returning error statuses from
//! APIs, `tc`-style latency injection on a node's links, crashing service
//! processes (the §7.2.3 linuxbridge agent), stopping NTP (§7.2.4), and
//! exhausting node resources (the §7.2.1 full Glance disk, the §7.2.2 CPU
//! surge). The executor consults the plan while running operations; the
//! telemetry log reflects resource and dependency faults so root cause
//! analysis has something to find.

use crate::engine::SimTime;
use crate::resources::ResourceKind;
use gretel_model::{ApiId, Dependency, NodeId, OpInstanceId, Service};
use serde::{Deserialize, Serialize};

/// Error injected into an API invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedError {
    /// REST response with this HTTP status. `reason` overrides the
    /// canonical reason phrase (e.g. the paper's "No valid host was
    /// found" body).
    RestStatus {
        /// HTTP status code (>= 400 for an error).
        status: u16,
        /// Optional custom reason phrase.
        reason: Option<String>,
    },
    /// RPC reply carrying a serialized exception of this class.
    RpcException {
        /// Exception class name embedded in the oslo payload.
        class: String,
    },
}

/// Which operation instances an [`ApiFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Every instance invoking the API.
    AllInstances,
    /// Only the given instance.
    Instance(OpInstanceId),
}

impl FaultScope {
    fn matches(self, inst: OpInstanceId) -> bool {
        match self {
            FaultScope::AllInstances => true,
            FaultScope::Instance(i) => i == inst,
        }
    }
}

/// Inject an error into invocations of one API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiFault {
    /// The API to fail.
    pub api: ApiId,
    /// Which instances are affected.
    pub scope: FaultScope,
    /// Which occurrence of the API within the operation fails (0 = first).
    pub occurrence: u32,
    /// The error to return.
    pub error: InjectedError,
    /// Whether the operation aborts after the failed step (operational
    /// faults abort; performance-degrading errors may not).
    pub abort_op: bool,
}

/// `tc netem`-style extra latency on all traffic to/from a node during a
/// window (the Fig 8b experiment injects 50 ms on the Glance server for
/// 10 minutes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyFault {
    /// Affected node.
    pub node: NodeId,
    /// Extra one-way latency added to each affected step.
    pub extra: SimTime,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A software-dependency failure visible to the watchers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DepFault {
    /// A service process crashes on a node at `at` and stays down.
    ServiceCrash {
        /// Node the process runs on.
        node: NodeId,
        /// The crashed service.
        service: Service,
        /// Crash time.
        at: SimTime,
    },
    /// The NTP agent on a node stops at `at`.
    NtpStop {
        /// Affected node.
        node: NodeId,
        /// Stop time.
        at: SimTime,
    },
}

/// Override a node metric during a window (resource exhaustion / surge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceFault {
    /// Affected node.
    pub node: NodeId,
    /// Metric to override.
    pub kind: ResourceKind,
    /// Absolute value the metric is pinned to during the window.
    pub value: f64,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
}

/// A complete fault schedule for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// API-level error injections.
    pub api_faults: Vec<ApiFault>,
    /// Link latency injections.
    pub latency: Vec<LatencyFault>,
    /// Dependency failures.
    pub deps: Vec<DepFault>,
    /// Resource overrides.
    pub resources: Vec<ResourceFault>,
}

impl FaultPlan {
    /// An empty plan (fault-free run).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: add an API fault.
    pub fn with_api_fault(mut self, f: ApiFault) -> FaultPlan {
        self.api_faults.push(f);
        self
    }

    /// Builder-style: add a latency fault.
    pub fn with_latency(mut self, f: LatencyFault) -> FaultPlan {
        self.latency.push(f);
        self
    }

    /// Builder-style: add a dependency fault.
    pub fn with_dep(mut self, f: DepFault) -> FaultPlan {
        self.deps.push(f);
        self
    }

    /// Builder-style: add a resource fault.
    pub fn with_resource(mut self, f: ResourceFault) -> FaultPlan {
        self.resources.push(f);
        self
    }

    /// The error (if any) to inject for the `occurrence`-th invocation of
    /// `api` by instance `inst`.
    pub fn api_error(
        &self,
        api: ApiId,
        inst: OpInstanceId,
        occurrence: u32,
    ) -> Option<&ApiFault> {
        self.api_faults.iter().find(|f| {
            f.api == api && f.scope.matches(inst) && f.occurrence == occurrence
        })
    }

    /// Total extra latency injected on traffic touching `node` at time `t`.
    pub fn extra_latency(&self, node: NodeId, t: SimTime) -> SimTime {
        self.latency
            .iter()
            .filter(|f| f.node == node && t >= f.from && t < f.until)
            .map(|f| f.extra)
            .sum()
    }

    /// Whether `service` on `node` is down at time `t`.
    pub fn is_service_down(&self, node: NodeId, service: Service, t: SimTime) -> bool {
        self.deps.iter().any(|d| match d {
            DepFault::ServiceCrash { node: n, service: s, at } => {
                *n == node && *s == service && t >= *at
            }
            DepFault::NtpStop { node: n, at } => {
                *n == node && service == Service::Ntp && t >= *at
            }
        })
    }

    /// Whether a dependency is healthy on `node` at time `t` (what the
    /// watchers report).
    pub fn dependency_healthy(&self, node: NodeId, dep: Dependency, t: SimTime) -> bool {
        match dep {
            Dependency::ServiceProcess(s) => !self.is_service_down(node, s, t),
            Dependency::NtpAgent => !self.is_service_down(node, Service::Ntp, t),
            // Reachability of the shared MySQL / RabbitMQ singletons
            // follows the remote process: if it crashed anywhere, every
            // node's TCP watcher sees it unreachable.
            Dependency::MySqlReachable => !self.is_singleton_down(Service::MySql, t),
            Dependency::RabbitMqReachable => !self.is_singleton_down(Service::RabbitMq, t),
            Dependency::Libvirt => true,
        }
    }

    /// Whether a singleton infrastructure service is down on any node.
    pub fn is_singleton_down(&self, service: Service, t: SimTime) -> bool {
        self.deps.iter().any(|d| {
            matches!(d, DepFault::ServiceCrash { service: s, at, .. } if *s == service && t >= *at)
        })
    }

    /// Resource override value for `(node, kind)` at time `t`, if any.
    pub fn resource_override(&self, node: NodeId, kind: ResourceKind, t: SimTime) -> Option<f64> {
        self.resources
            .iter()
            .find(|f| f.node == node && f.kind == kind && t >= f.from && t < f.until)
            .map(|f| f.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::secs;

    #[test]
    fn api_fault_matching_respects_scope_and_occurrence() {
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ApiId(5),
            scope: FaultScope::Instance(OpInstanceId(3)),
            occurrence: 1,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        assert!(plan.api_error(ApiId(5), OpInstanceId(3), 1).is_some());
        assert!(plan.api_error(ApiId(5), OpInstanceId(3), 0).is_none());
        assert!(plan.api_error(ApiId(5), OpInstanceId(4), 1).is_none());
        assert!(plan.api_error(ApiId(6), OpInstanceId(3), 1).is_none());
    }

    #[test]
    fn all_instances_scope_matches_everyone() {
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ApiId(1),
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RpcException { class: "Boom".into() },
            abort_op: true,
        });
        assert!(plan.api_error(ApiId(1), OpInstanceId(0), 0).is_some());
        assert!(plan.api_error(ApiId(1), OpInstanceId(77), 0).is_some());
    }

    #[test]
    fn latency_window_is_half_open() {
        let plan = FaultPlan::none().with_latency(LatencyFault {
            node: NodeId(2),
            extra: 50_000,
            from: secs(300),
            until: secs(900),
        });
        assert_eq!(plan.extra_latency(NodeId(2), secs(299)), 0);
        assert_eq!(plan.extra_latency(NodeId(2), secs(300)), 50_000);
        assert_eq!(plan.extra_latency(NodeId(2), secs(899)), 50_000);
        assert_eq!(plan.extra_latency(NodeId(2), secs(900)), 0);
        assert_eq!(plan.extra_latency(NodeId(3), secs(500)), 0);
    }

    #[test]
    fn overlapping_latency_faults_stack() {
        let plan = FaultPlan::none()
            .with_latency(LatencyFault { node: NodeId(1), extra: 10, from: 0, until: 100 })
            .with_latency(LatencyFault { node: NodeId(1), extra: 5, from: 50, until: 100 });
        assert_eq!(plan.extra_latency(NodeId(1), 60), 15);
        assert_eq!(plan.extra_latency(NodeId(1), 10), 10);
    }

    #[test]
    fn service_crash_is_permanent_from_at() {
        let plan = FaultPlan::none().with_dep(DepFault::ServiceCrash {
            node: NodeId(4),
            service: Service::NeutronAgent,
            at: secs(10),
        });
        assert!(!plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(9)));
        assert!(plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(10)));
        assert!(plan.is_service_down(NodeId(4), Service::NeutronAgent, secs(1000)));
        assert!(!plan.is_service_down(NodeId(5), Service::NeutronAgent, secs(1000)));
    }

    #[test]
    fn ntp_stop_reports_unhealthy_watcher() {
        let plan = FaultPlan::none()
            .with_dep(DepFault::NtpStop { node: NodeId(3), at: secs(5) });
        assert!(plan.dependency_healthy(NodeId(3), Dependency::NtpAgent, secs(4)));
        assert!(!plan.dependency_healthy(NodeId(3), Dependency::NtpAgent, secs(6)));
        assert!(plan.dependency_healthy(
            NodeId(3),
            Dependency::ServiceProcess(Service::Cinder),
            secs(6)
        ));
    }

    #[test]
    fn resource_override_applies_in_window() {
        let plan = FaultPlan::none().with_resource(ResourceFault {
            node: NodeId(2),
            kind: ResourceKind::DiskFreeGb,
            value: 0.2,
            from: 0,
            until: SimTime::MAX,
        });
        assert_eq!(plan.resource_override(NodeId(2), ResourceKind::DiskFreeGb, secs(50)), Some(0.2));
        assert_eq!(plan.resource_override(NodeId(2), ResourceKind::CpuPercent, secs(50)), None);
    }
}

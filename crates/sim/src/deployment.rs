//! Deployment topology: service placement onto physical nodes.
//!
//! Mirrors the paper's testbed (§7, Experimental setup): 7 servers, of
//! which 3 are compute nodes, with OpenStack components spread across the
//! non-compute servers. Per-node service ports give REST connections
//! realistic 4-tuples, and the broker node gives RPCs their transit hop.

use gretel_model::{NodeId, Service};
use std::collections::HashMap;

/// A physical node and the services it hosts.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Node identity.
    pub id: NodeId,
    /// Human-readable role name.
    pub role: &'static str,
    /// Services placed on this node.
    pub services: Vec<Service>,
    /// Whether this is a compute node.
    pub is_compute: bool,
}

/// Static deployment topology.
#[derive(Debug, Clone)]
pub struct Deployment {
    nodes: Vec<NodeSpec>,
    placement: HashMap<Service, Vec<NodeId>>,
}

impl Deployment {
    /// The paper's 7-server topology: controller, network, image, storage
    /// and 3 compute nodes. NTP runs on every node; the broker and database
    /// live on the controller.
    pub fn standard() -> Deployment {
        use Service::*;
        let specs = vec![
            NodeSpec {
                id: NodeId(0),
                role: "controller",
                services: vec![Nova, Keystone, Horizon, RabbitMq, MySql, Ntp],
                is_compute: false,
            },
            NodeSpec {
                id: NodeId(1),
                role: "network",
                services: vec![Neutron, Ntp],
                is_compute: false,
            },
            NodeSpec {
                id: NodeId(2),
                role: "image",
                services: vec![Glance, Swift, Ntp],
                is_compute: false,
            },
            NodeSpec {
                id: NodeId(3),
                role: "storage",
                services: vec![Cinder, Ntp],
                is_compute: false,
            },
            NodeSpec {
                id: NodeId(4),
                role: "compute1",
                services: vec![NovaCompute, NeutronAgent, Ntp],
                is_compute: true,
            },
            NodeSpec {
                id: NodeId(5),
                role: "compute2",
                services: vec![NovaCompute, NeutronAgent, Ntp],
                is_compute: true,
            },
            NodeSpec {
                id: NodeId(6),
                role: "compute3",
                services: vec![NovaCompute, NeutronAgent, Ntp],
                is_compute: true,
            },
        ];
        Self::from_nodes(specs)
    }

    /// A scaled topology: the four controller-role nodes of
    /// [`Deployment::standard`] plus `n_compute` compute nodes. Used to
    /// study how GRETEL behaves as the deployment grows (the paper argues
    /// fingerprints are deployment-size independent, §7.1).
    pub fn scaled(n_compute: usize) -> Deployment {
        use Service::*;
        assert!((1..=250).contains(&n_compute), "1..=250 compute nodes");
        let mut specs = Deployment::standard()
            .nodes
            .into_iter()
            .filter(|n| !n.is_compute)
            .collect::<Vec<_>>();
        for i in 0..n_compute {
            specs.push(NodeSpec {
                id: NodeId((4 + i) as u8),
                role: "compute",
                services: vec![NovaCompute, NeutronAgent, Ntp],
                is_compute: true,
            });
        }
        Self::from_nodes(specs)
    }

    /// Build a deployment from explicit node specs.
    pub fn from_nodes(nodes: Vec<NodeSpec>) -> Deployment {
        let mut placement: HashMap<Service, Vec<NodeId>> = HashMap::new();
        for n in &nodes {
            for &s in &n.services {
                placement.entry(s).or_default().push(n.id);
            }
        }
        Deployment { nodes, placement }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The compute nodes.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.is_compute).map(|n| n.id).collect()
    }

    /// All nodes hosting `service` (empty if unplaced).
    pub fn nodes_of(&self, service: Service) -> &[NodeId] {
        self.placement.get(&service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The node hosting `service`, using `hint` to pick among replicas
    /// (e.g. which compute node runs a given instance). Panics when the
    /// service is unplaced — topology bugs should fail loudly.
    pub fn node_of(&self, service: Service, hint: u64) -> NodeId {
        let nodes = self.nodes_of(service);
        assert!(!nodes.is_empty(), "service {service} not placed in deployment");
        nodes[(hint % nodes.len() as u64) as usize]
    }

    /// Services placed on `node`.
    pub fn services_on(&self, node: NodeId) -> &[Service] {
        self.nodes
            .iter()
            .find(|n| n.id == node)
            .map(|n| n.services.as_slice())
            .unwrap_or(&[])
    }

    /// The node hosting the RabbitMQ broker.
    pub fn broker(&self) -> NodeId {
        self.node_of(Service::RabbitMq, 0)
    }

    /// Well-known TCP port of a service's API endpoint.
    pub fn service_port(service: Service) -> u16 {
        match service {
            Service::Horizon => 80,
            Service::Keystone => 5000,
            Service::Nova => 8774,
            Service::NovaCompute => 8775,
            Service::Neutron => 9696,
            Service::NeutronAgent => 9697,
            Service::Glance => 9292,
            Service::Cinder => 8776,
            Service::Swift => 8080,
            Service::RabbitMq => 5672,
            Service::MySql => 3306,
            Service::Ntp => 123,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matches_paper_testbed() {
        let d = Deployment::standard();
        assert_eq!(d.len(), 7, "paper: 7 servers");
        assert_eq!(d.compute_nodes().len(), 3, "paper: 3 compute nodes");
    }

    #[test]
    fn every_service_is_placed() {
        let d = Deployment::standard();
        for s in Service::ALL {
            assert!(!d.nodes_of(s).is_empty(), "{s} unplaced");
        }
    }

    #[test]
    fn ntp_runs_on_every_node() {
        let d = Deployment::standard();
        assert_eq!(d.nodes_of(Service::Ntp).len(), d.len());
    }

    #[test]
    fn hint_spreads_across_replicas() {
        let d = Deployment::standard();
        let picks: Vec<_> = (0..3).map(|h| d.node_of(Service::NovaCompute, h)).collect();
        assert_eq!(picks.len(), 3);
        let mut unique = picks.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 3, "three compute replicas should all be used");
    }

    #[test]
    fn singleton_services_ignore_hint() {
        let d = Deployment::standard();
        assert_eq!(d.node_of(Service::Neutron, 0), d.node_of(Service::Neutron, 99));
    }

    #[test]
    fn broker_is_on_controller() {
        let d = Deployment::standard();
        assert_eq!(d.broker(), NodeId(0));
    }

    #[test]
    fn service_ports_are_unique_per_service() {
        let mut ports: Vec<u16> = Service::ALL.iter().map(|&s| Deployment::service_port(s)).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), Service::ALL.len());
    }

    #[test]
    fn scaled_topology_grows_compute_only() {
        let d = Deployment::scaled(10);
        assert_eq!(d.compute_nodes().len(), 10);
        assert_eq!(d.len(), 14);
        // Every service still placed.
        for s in Service::ALL {
            assert!(!d.nodes_of(s).is_empty(), "{s} unplaced");
        }
        // Instances spread across all replicas.
        let picks: std::collections::HashSet<_> =
            (0..40).map(|h| d.node_of(Service::NovaCompute, h)).collect();
        assert_eq!(picks.len(), 10);
    }

    #[test]
    #[should_panic(expected = "compute nodes")]
    fn scaled_rejects_zero_compute() {
        Deployment::scaled(0);
    }

    #[test]
    fn services_on_unknown_node_is_empty() {
        let d = Deployment::standard();
        assert!(d.services_on(NodeId(99)).is_empty());
    }
}

//! Per-node resource dynamics and monitoring samples.
//!
//! Each node exposes collectd-style metrics (CPU, memory, free disk,
//! network throughput, disk I/O). Baselines depend on the node's role;
//! load contributed by in-flight operation steps moves CPU and network;
//! injected [`ResourceFault`](crate::faults::ResourceFault)s override or
//! shift a metric for a window — that is what root cause analysis later
//! detects as anomalous.

use crate::engine::SimTime;
use gretel_model::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of node metric, 1:1 with what the paper's collectd agents poll
/// (§5.1: "CPU, memory, network throughput, storage, and disk read/write").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU utilisation, percent (0–100).
    CpuPercent,
    /// Memory in use, MB.
    MemUsedMb,
    /// Free disk space, GB.
    DiskFreeGb,
    /// Network throughput, Mbps.
    NetMbps,
    /// Disk read/write operations per second.
    DiskIoOps,
}

impl ResourceKind {
    /// All kinds, in a stable order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::CpuPercent,
        ResourceKind::MemUsedMb,
        ResourceKind::DiskFreeGb,
        ResourceKind::NetMbps,
        ResourceKind::DiskIoOps,
    ];

    /// Metric name as reported by the monitoring agents.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::CpuPercent => "cpu",
            ResourceKind::MemUsedMb => "memory",
            ResourceKind::DiskFreeGb => "disk-free",
            ResourceKind::NetMbps => "net-throughput",
            ResourceKind::DiskIoOps => "disk-io",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One metric observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// Sample time.
    pub ts: SimTime,
    /// Node the sample is from.
    pub node: NodeId,
    /// Which metric.
    pub kind: ResourceKind,
    /// Metric value in the kind's unit.
    pub value: f64,
}

/// Role-dependent baseline metric levels.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// Idle CPU percent.
    pub cpu: f64,
    /// Resident memory, MB.
    pub mem_mb: f64,
    /// Free disk, GB.
    pub disk_free_gb: f64,
    /// Background network traffic, Mbps.
    pub net_mbps: f64,
    /// Background disk ops per second.
    pub disk_io: f64,
}

impl Baseline {
    /// Baseline for a node role (as named by
    /// [`crate::deployment::NodeSpec::role`]).
    pub fn for_role(role: &str) -> Baseline {
        match role {
            "controller" => Baseline { cpu: 12.0, mem_mb: 6_000.0, disk_free_gb: 400.0, net_mbps: 18.0, disk_io: 180.0 },
            "network" => Baseline { cpu: 8.0, mem_mb: 3_000.0, disk_free_gb: 450.0, net_mbps: 25.0, disk_io: 60.0 },
            "image" => Baseline { cpu: 5.0, mem_mb: 2_500.0, disk_free_gb: 800.0, net_mbps: 12.0, disk_io: 220.0 },
            "storage" => Baseline { cpu: 6.0, mem_mb: 2_800.0, disk_free_gb: 900.0, net_mbps: 10.0, disk_io: 300.0 },
            _ => Baseline { cpu: 10.0, mem_mb: 4_000.0, disk_free_gb: 350.0, net_mbps: 15.0, disk_io: 90.0 },
        }
    }

    fn value(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::CpuPercent => self.cpu,
            ResourceKind::MemUsedMb => self.mem_mb,
            ResourceKind::DiskFreeGb => self.disk_free_gb,
            ResourceKind::NetMbps => self.net_mbps,
            ResourceKind::DiskIoOps => self.disk_io,
        }
    }
}

/// Computes a metric value from baseline + load + jitter.
///
/// `active` is the number of in-flight operation steps currently handled
/// on the node; load mainly shows up in CPU and network.
pub fn sample_value<R: Rng>(
    rng: &mut R,
    baseline: &Baseline,
    kind: ResourceKind,
    active: usize,
) -> f64 {
    let base = baseline.value(kind);
    let load = active as f64;
    let raw = match kind {
        ResourceKind::CpuPercent => base + 0.9 * load,
        ResourceKind::MemUsedMb => base + 14.0 * load,
        ResourceKind::DiskFreeGb => base,
        ResourceKind::NetMbps => base + 0.6 * load,
        ResourceKind::DiskIoOps => base + 2.5 * load,
    };
    // Small multiplicative jitter so the series look like real telemetry.
    let jitter = 1.0 + rng.gen_range(-0.04..0.04);
    let v = raw * jitter;
    match kind {
        ResourceKind::CpuPercent => v.clamp(0.0, 100.0),
        _ => v.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cpu_is_clamped_under_extreme_load() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Baseline::for_role("network");
        let v = sample_value(&mut rng, &b, ResourceKind::CpuPercent, 100_000);
        assert!(v <= 100.0);
    }

    #[test]
    fn load_raises_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = Baseline::for_role("network");
        let idle: f64 = (0..64)
            .map(|_| sample_value(&mut rng, &b, ResourceKind::CpuPercent, 0))
            .sum::<f64>()
            / 64.0;
        let busy: f64 = (0..64)
            .map(|_| sample_value(&mut rng, &b, ResourceKind::CpuPercent, 40))
            .sum::<f64>()
            / 64.0;
        assert!(busy > idle + 20.0, "busy {busy:.1} vs idle {idle:.1}");
    }

    #[test]
    fn disk_free_is_load_independent() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = Baseline::for_role("image");
        let a = sample_value(&mut rng, &b, ResourceKind::DiskFreeGb, 0);
        let c = sample_value(&mut rng, &b, ResourceKind::DiskFreeGb, 50);
        assert!((a - c).abs() < b.disk_free_gb * 0.2);
    }

    #[test]
    fn roles_have_distinct_baselines() {
        let img = Baseline::for_role("image");
        let net = Baseline::for_role("network");
        assert!(img.disk_free_gb > net.disk_free_gb);
        assert!(net.net_mbps > img.net_mbps);
    }

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<_> = ResourceKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ResourceKind::ALL.len());
    }

    #[test]
    fn values_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = Baseline::for_role("controller");
        for kind in ResourceKind::ALL {
            for active in [0, 5, 500] {
                assert!(sample_value(&mut rng, &b, kind, active) >= 0.0);
            }
        }
    }
}

//! # gretel-sim — deterministic OpenStack deployment simulator
//!
//! GRETEL's evaluation requires a live OpenStack cluster; this crate is the
//! substitute substrate (see DESIGN.md §1). It simulates a 7-node
//! deployment running concurrent administrative operations and produces
//! exactly the two inputs GRETEL consumes:
//!
//! 1. the timestamped REST/RPC **message stream** a passive monitor would
//!    capture (interleaved across concurrent operations, with heartbeat /
//!    status / Keystone / idempotent-repeat noise), and
//! 2. collectd-style **telemetry**: per-node resource samples and
//!    dependency-watcher reports.
//!
//! Faults are injected through a [`faults::FaultPlan`]: API error statuses,
//! `tc`-style latency, service crashes, NTP stops and resource exhaustion.
//! [`scenario`] packages the paper's §3.1/§7.2 case studies;
//! [`stream`] generates the §7.4 stress streams.
//!
//! Everything is deterministic for a given seed.

#![warn(missing_docs)]

pub mod chaos;
pub mod deployment;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod report;
pub mod resources;
pub mod scenario;
pub mod stream;

pub use chaos::CrashSchedule;
pub use deployment::{Deployment, NodeSpec};
pub use engine::{ms, secs, EventQueue, SimTime, SECOND};
pub use executor::{Execution, InstanceOutcome, NoiseConfig, RunConfig, Runner, WatcherSample};
pub use faults::{
    ApiFault, DepFault, FaultPlan, FaultScope, InjectedError, LatencyFault, ResourceFault,
};
pub use report::{instance_timeline, summary};
pub use resources::{Baseline, ResourceKind, ResourceSample};
pub use scenario::{ExpectedCause, Scenario};
pub use stream::{StreamConfig, SyntheticStream};

//! # gretel-sim — deterministic OpenStack deployment simulator
//!
//! GRETEL's evaluation requires a live OpenStack cluster; this crate is the
//! substitute substrate (see DESIGN.md §1). It simulates a 7-node
//! deployment running concurrent administrative operations and produces
//! exactly the two inputs GRETEL consumes:
//!
//! 1. the timestamped REST/RPC **message stream** a passive monitor would
//!    capture (interleaved across concurrent operations, with heartbeat /
//!    status / Keystone / idempotent-repeat noise), and
//! 2. collectd-style **telemetry**: per-node resource samples and
//!    dependency-watcher reports.
//!
//! Faults are injected through a [`faults::FaultPlan`]: API error statuses,
//! `tc`-style latency, service crashes, NTP stops and resource exhaustion.
//! [`scenario`] packages the paper's §3.1/§7.2 case studies;
//! [`stream`] generates the §7.4 stress streams.
//!
//! Everything is deterministic for a given seed.
//!
//! # Example
//!
//! Run one operation on the standard deployment and observe its captured
//! message stream:
//!
//! ```
//! use gretel_model::{Catalog, OpSpecId, Workflows};
//! use gretel_sim::{Deployment, FaultPlan, RunConfig, Runner};
//!
//! let cat = Catalog::openstack();
//! let dep = Deployment::standard();
//! let wf = Workflows::new(cat.clone());
//! let spec = wf.vm_create_spec(OpSpecId(0));
//! let plan = FaultPlan::none();
//! let exec = Runner::new(cat, &dep, &plan, RunConfig::default()).run(&[&spec]);
//! assert!(!exec.messages.is_empty());
//! // Same seed, same stream: the simulator is deterministic.
//! assert!(exec.messages.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
//! ```

#![deny(missing_docs)]

pub mod cascade;
pub mod chaos;
pub mod deployment;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod report;
pub mod resources;
pub mod scenario;
pub mod stream;

pub use cascade::{
    cascade_suite, Cascade, CascadeRule, CascadeScenario, CascadeTruth, Primary, PrimaryFault,
    SecondaryEffect, TriggeredFault,
};
pub use chaos::CrashSchedule;
pub use deployment::{Deployment, NodeSpec};
pub use engine::{ms, secs, splitmix64, EventQueue, SimTime, SECOND};
pub use executor::{Execution, InstanceOutcome, NoiseConfig, RunConfig, Runner, WatcherSample};
pub use faults::{
    ApiFault, DepFault, FaultPlan, FaultScope, InjectedError, LatencyFault, PartitionFault,
    ResourceFault, TimedApiFault,
};
pub use report::{instance_timeline, summary};
pub use resources::{Baseline, ResourceKind, ResourceSample};
pub use scenario::{ExpectedCause, Scenario};
pub use stream::{StreamConfig, SyntheticStream};

//! Concurrent operation executor.
//!
//! Runs a set of operation instances against a [`Deployment`] under a
//! [`FaultPlan`], producing the interleaved, timestamped message stream a
//! passive network monitor would capture, plus the resource and
//! dependency-watcher telemetry the collectd-style agents would report.
//!
//! The executor is a discrete-event simulation: each instance is a little
//! state machine stepping through its spec; steps take sampled service
//! times (inflated by node load and injected latency); instances start
//! staggered across a window, so concurrent operations interleave exactly
//! the way the paper's operation-detection problem requires (§4,
//! "Challenge").

use crate::deployment::Deployment;
use crate::engine::{ms, EventQueue, SimTime, SECOND};
use crate::faults::{FaultPlan, InjectedError};
use crate::resources::{sample_value, Baseline, ResourceKind, ResourceSample};
use gretel_model::message::{
    reason_phrase, render_rest_request_payload, render_rest_response_payload, render_rpc_payload,
};
use gretel_model::{
    ApiId, ApiKind, Catalog, ConnKey, Dependency, Direction, HttpMethod, Message, MessageId,
    NodeId, OpInstanceId, OperationSpec, ProjectId, RpcStyle, Service, WireKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One dependency-watcher observation (paper §5.1 / §6: TCP reachability
/// and process liveness checks).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatcherSample {
    /// Sample time.
    pub ts: SimTime,
    /// Node being watched.
    pub node: NodeId,
    /// The dependency checked.
    pub dep: Dependency,
    /// Whether it was healthy.
    pub healthy: bool,
}

/// Background-noise generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Master switch.
    pub enabled: bool,
    /// Heartbeat RPC period per agent (`report_state`).
    pub heartbeat_interval: SimTime,
    /// Status-update RPC period per compute node.
    pub status_interval: SimTime,
    /// Emit Keystone auth chatter at each operation start.
    pub keystone_per_op: bool,
    /// Probability that a successful GET is immediately repeated
    /// (idempotent repeats the noise filter must prune).
    pub get_repeat_prob: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            enabled: true,
            heartbeat_interval: SECOND,
            status_interval: 10 * SECOND,
            keystone_per_op: true,
            get_repeat_prob: 0.10,
        }
    }
}

impl NoiseConfig {
    /// Noise fully disabled — the paper's "controlled setting" used for
    /// fingerprinting still *captures* noise; this is for tests that want
    /// pure operation traffic.
    pub fn off() -> NoiseConfig {
        NoiseConfig { enabled: false, ..NoiseConfig::default() }
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// RNG seed; every run with the same seed, specs, deployment and plan
    /// is bit-identical.
    pub seed: u64,
    /// Instance starts are sampled uniformly in `[0, start_window]`
    /// (closed-loop batch). Ignored when `poisson_rate` is set.
    pub start_window: SimTime,
    /// Open-loop arrivals: when set, instances arrive as a Poisson
    /// process at this rate (operations/second) instead of the uniform
    /// start window — the shape of real tenant traffic.
    pub poisson_rate: Option<f64>,
    /// Uniform think-time range between steps, microseconds.
    pub think_time: (SimTime, SimTime),
    /// Resource/watcher polling period (paper: collectd at 1 s).
    pub poll_interval: SimTime,
    /// Node concurrency capacity before queueing delay kicks in.
    pub load_capacity: usize,
    /// Noise generation.
    pub noise: NoiseConfig,
    /// Propagate a correlation id on every operation message (the
    /// `correlation_id` OpenStack was introducing; paper §5.3.1 notes
    /// GRETEL can exploit it once deployed). Off by default — LIBERTY-era
    /// deployments did not have it.
    pub correlation_ids: bool,
    /// Number of tenant projects; instance `i` runs as project
    /// `i % projects`. Lets [`crate::faults::FaultScope::Project`] target
    /// one tenant's traffic. Values `0` and `1` both mean a single tenant.
    pub projects: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            start_window: 2 * SECOND,
            poisson_rate: None,
            think_time: (ms(1), ms(8)),
            poll_interval: SECOND,
            load_capacity: 48,
            noise: NoiseConfig::default(),
            correlation_ids: false,
            projects: 1,
        }
    }
}

/// Outcome of one operation instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceOutcome {
    /// Instance id (index into the spec list passed to [`Runner::run`]).
    pub inst: OpInstanceId,
    /// Name of the executed spec.
    pub spec_name: String,
    /// Start time.
    pub started_at: SimTime,
    /// Completion or abort time.
    pub finished_at: SimTime,
    /// Whether the operation aborted on a fault.
    pub aborted: bool,
    /// The API whose invocation failed, if any.
    pub failed_api: Option<ApiId>,
    /// Tenant project the instance ran as (`inst % RunConfig::projects`).
    pub project: ProjectId,
}

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Captured messages, in timestamp order.
    pub messages: Vec<Message>,
    /// Resource telemetry.
    pub resources: Vec<ResourceSample>,
    /// Dependency-watcher telemetry.
    pub watchers: Vec<WatcherSample>,
    /// Per-instance outcomes.
    pub outcomes: Vec<InstanceOutcome>,
    /// Total simulated duration.
    pub duration: SimTime,
}

impl Execution {
    /// Messages excluding ground-truth noise (for assertions in tests).
    pub fn operation_messages(&self) -> impl Iterator<Item = &Message> {
        self.messages.iter().filter(|m| !m.truth_noise)
    }

    /// Wire bytes across all messages (payloads only).
    pub fn total_payload_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }
}

#[derive(Debug)]
enum Ev {
    /// Instance enters the system (auth chatter + first step).
    Start { inst: usize },
    /// Fire the instance's current step.
    Fire { inst: usize },
    /// The in-flight step's service time elapsed.
    StepDone { inst: usize },
    /// Telemetry sampling tick.
    Poll,
    /// Agent heartbeat tick.
    Heartbeat { node: NodeId, service: Service },
    /// Compute-node status-update tick.
    StatusUpdate { node: NodeId },
}

struct Pending {
    api: ApiId,
    src_service: Service,
    dst_service: Service,
    src_node: NodeId,
    dst_node: NodeId,
    conn: ConnKey,
    uri: String,
    method: Option<HttpMethod>,
    rpc_method: Option<String>,
    rpc_msg_id: Option<u64>,
    rpc_style: Option<RpcStyle>,
    error: Option<InjectedError>,
    abort: bool,
}

struct InstState {
    spec_idx: usize,
    step: usize,
    occurrences: HashMap<ApiId, u32>,
    pending: Option<Pending>,
    started_at: SimTime,
    done: bool,
    aborted: bool,
    failed_api: Option<ApiId>,
}

struct RunState {
    out: Execution,
    active: HashMap<NodeId, usize>,
    next_msg_id: u64,
    next_rpc_id: u64,
    remaining: usize,
    correlation_ids: bool,
    projects: u32,
}

impl RunState {
    fn emit(&mut self, mut msg: Message) {
        msg.id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        if self.correlation_ids && !msg.truth_noise {
            // The deployment propagates one correlation id per operation.
            msg.correlation_id = msg.truth_op.map(|o| o.0);
        }
        // Every call an operation makes is scoped to its tenant's Keystone
        // token, so idempotent GET repeats of the op carry the project too;
        // pure background traffic (heartbeats, token issuance) has none.
        msg.project =
            msg.truth_op.map(|o| ProjectId(o.0 as u32 % self.projects.max(1)));
        debug_assert!(
            self.out.messages.last().map(|m| m.ts_us <= msg.ts_us).unwrap_or(true),
            "messages must be emitted in time order"
        );
        self.out.messages.push(msg);
    }
}

/// Runs operation instances to completion under a fault plan.
pub struct Runner<'a> {
    catalog: Arc<Catalog>,
    deployment: &'a Deployment,
    plan: &'a FaultPlan,
    config: RunConfig,
}

impl<'a> Runner<'a> {
    /// Create a runner.
    pub fn new(
        catalog: Arc<Catalog>,
        deployment: &'a Deployment,
        plan: &'a FaultPlan,
        config: RunConfig,
    ) -> Runner<'a> {
        Runner { catalog, deployment, plan, config }
    }

    /// Tenant project of instance `inst` (round-robin over
    /// [`RunConfig::projects`]).
    fn project_of(&self, inst: usize) -> ProjectId {
        ProjectId(inst as u32 % self.config.projects.max(1))
    }

    /// Execute one instance of each spec in `specs`. Instance `i` gets
    /// [`OpInstanceId`]`(i)`; messages come back in timestamp order.
    pub fn run(&self, specs: &[&OperationSpec]) -> Execution {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xC0FF_EE00_D15E_A5E5);
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut st = RunState {
            out: Execution {
                messages: Vec::new(),
                resources: Vec::new(),
                watchers: Vec::new(),
                outcomes: Vec::new(),
                duration: 0,
            },
            active: HashMap::new(),
            next_msg_id: 0,
            next_rpc_id: 1,
            remaining: specs.len(),
            correlation_ids: self.config.correlation_ids,
            projects: self.config.projects,
        };
        let mut insts: Vec<InstState> = (0..specs.len())
            .map(|i| InstState {
                spec_idx: i,
                step: 0,
                occurrences: HashMap::new(),
                pending: None,
                started_at: 0,
                done: false,
                aborted: false,
                failed_api: None,
            })
            .collect();
        let baselines: HashMap<NodeId, Baseline> = self
            .deployment
            .nodes()
            .iter()
            .map(|n| (n.id, Baseline::for_role(n.role)))
            .collect();

        if let Some(rate) = self.config.poisson_rate {
            assert!(rate > 0.0, "poisson rate must be positive");
            // Open-loop: exponential interarrival times.
            let mut t = 0u64;
            for i in 0..specs.len() {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let gap = (-u.ln() / rate * 1e6) as u64;
                t += gap;
                q.schedule(t, Ev::Start { inst: i });
            }
        } else {
            for i in 0..specs.len() {
                let at = if self.config.start_window == 0 {
                    0
                } else {
                    rng.gen_range(0..=self.config.start_window)
                };
                q.schedule(at, Ev::Start { inst: i });
            }
        }
        q.schedule(0, Ev::Poll);
        if self.config.noise.enabled {
            for node in self.deployment.nodes() {
                for &svc in &node.services {
                    if matches!(svc, Service::NovaCompute | Service::NeutronAgent | Service::Cinder)
                    {
                        let jitter = rng.gen_range(0..self.config.noise.heartbeat_interval);
                        q.schedule(jitter, Ev::Heartbeat { node: node.id, service: svc });
                    }
                }
                if node.is_compute {
                    let jitter = rng.gen_range(0..self.config.noise.status_interval);
                    q.schedule(jitter, Ev::StatusUpdate { node: node.id });
                }
            }
        }

        while let Some((t, ev)) = q.pop() {
            match ev {
                Ev::Start { inst } => {
                    insts[inst].started_at = t;
                    if self.config.noise.enabled && self.config.noise.keystone_per_op {
                        self.emit_keystone_noise(&mut st, t, inst as u64);
                    }
                    self.fire_step(specs, &mut insts, inst, t, &mut st, &mut q, &mut rng);
                }
                Ev::Fire { inst } => {
                    self.fire_step(specs, &mut insts, inst, t, &mut st, &mut q, &mut rng);
                }
                Ev::StepDone { inst } => {
                    self.complete_step(specs, &mut insts, inst, t, &mut st, &mut rng);
                    let s = &mut insts[inst];
                    if s.done {
                        st.out.outcomes.push(InstanceOutcome {
                            inst: OpInstanceId(inst as u64),
                            spec_name: specs[s.spec_idx].name.clone(),
                            started_at: s.started_at,
                            finished_at: t,
                            aborted: s.aborted,
                            failed_api: s.failed_api,
                            project: self.project_of(inst),
                        });
                        st.remaining -= 1;
                    } else {
                        let think =
                            rng.gen_range(self.config.think_time.0..=self.config.think_time.1);
                        q.schedule(t + think, Ev::Fire { inst });
                    }
                }
                Ev::Poll => {
                    self.poll(&mut st, t, &mut rng, &baselines);
                    if st.remaining > 0 {
                        q.schedule(t + self.config.poll_interval, Ev::Poll);
                    }
                }
                Ev::Heartbeat { node, service } => {
                    self.emit_heartbeat(&mut st, t, node, service);
                    if st.remaining > 0 {
                        q.schedule(
                            t + self.config.noise.heartbeat_interval,
                            Ev::Heartbeat { node, service },
                        );
                    }
                }
                Ev::StatusUpdate { node } => {
                    self.emit_status_update(&mut st, t, node);
                    if st.remaining > 0 {
                        q.schedule(t + self.config.noise.status_interval, Ev::StatusUpdate { node });
                    }
                }
            }
        }

        let mut out = st.out;
        out.duration = out
            .messages
            .last()
            .map(|m| m.ts_us)
            .into_iter()
            .chain(out.resources.last().map(|r| r.ts))
            .max()
            .unwrap_or(0);
        out.outcomes.sort_by_key(|o| o.inst);
        out
    }

    /// Fire the current step of `inst`: emit the request message, decide
    /// success/failure, and schedule completion after the sampled service
    /// time.
    #[allow(clippy::too_many_arguments)]
    fn fire_step(
        &self,
        specs: &[&OperationSpec],
        insts: &mut [InstState],
        inst: usize,
        t: SimTime,
        st: &mut RunState,
        q: &mut EventQueue<Ev>,
        rng: &mut StdRng,
    ) {
        let spec = specs[insts[inst].spec_idx];
        let step_idx = insts[inst].step;
        if step_idx >= spec.steps.len() {
            insts[inst].done = true;
            // Degenerate empty spec: synthesize a StepDone so accounting
            // in the main loop stays uniform.
            q.schedule(t, Ev::StepDone { inst });
            insts[inst].step = usize::MAX;
            return;
        }
        let step = &spec.steps[step_idx];
        let def = self.catalog.get(step.api);
        let occ = *insts[inst]
            .occurrences
            .entry(step.api)
            .and_modify(|c| *c += 1)
            .or_insert(0);

        let hint = inst as u64;
        let src_node = self.deployment.node_of(step.src, hint);
        let dst_node = self.deployment.node_of(step.dst, hint);
        let inst_id = OpInstanceId(inst as u64);

        // Decide the step's fate. Infrastructure outages dominate: every
        // RPC transits RabbitMQ and every API service is backed by MySQL
        // (paper §2, Dependencies).
        let broker_down = def.is_rpc()
            && self.plan.is_singleton_down(Service::RabbitMq, t);
        let db_down = !def.is_rpc()
            && !step.dst.is_infrastructure()
            && self.plan.is_singleton_down(Service::MySql, t);
        let project = self.project_of(inst);
        let (error, abort) = if let Some(f) =
            self.plan.api_error(step.api, inst_id, project, occ, t)
        {
            (Some(f.error.clone()), f.abort_op)
        } else if self.plan.partition_cut(step.src, step.dst, inst_id, t) {
            // The link between the two services is (possibly partially)
            // severed: the caller's connection attempt or RPC cast times
            // out. Both processes stay up, so no watcher ever flags this —
            // the cascade RCA graph walk is what has to find it.
            let e = match &def.kind {
                ApiKind::Rest { .. } => InjectedError::RestStatus { status: 503, reason: None },
                ApiKind::Rpc { .. } => {
                    InjectedError::RpcException { class: "MessagingTimeout".to_string() }
                }
            };
            (Some(e), true)
        } else if broker_down {
            (Some(InjectedError::RpcException { class: "MessagingTimeout".to_string() }), true)
        } else if db_down {
            (Some(InjectedError::RestStatus { status: 500, reason: Some("DBConnectionError".into()) }), true)
        } else if self.plan.is_service_down(dst_node, step.dst, t) {
            let e = match &def.kind {
                ApiKind::Rest { .. } => {
                    InjectedError::RestStatus { status: 503, reason: None }
                }
                ApiKind::Rpc { .. } => {
                    InjectedError::RpcException { class: "MessagingTimeout".to_string() }
                }
            };
            (Some(e), true)
        } else {
            (None, false)
        };

        // Sample service time: class base x lognormal jitter x load factor
        // + tc-style injected latency on both ends, both directions.
        let base = match step.latency {
            gretel_model::LatencyClass::Fast => ms(3),
            gretel_model::LatencyClass::Medium => ms(25),
            gretel_model::LatencyClass::Slow => ms(120),
            gretel_model::LatencyClass::Boot => ms(1200),
        };
        let jitter = lognormal(rng, 0.25);
        let load = *st.active.get(&dst_node).unwrap_or(&0);
        let load_factor = if load > self.config.load_capacity {
            1.0 + 0.8 * (load - self.config.load_capacity) as f64
                / self.config.load_capacity as f64
        } else {
            1.0
        };
        let injected =
            2 * (self.plan.extra_latency(src_node, t) + self.plan.extra_latency(dst_node, t));
        let service_time = ((base as f64 * jitter * load_factor) as SimTime).max(100) + injected;

        *st.active.entry(dst_node).or_insert(0) += 1;

        match &def.kind {
            ApiKind::Rest { method, uri } => {
                let concrete = concretize(uri, inst as u64, occ);
                let sport = 10_000 + ((inst * 131 + step_idx * 7) % 50_000) as u16;
                let conn = ConnKey {
                    src: src_node,
                    src_port: sport,
                    dst: dst_node,
                    dst_port: Deployment::service_port(step.dst),
                };
                st.emit(Message {
                    id: MessageId(0),
                    ts_us: t,
                    src_node,
                    dst_node,
                    src_service: step.src,
                    dst_service: step.dst,
                    api: step.api,
                    direction: Direction::Request,
                    wire: WireKind::Rest { method: *method, uri: concrete.clone(), status: None },
                    conn,
                    payload: render_rest_request_payload(
                        *method,
                        &concrete,
                        step.request_bytes as usize,
                    ),
                    correlation_id: None,
                    project: None,
                    truth_op: Some(inst_id),
                    truth_noise: false,
                });
                insts[inst].pending = Some(Pending {
                    api: step.api,
                    src_service: step.src,
                    dst_service: step.dst,
                    src_node,
                    dst_node,
                    conn,
                    uri: concrete,
                    method: Some(*method),
                    rpc_method: None,
                    rpc_msg_id: None,
                    rpc_style: None,
                    error,
                    abort,
                });
            }
            ApiKind::Rpc { method, style } => {
                let msg_id = st.next_rpc_id;
                st.next_rpc_id += 1;
                let broker = self.deployment.broker();
                let conn = ConnKey {
                    src: src_node,
                    src_port: 20_000 + (inst % 40_000) as u16,
                    dst: broker,
                    dst_port: Deployment::service_port(Service::RabbitMq),
                };
                st.emit(Message {
                    id: MessageId(0),
                    ts_us: t,
                    src_node,
                    dst_node: broker,
                    src_service: step.src,
                    dst_service: step.dst,
                    api: step.api,
                    direction: Direction::Request,
                    wire: WireKind::Rpc { method: method.clone(), msg_id, error: None },
                    conn,
                    payload: render_rpc_payload(method, msg_id, None, step.request_bytes as usize),
                    correlation_id: None,
                    project: None,
                    truth_op: Some(inst_id),
                    truth_noise: false,
                });
                insts[inst].pending = Some(Pending {
                    api: step.api,
                    src_service: step.src,
                    dst_service: step.dst,
                    src_node,
                    dst_node,
                    conn,
                    uri: String::new(),
                    method: None,
                    rpc_method: Some(method.clone()),
                    rpc_msg_id: Some(msg_id),
                    rpc_style: Some(*style),
                    error,
                    abort,
                });
            }
        }
        q.schedule(t + service_time, Ev::StepDone { inst });
    }

    /// Complete the in-flight step of `inst`: emit the response (REST and
    /// RPC calls), relay RPC errors to the dashboard as REST errors
    /// (paper §5.3.1 "Improving precision"), maybe emit an idempotent GET
    /// repeat, and advance or abort the instance.
    fn complete_step(
        &self,
        specs: &[&OperationSpec],
        insts: &mut [InstState],
        inst: usize,
        t: SimTime,
        st: &mut RunState,
        rng: &mut StdRng,
    ) {
        let Some(p) = insts[inst].pending.take() else {
            // Empty-spec sentinel (fire_step marked done without pending).
            return;
        };
        if let Some(a) = st.active.get_mut(&p.dst_node) {
            *a = a.saturating_sub(1);
        }
        let inst_id = OpInstanceId(inst as u64);
        let spec = specs[insts[inst].spec_idx];

        match (&p.method, &p.rpc_style) {
            (Some(method), _) => {
                // REST response.
                let status = match &p.error {
                    Some(InjectedError::RestStatus { status, .. }) => *status,
                    Some(InjectedError::RpcException { .. }) => 500,
                    None => success_status(*method),
                };
                let reason = match &p.error {
                    Some(InjectedError::RestStatus { reason: Some(r), .. }) => r.clone(),
                    _ => reason_phrase(status).to_string(),
                };
                let body = if status >= 400 { 256 } else { response_body_len(*method) };
                st.emit(Message {
                    id: MessageId(0),
                    ts_us: t,
                    src_node: p.dst_node,
                    dst_node: p.src_node,
                    src_service: p.dst_service,
                    dst_service: p.src_service,
                    api: p.api,
                    direction: Direction::Response,
                    wire: WireKind::Rest {
                        method: *method,
                        uri: p.uri.clone(),
                        status: Some(status),
                    },
                    conn: p.conn.reversed(),
                    payload: render_rest_response_payload(status, &reason, body),
                    correlation_id: None,
                    project: None,
                    truth_op: Some(inst_id),
                    truth_noise: false,
                });
                // Idempotent repeat noise: the client re-GETs the same URI.
                if p.error.is_none()
                    && method.is_idempotent_read()
                    && self.config.noise.enabled
                    && rng.gen_bool(self.config.noise.get_repeat_prob)
                {
                    self.emit_get_repeat(st, t, &p, inst_id);
                }
            }
            (None, Some(RpcStyle::Call)) => {
                let err_class = match &p.error {
                    Some(InjectedError::RpcException { class }) => Some(class.clone()),
                    Some(InjectedError::RestStatus { .. }) => Some("RemoteError".to_string()),
                    None => None,
                };
                let msg_id = p.rpc_msg_id.expect("rpc pending has msg id");
                let method = p.rpc_method.clone().expect("rpc pending has method");
                st.emit(Message {
                    id: MessageId(0),
                    ts_us: t,
                    src_node: p.dst_node,
                    dst_node: p.src_node,
                    src_service: p.dst_service,
                    dst_service: p.src_service,
                    api: p.api,
                    direction: Direction::Response,
                    wire: WireKind::Rpc {
                        method: method.clone(),
                        msg_id,
                        error: err_class.clone(),
                    },
                    conn: p.conn.reversed(),
                    payload: render_rpc_payload(&method, msg_id, err_class.as_deref(), 128),
                    correlation_id: None,
                    project: None,
                    truth_op: Some(inst_id),
                    truth_noise: false,
                });
            }
            (None, Some(RpcStyle::Cast)) => {
                // No reply on the wire; failures surface via the REST relay
                // below.
            }
            (None, None) => unreachable!("pending step is neither REST nor RPC"),
        }

        // RPC errors are "typically communicated back to the dashboard or
        // CLI via REST calls" — emit the status-poll REST error pair.
        let rpc_failed = p.method.is_none() && p.error.is_some();
        if rpc_failed {
            self.emit_error_relay(st, t, spec, inst_id, inst);
        }

        if p.error.is_some() {
            insts[inst].failed_api = Some(p.api);
        }
        if p.error.is_some() && p.abort {
            insts[inst].aborted = true;
            insts[inst].done = true;
            return;
        }
        insts[inst].step += 1;
        if insts[inst].step >= spec.steps.len() {
            insts[inst].done = true;
        }
    }

    /// The dashboard polls the operation's origin API and receives the
    /// relayed error.
    fn emit_error_relay(
        &self,
        st: &mut RunState,
        t: SimTime,
        spec: &OperationSpec,
        inst_id: OpInstanceId,
        inst: usize,
    ) {
        let Some(origin) = spec.steps.iter().find(|s| {
            matches!(self.catalog.get(s.api).kind, ApiKind::Rest { .. })
        }) else {
            return;
        };
        let ApiKind::Rest { uri, .. } = &self.catalog.get(origin.api).kind else {
            return;
        };
        let src_node = self.deployment.node_of(Service::Horizon, inst as u64);
        let dst_node = self.deployment.node_of(origin.dst, inst as u64);
        let concrete = concretize(uri, inst as u64, 0);
        let conn = ConnKey {
            src: src_node,
            src_port: 30_000 + (inst % 30_000) as u16,
            dst: dst_node,
            dst_port: Deployment::service_port(origin.dst),
        };
        // The poll is a GET on the origin resource regardless of the origin
        // method — model it as the same API for fingerprint purposes.
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node,
            dst_node,
            src_service: Service::Horizon,
            dst_service: origin.dst,
            api: origin.api,
            direction: Direction::Request,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: concrete.clone(), status: None },
            conn,
            payload: render_rest_request_payload(HttpMethod::Get, &concrete, 0),
            correlation_id: None,
            project: None,
            truth_op: Some(inst_id),
            truth_noise: false,
        });
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: dst_node,
            dst_node: src_node,
            src_service: origin.dst,
            dst_service: Service::Horizon,
            api: origin.api,
            direction: Direction::Response,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: concrete.clone(), status: Some(500) },
            conn: conn.reversed(),
            payload: render_rest_response_payload(500, "Internal Server Error", 200),
            correlation_id: None,
            project: None,
            truth_op: Some(inst_id),
            truth_noise: false,
        });
    }

    fn emit_get_repeat(&self, st: &mut RunState, t: SimTime, p: &Pending, inst_id: OpInstanceId) {
        let method = p.method.expect("repeat only for REST");
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: p.src_node,
            dst_node: p.dst_node,
            src_service: p.src_service,
            dst_service: p.dst_service,
            api: p.api,
            direction: Direction::Request,
            wire: WireKind::Rest { method, uri: p.uri.clone(), status: None },
            conn: p.conn,
            payload: render_rest_request_payload(method, &p.uri, 0),
            correlation_id: None,
            project: None,
            truth_op: Some(inst_id),
            truth_noise: true,
        });
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: p.dst_node,
            dst_node: p.src_node,
            src_service: p.dst_service,
            dst_service: p.src_service,
            api: p.api,
            direction: Direction::Response,
            wire: WireKind::Rest { method, uri: p.uri.clone(), status: Some(success_status(method)) },
            conn: p.conn.reversed(),
            payload: render_rest_response_payload(success_status(method), "OK", 256),
            correlation_id: None,
            project: None,
            truth_op: Some(inst_id),
            truth_noise: true,
        });
    }

    fn emit_keystone_noise(&self, st: &mut RunState, t: SimTime, hint: u64) {
        let Some(api) = self
            .catalog
            .iter()
            .find(|d| d.noise == Some(gretel_model::NoiseClass::KeystoneCommon))
            .map(|d| d.id)
        else {
            return;
        };
        let src_node = self.deployment.node_of(Service::Horizon, hint);
        let dst_node = self.deployment.node_of(Service::Keystone, hint);
        let conn = ConnKey {
            src: src_node,
            src_port: 40_000 + (hint % 20_000) as u16,
            dst: dst_node,
            dst_port: Deployment::service_port(Service::Keystone),
        };
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node,
            dst_node,
            src_service: Service::Horizon,
            dst_service: Service::Keystone,
            api,
            direction: Direction::Request,
            wire: WireKind::Rest {
                method: HttpMethod::Post,
                uri: "/v3/auth/tokens".to_string(),
                status: None,
            },
            conn,
            payload: render_rest_request_payload(HttpMethod::Post, "/v3/auth/tokens", 300),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: true,
        });
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: dst_node,
            dst_node: src_node,
            src_service: Service::Keystone,
            dst_service: Service::Horizon,
            api,
            direction: Direction::Response,
            wire: WireKind::Rest {
                method: HttpMethod::Post,
                uri: "/v3/auth/tokens".to_string(),
                status: Some(201),
            },
            conn: conn.reversed(),
            payload: render_rest_response_payload(201, "Created", 900),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: true,
        });
    }

    fn emit_heartbeat(&self, st: &mut RunState, t: SimTime, node: NodeId, service: Service) {
        let Some(api) = self
            .catalog
            .iter()
            .find(|d| {
                d.noise == Some(gretel_model::NoiseClass::Heartbeat) && d.service == service
            })
            .map(|d| d.id)
        else {
            return;
        };
        let msg_id = st.next_rpc_id;
        st.next_rpc_id += 1;
        let broker = self.deployment.broker();
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: node,
            dst_node: broker,
            src_service: service,
            dst_service: service.controller(),
            api,
            direction: Direction::Request,
            wire: WireKind::Rpc { method: "report_state".to_string(), msg_id, error: None },
            conn: ConnKey {
                src: node,
                src_port: 21_000,
                dst: broker,
                dst_port: Deployment::service_port(Service::RabbitMq),
            },
            payload: render_rpc_payload("report_state", msg_id, None, 200),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: true,
        });
    }

    fn emit_status_update(&self, st: &mut RunState, t: SimTime, node: NodeId) {
        let Some(api) = self
            .catalog
            .iter()
            .find(|d| {
                d.noise == Some(gretel_model::NoiseClass::StatusUpdate)
                    && d.service == Service::NovaCompute
            })
            .map(|d| d.id)
        else {
            return;
        };
        let msg_id = st.next_rpc_id;
        st.next_rpc_id += 1;
        let broker = self.deployment.broker();
        st.emit(Message {
            id: MessageId(0),
            ts_us: t,
            src_node: node,
            dst_node: broker,
            src_service: Service::NovaCompute,
            dst_service: Service::Nova,
            api,
            direction: Direction::Request,
            wire: WireKind::Rpc {
                method: "update_available_resource".to_string(),
                msg_id,
                error: None,
            },
            conn: ConnKey {
                src: node,
                src_port: 21_001,
                dst: broker,
                dst_port: Deployment::service_port(Service::RabbitMq),
            },
            payload: render_rpc_payload("update_available_resource", msg_id, None, 600),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: true,
        });
    }

    fn poll(
        &self,
        st: &mut RunState,
        t: SimTime,
        rng: &mut StdRng,
        baselines: &HashMap<NodeId, Baseline>,
    ) {
        for node in self.deployment.nodes() {
            let baseline = &baselines[&node.id];
            let active = *st.active.get(&node.id).unwrap_or(&0);
            for kind in ResourceKind::ALL {
                let value = match self.plan.resource_override(node.id, kind, t) {
                    Some(v) => v,
                    None => sample_value(rng, baseline, kind, active),
                };
                st.out.resources.push(ResourceSample { ts: t, node: node.id, kind, value });
            }
            // Watchers: each hosted service process, NTP, and reachability
            // of the shared infrastructure.
            for &svc in &node.services {
                let dep = if svc == Service::Ntp {
                    Dependency::NtpAgent
                } else {
                    Dependency::ServiceProcess(svc)
                };
                let healthy = self.plan.dependency_healthy(node.id, dep, t)
                    && !self.plan.is_service_down(node.id, svc, t);
                st.out.watchers.push(WatcherSample { ts: t, node: node.id, dep, healthy });
            }
            for dep in [Dependency::MySqlReachable, Dependency::RabbitMqReachable] {
                let healthy = self.plan.dependency_healthy(node.id, dep, t);
                st.out.watchers.push(WatcherSample { ts: t, node: node.id, dep, healthy });
            }
        }
    }
}

/// Sample `exp(N(0, sigma))` with Box–Muller (keeps us off extra deps).
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

/// Substitute `{placeholders}` in a URI template with an instance-scoped
/// pseudo-id. Using the same id for every placeholder of an instance
/// mirrors real traffic (all steps of one VM-create name the same server
/// UUID), which is exactly what identifier-stitching baselines like
/// HANSEL rely on.
fn concretize(template: &str, inst: u64, _occurrence: u32) -> String {
    let mut out = String::with_capacity(template.len() + 8);
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' {
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
            }
            out.push_str(&format!("i{inst:x}"));
        } else {
            out.push(c);
        }
    }
    out
}

fn success_status(method: HttpMethod) -> u16 {
    match method {
        HttpMethod::Get => 200,
        HttpMethod::Post => 202,
        HttpMethod::Put => 200,
        HttpMethod::Delete => 204,
        HttpMethod::Patch => 200,
        HttpMethod::Head => 204,
    }
}

fn response_body_len(method: HttpMethod) -> usize {
    match method {
        HttpMethod::Get => 1024,
        HttpMethod::Head => 0,
        _ => 384,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{ApiFault, FaultScope};
    use gretel_model::{Catalog, Workflows};

    fn setup() -> (Arc<Catalog>, Deployment, Workflows) {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        (cat, dep, wf)
    }

    fn quiet_config(seed: u64) -> RunConfig {
        RunConfig { seed, noise: NoiseConfig::off(), ..RunConfig::default() }
    }

    #[test]
    fn fault_free_vm_create_emits_all_steps_in_order() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let plan = FaultPlan::none();
        let runner = Runner::new(cat.clone(), &dep, &plan, quiet_config(1));
        let exec = runner.run(&[&spec]);

        // Request order of APIs must equal the spec sequence.
        let fired: Vec<ApiId> = exec
            .messages
            .iter()
            .filter(|m| m.direction == Direction::Request && !m.truth_noise)
            .map(|m| m.api)
            .collect();
        assert_eq!(fired, spec.api_seq());
        assert!(!exec.outcomes[0].aborted);
        assert!(exec.outcomes[0].failed_api.is_none());
    }

    #[test]
    fn messages_are_time_ordered() {
        let (cat, dep, wf) = setup();
        let specs = [wf.vm_create_spec(gretel_model::OpSpecId(0)),
            wf.image_upload_spec(gretel_model::OpSpecId(1)),
            wf.cinder_list_spec(gretel_model::OpSpecId(2))];
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let plan = FaultPlan::none();
        let runner = Runner::new(cat, &dep, &plan, RunConfig::default());
        let exec = runner.run(&refs);
        for w in exec.messages.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        // Ids are dense and ascending.
        for (i, m) in exec.messages.iter().enumerate() {
            assert_eq!(m.id.0, i as u64);
        }
    }

    #[test]
    fn injected_rest_error_aborts_operation() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let ports_post = cat.rest_expect(
            Service::Neutron,
            HttpMethod::Post,
            "/v2.0/ports.json",
        );
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let runner = Runner::new(cat.clone(), &dep, &plan, quiet_config(2));
        let exec = runner.run(&[&spec]);

        assert!(exec.outcomes[0].aborted);
        assert_eq!(exec.outcomes[0].failed_api, Some(ports_post));
        // An error response for the API is on the wire.
        assert!(exec.messages.iter().any(|m| m.api == ports_post && m.is_rest_error()));
        // No step after the failed one fired: the PUT attach never appears.
        let put_attach = cat.rest_expect(Service::Neutron, HttpMethod::Put, "/v2.0/ports/{id}");
        assert!(!exec.messages.iter().any(|m| m.api == put_attach));
    }

    #[test]
    fn rpc_error_is_relayed_as_rest_error() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let rpc = cat.rpc_expect(Service::NovaCompute, "build_and_run_instance");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: rpc,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RpcException { class: "NoValidHost".into() },
            abort_op: true,
        });
        let runner = Runner::new(cat.clone(), &dep, &plan, quiet_config(3));
        let exec = runner.run(&[&spec]);

        // The relayed REST error is on the operation's origin API.
        let origin = cat.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers");
        let relay = exec
            .messages
            .iter()
            .find(|m| m.api == origin && m.is_rest_error())
            .expect("relayed REST error present");
        assert_eq!(relay.dst_service, Service::Horizon);
    }

    #[test]
    fn crashed_service_fails_operations_and_watchers_see_it() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        // Crash Neutron before the run starts.
        let plan = FaultPlan::none().with_dep(crate::faults::DepFault::ServiceCrash {
            node: NodeId(1),
            service: Service::Neutron,
            at: 0,
        });
        let runner = Runner::new(cat, &dep, &plan, quiet_config(4));
        let exec = runner.run(&[&spec]);
        assert!(exec.outcomes[0].aborted);
        assert!(exec
            .watchers
            .iter()
            .any(|w| w.node == NodeId(1)
                && w.dep == Dependency::ServiceProcess(Service::Neutron)
                && !w.healthy));
    }

    #[test]
    fn runs_are_deterministic() {
        let (cat, dep, wf) = setup();
        let specs = [wf.vm_create_spec(gretel_model::OpSpecId(0)),
            wf.image_upload_spec(gretel_model::OpSpecId(1))];
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let plan = FaultPlan::none();
        let a = Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 9, ..RunConfig::default() })
            .run(&refs);
        let b = Runner::new(cat, &dep, &plan, RunConfig { seed: 9, ..RunConfig::default() })
            .run(&refs);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn noise_messages_are_marked_and_use_noise_apis() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let plan = FaultPlan::none();
        let runner = Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 5, ..RunConfig::default() });
        let exec = runner.run(&[&spec]);
        let noise: Vec<&Message> = exec.messages.iter().filter(|m| m.truth_noise).collect();
        assert!(!noise.is_empty(), "default config generates noise");
        for m in &noise {
            // Noise is either a noise-class API or an idempotent repeat of
            // an operation API.
            let def = cat.get(m.api);
            if def.noise.is_none() {
                assert!(m.truth_op.is_some(), "repeats belong to an op");
            }
        }
    }

    #[test]
    fn latency_fault_inflates_step_latency() {
        let (cat, dep, wf) = setup();
        let spec = wf.image_upload_spec(gretel_model::OpSpecId(0));
        let glance_node = dep.node_of(Service::Glance, 0);

        let measure = |plan: &FaultPlan, seed: u64| -> u64 {
            let runner = Runner::new(cat.clone(), &dep, plan, quiet_config(seed));
            let exec = runner.run(&[&spec]);
            // Latency of the PUT file step = response ts - request ts.
            let put = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
            let req = exec
                .messages
                .iter()
                .find(|m| m.api == put && m.direction == Direction::Request)
                .unwrap()
                .ts_us;
            let resp = exec
                .messages
                .iter()
                .find(|m| m.api == put && m.direction == Direction::Response)
                .unwrap()
                .ts_us;
            resp - req
        };

        let clean = measure(&FaultPlan::none(), 6);
        let plan = FaultPlan::none().with_latency(crate::faults::LatencyFault {
            node: glance_node,
            extra: ms(50),
            from: 0,
            until: SimTime::MAX,
        });
        let slow = measure(&plan, 6);
        assert!(slow >= clean + ms(90), "slow {slow} vs clean {clean}");
    }

    #[test]
    fn resource_override_shows_in_samples() {
        let (cat, dep, wf) = setup();
        let spec = wf.image_upload_spec(gretel_model::OpSpecId(0));
        let plan = FaultPlan::none().with_resource(crate::faults::ResourceFault {
            node: NodeId(2),
            kind: ResourceKind::DiskFreeGb,
            value: 0.1,
            from: 0,
            until: SimTime::MAX,
        });
        let runner = Runner::new(cat, &dep, &plan, quiet_config(7));
        let exec = runner.run(&[&spec]);
        let sample = exec
            .resources
            .iter()
            .find(|r| r.node == NodeId(2) && r.kind == ResourceKind::DiskFreeGb)
            .expect("disk sample");
        assert!((sample.value - 0.1).abs() < 1e-9);
    }

    #[test]
    fn concretize_substitutes_placeholders() {
        assert_eq!(concretize("/v2.1/servers/{id}", 3, 1), "/v2.1/servers/i3");
        assert_eq!(concretize("/v2/{tenant}/volumes/{id}", 10, 0), "/v2/ia/volumes/ia");
        assert_eq!(concretize("/plain", 1, 0), "/plain");
    }

    #[test]
    fn poisson_arrivals_spread_starts_at_the_requested_rate() {
        let (cat, dep, wf) = setup();
        let specs: Vec<OperationSpec> = (0..40)
            .map(|i| {
                let mut s = wf.cinder_list_spec(gretel_model::OpSpecId(i));
                s.id = gretel_model::OpSpecId(i);
                s
            })
            .collect();
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let plan = FaultPlan::none();
        let cfg = RunConfig {
            seed: 9,
            poisson_rate: Some(4.0),
            noise: NoiseConfig::off(),
            ..RunConfig::default()
        };
        let exec = Runner::new(cat, &dep, &plan, cfg).run(&refs);
        // 40 arrivals at 4/s: the last start lands around 10 s (loose
        // deterministic-seed bounds).
        let last_start = exec.outcomes.iter().map(|o| o.started_at).max().unwrap();
        assert!(last_start > 5 * SECOND, "last start {last_start}");
        assert!(last_start < 25 * SECOND, "last start {last_start}");
        // Starts are strictly ordered by instance id (cumulative process).
        for w in exec.outcomes.windows(2) {
            assert!(w[0].started_at <= w[1].started_at);
        }
    }

    #[test]
    fn rest_latency_pairing_via_conn_key() {
        let (cat, dep, wf) = setup();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let plan = FaultPlan::none();
        let exec = Runner::new(cat, &dep, &plan, quiet_config(8)).run(&[&spec]);
        for m in exec.messages.iter().filter(|m| m.direction == Direction::Response) {
            if let WireKind::Rest { .. } = m.wire {
                let req = exec
                    .messages
                    .iter()
                    .find(|r| {
                        r.direction == Direction::Request
                            && r.conn == m.conn.reversed()
                            && r.api == m.api
                    })
                    .expect("every REST response has a request on the reversed conn");
                assert!(req.ts_us <= m.ts_us);
            }
        }
    }
}

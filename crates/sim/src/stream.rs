//! Synthetic high-rate message streams for stress testing (§7.4.1).
//!
//! The paper uses `tcpreplay` to push REST/RPC events at up to 50K
//! packets/s with a configurable fault frequency (1 fault per 100…2K
//! messages) and measures GRETEL's sustained throughput. This generator is
//! the software equivalent: it interleaves the message streams of many
//! concurrent operation instances at an exact packet rate and flips every
//! `fault_every`-th REST response into an error.

use gretel_model::message::{
    reason_phrase, render_rest_request_payload, render_rest_response_payload, render_rpc_payload,
};
use gretel_model::{
    ApiKind, Catalog, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, OpInstanceId,
    OperationSpec, ProjectId, WireKind,
};
use std::sync::Arc;

/// Stream generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Total messages to produce.
    pub total_messages: usize,
    /// One injected REST error per this many messages (0 = no faults).
    pub fault_every: usize,
    /// Packet rate used for timestamps, packets per second.
    pub pps: u64,
    /// Number of concurrently interleaved operation instances.
    pub concurrent_ops: usize,
    /// Number of tenant projects; instance `i` is scoped to project
    /// `i % projects`, stamped on every message the instance emits so the
    /// sharded pipeline can route by tenant.
    pub projects: u32,
    /// Propagate one correlation id per operation instance (the paper's
    /// §5.3.1 `correlation_id` deployment mode).
    pub correlation_ids: bool,
    /// When a fault lands on an instance, terminate that instance: its
    /// cursor recycles onto a fresh instance instead of emitting the
    /// remaining steps. Mirrors an operation aborting on error, and keeps
    /// each instance's event history prefix-complete — a prerequisite for
    /// diagnoses that are byte-identical across shard layouts.
    pub abort_on_fault: bool,
    /// Number of distinct nodes instances are spread over (`NodeId` is a
    /// `u8`, so at most 250 here; the paper-scale "thousands of nodes" is
    /// out of reach of this model and documented as such).
    pub node_spread: u8,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            total_messages: 100_000,
            fault_every: 1_000,
            pps: 50_000,
            concurrent_ops: 64,
            projects: 1,
            correlation_ids: false,
            abort_on_fault: false,
            node_spread: 7,
        }
    }
}

struct Cursor {
    spec_idx: usize,
    step: usize,
    awaiting_response: bool,
    inst: u64,
}

/// Iterator producing an interleaved synthetic message stream.
pub struct SyntheticStream<'a> {
    catalog: Arc<Catalog>,
    specs: &'a [OperationSpec],
    cfg: StreamConfig,
    cursors: Vec<Cursor>,
    emitted: usize,
    next_inst: u64,
    next_rpc: u64,
    turn: usize,
    pending_fault: bool,
}

impl<'a> SyntheticStream<'a> {
    /// Create a stream interleaving instances of `specs` round-robin.
    pub fn new(catalog: Arc<Catalog>, specs: &'a [OperationSpec], cfg: StreamConfig) -> Self {
        assert!(!specs.is_empty(), "need at least one spec");
        assert!(cfg.concurrent_ops > 0, "need at least one concurrent op");
        assert!(cfg.projects > 0, "need at least one project");
        assert!(
            (1..=250).contains(&cfg.node_spread),
            "node_spread must be 1..=250 (NodeId is a u8)"
        );
        let cursors = (0..cfg.concurrent_ops)
            .map(|i| Cursor {
                spec_idx: i % specs.len(),
                step: 0,
                awaiting_response: false,
                inst: i as u64,
            })
            .collect();
        SyntheticStream {
            catalog,
            specs,
            cfg,
            cursors,
            emitted: 0,
            next_inst: cfg.concurrent_ops as u64,
            next_rpc: 1,
            turn: 0,
            pending_fault: false,
        }
    }

    fn ts(&self) -> u64 {
        // Exact pacing: message i is at i / pps seconds.
        (self.emitted as u128 * 1_000_000u128 / self.cfg.pps as u128) as u64
    }

    fn make_fault(&self) -> bool {
        self.cfg.fault_every != 0 && (self.emitted + 1).is_multiple_of(self.cfg.fault_every)
    }
}

impl Iterator for SyntheticStream<'_> {
    type Item = Message;

    fn next(&mut self) -> Option<Message> {
        if self.emitted >= self.cfg.total_messages {
            return None;
        }
        let n = self.cursors.len();
        let cursor_idx = self.turn % n;
        self.turn += 1;
        let ts = self.ts();
        let id = MessageId(self.emitted as u64);
        // Faults are "sticky": if the scheduled message cannot carry an
        // error (a REST request), the fault lands on the next one that can,
        // keeping the realized fault frequency exact.
        if self.make_fault() {
            self.pending_fault = true;
        }

        let cur = &mut self.cursors[cursor_idx];
        let spec = &self.specs[cur.spec_idx];
        if cur.step >= spec.steps.len() {
            // Recycle the cursor onto a fresh instance of the next spec.
            cur.spec_idx = (cur.spec_idx + 1) % self.specs.len();
            cur.step = 0;
            cur.awaiting_response = false;
            cur.inst = self.next_inst;
            self.next_inst += 1;
        }
        let spec = &self.specs[cur.spec_idx];
        let step = &spec.steps[cur.step];
        let def = self.catalog.get(step.api);
        let inst = OpInstanceId(cur.inst);
        let project = Some(ProjectId(cur.inst as u32 % self.cfg.projects));
        let correlation_id = self.cfg.correlation_ids.then_some(cur.inst);
        let spread = self.cfg.node_spread as u64;
        let src_node = NodeId((cur.inst % spread) as u8);
        let dst_node = NodeId(((cur.inst + 1) % spread) as u8);
        let conn = ConnKey {
            src: src_node,
            src_port: 10_000 + (cur.inst % 30_000) as u16,
            dst: dst_node,
            dst_port: 8_774,
        };

        let msg = match &def.kind {
            ApiKind::Rest { method, uri } => {
                if !cur.awaiting_response {
                    cur.awaiting_response = true;
                    Message {
                        id,
                        ts_us: ts,
                        src_node,
                        dst_node,
                        src_service: step.src,
                        dst_service: step.dst,
                        api: step.api,
                        direction: Direction::Request,
                        wire: WireKind::Rest { method: *method, uri: uri.clone(), status: None },
                        conn,
                        payload: render_rest_request_payload(*method, uri, 128),
                        correlation_id,
                        project,
                        truth_op: Some(inst),
                        truth_noise: false,
                    }
                } else {
                    cur.awaiting_response = false;
                    cur.step += 1;
                    let status = if std::mem::take(&mut self.pending_fault) {
                        if self.cfg.abort_on_fault {
                            // The operation dies with the error: drop its
                            // remaining steps so the cursor recycles onto a
                            // fresh instance next turn.
                            cur.step = spec.steps.len();
                        }
                        500
                    } else {
                        ok_status(*method)
                    };
                    Message {
                        id,
                        ts_us: ts,
                        src_node: dst_node,
                        dst_node: src_node,
                        src_service: step.dst,
                        dst_service: step.src,
                        api: step.api,
                        direction: Direction::Response,
                        wire: WireKind::Rest { method: *method, uri: uri.clone(), status: Some(status) },
                        conn: conn.reversed(),
                        payload: render_rest_response_payload(status, reason_phrase(status), 512),
                        correlation_id,
                        project,
                        truth_op: Some(inst),
                        truth_noise: false,
                    }
                }
            }
            ApiKind::Rpc { method, .. } => {
                cur.step += 1;
                let msg_id = self.next_rpc;
                self.next_rpc += 1;
                let error =
                    std::mem::take(&mut self.pending_fault).then(|| "RemoteError".to_string());
                if error.is_some() && self.cfg.abort_on_fault {
                    cur.step = spec.steps.len();
                }
                Message {
                    id,
                    ts_us: ts,
                    src_node,
                    dst_node,
                    src_service: step.src,
                    dst_service: step.dst,
                    api: step.api,
                    direction: Direction::Request,
                    wire: WireKind::Rpc { method: method.clone(), msg_id, error: error.clone() },
                    conn,
                    payload: render_rpc_payload(method, msg_id, error.as_deref(), 256),
                    correlation_id,
                    project,
                    truth_op: Some(inst),
                    truth_noise: false,
                }
            }
        };
        self.emitted += 1;
        Some(msg)
    }
}

fn ok_status(method: HttpMethod) -> u16 {
    match method {
        HttpMethod::Get => 200,
        HttpMethod::Post => 202,
        HttpMethod::Put => 200,
        HttpMethod::Delete => 204,
        HttpMethod::Patch => 200,
        HttpMethod::Head => 204,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{OpSpecId, Workflows};

    fn specs() -> Vec<OperationSpec> {
        let wf = Workflows::new(Catalog::openstack());
        vec![
            wf.vm_create_spec(OpSpecId(0)),
            wf.image_upload_spec(OpSpecId(1)),
            wf.cinder_list_spec(OpSpecId(2)),
        ]
    }

    #[test]
    fn produces_exactly_total_messages() {
        let cat = Catalog::openstack();
        let specs = specs();
        let cfg = StreamConfig { total_messages: 5_000, ..StreamConfig::default() };
        let stream = SyntheticStream::new(cat, &specs, cfg);
        assert_eq!(stream.count(), 5_000);
    }

    #[test]
    fn fault_frequency_is_respected() {
        let cat = Catalog::openstack();
        let specs = specs();
        let cfg = StreamConfig {
            total_messages: 10_000,
            fault_every: 100,
            ..StreamConfig::default()
        };
        let errors = SyntheticStream::new(cat, &specs, cfg)
            .filter(|m| m.is_rest_error() || m.is_rpc_error())
            .count();
        // The very last scheduled fault may have no error-capable message
        // left to land on, so allow a deficit of one.
        assert!(
            errors == 100 || errors == 99,
            "one fault per 100 messages over 10k messages, got {errors}"
        );
    }

    #[test]
    fn timestamps_follow_the_packet_rate() {
        let cat = Catalog::openstack();
        let specs = specs();
        let cfg = StreamConfig {
            total_messages: 50_001,
            pps: 50_000,
            fault_every: 0,
            ..StreamConfig::default()
        };
        let msgs: Vec<_> = SyntheticStream::new(cat, &specs, cfg).collect();
        assert_eq!(msgs.first().unwrap().ts_us, 0);
        // Message 50_000 lands exactly at 1 second.
        assert_eq!(msgs.last().unwrap().ts_us, 1_000_000);
        for w in msgs.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn no_faults_when_disabled() {
        let cat = Catalog::openstack();
        let specs = specs();
        let cfg = StreamConfig { total_messages: 3_000, fault_every: 0, ..StreamConfig::default() };
        assert_eq!(
            SyntheticStream::new(cat, &specs, cfg)
                .filter(|m| m.is_rest_error() || m.is_rpc_error())
                .count(),
            0
        );
    }

    #[test]
    fn interleaves_many_instances() {
        let cat = Catalog::openstack();
        let specs = specs();
        let cfg = StreamConfig {
            total_messages: 2_000,
            concurrent_ops: 32,
            ..StreamConfig::default()
        };
        let insts: std::collections::HashSet<_> = SyntheticStream::new(cat, &specs, cfg)
            .filter_map(|m| m.truth_op)
            .collect();
        assert!(insts.len() >= 32);
    }
}

//! Minimal deterministic discrete-event engine.
//!
//! The simulator schedules future work as timestamped events in a priority
//! queue. Ties are broken by insertion sequence so runs are fully
//! deterministic regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in microseconds since simulation start.
pub type SimTime = u64;

/// One microsecond-resolution second.
pub const SECOND: SimTime = 1_000_000;

/// Convert milliseconds to [`SimTime`].
#[inline]
pub const fn ms(v: u64) -> SimTime {
    v * 1_000
}

/// Convert seconds to [`SimTime`].
#[inline]
pub const fn secs(v: u64) -> SimTime {
    v * SECOND
}

/// Splitmix64 finalizer over `(seed, a, salt)` — the deterministic coin
/// family every seeded schedule in the simulator draws from (capture
/// chaos, crash schedules, cascade jitter, partition drops). Coins never
/// touch the executor's main RNG stream, so adding a coin-driven fault to
/// a plan cannot perturb the rest of a seeded run.
#[inline]
pub const fn splitmix64(seed: u64, a: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ (a + 1).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (salt + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

struct Entry<T> {
    ts: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
        other.ts.cmp(&self.ts).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `item` at absolute time `ts`. Scheduling in the past is a
    /// logic error and panics (it would silently reorder causality).
    pub fn schedule(&mut self, ts: SimTime, item: T) {
        assert!(ts >= self.now, "scheduling into the past: {ts} < {}", self.now);
        self.heap.push(Entry { ts, seq: self.seq, item });
        self.seq += 1;
    }

    /// Schedule `item` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, item: T) {
        self.schedule(self.now.saturating_add(delay), item);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.ts >= self.now);
            self.now = e.ts;
            (e.ts, e.item)
        })
    }

    /// Timestamp of the next event without popping.
    pub fn peek_ts(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.ts)
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.pop(), Some((150, ())));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(ms(3), 3_000);
        assert_eq!(secs(2), 2_000_000);
        assert_eq!(SECOND, secs(1));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}

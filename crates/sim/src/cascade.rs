//! Failure-propagation cascades.
//!
//! Real outages rarely stay put: a crashed Cinder volume service surfaces
//! minutes later as Nova attach failures; a skewed clock on the network
//! node invalidates tokens and knocks out every service that talks to
//! Neutron; a partition between two healthy services fails exactly the
//! calls that cross it. A [`Cascade`] models this: one **primary** fault
//! (service crash, resource exhaustion, dependency failure, or a partial
//! network partition between a service pair) plus **rules** that schedule
//! secondary faults on dependent services after a configurable delay.
//!
//! [`Cascade::compile`] lowers the whole schedule into an ordinary
//! [`FaultPlan`] before the run starts, so the executor needs no new
//! machinery and the run stays bit-reproducible: every probabilistic
//! choice (rule firing, delay jitter) draws a [`splitmix64`] coin keyed by
//! the cascade seed and the draw index — never the executor's main RNG
//! stream — and all times are [`SimTime`]. Compiling the same cascade
//! twice yields identical plans.
//!
//! Alongside the plan, compilation emits a [`CascadeTruth`]: the
//! ground-truth root service and the scheduled secondary (symptom)
//! activations, which the propagation experiment scores root-vs-symptom
//! attribution against.

use crate::deployment::Deployment;
use crate::engine::{secs, splitmix64, SimTime};
use crate::executor::RunConfig;
use crate::faults::{
    ApiFault, DepFault, FaultPlan, FaultScope, InjectedError, LatencyFault, PartitionFault,
    ResourceFault, TimedApiFault,
};
use gretel_model::{Catalog, HttpMethod, OpSpecId, OperationSpec, Service, Workflows};
use std::collections::VecDeque;
use std::sync::Arc;

/// The fault that starts a cascade.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimaryFault {
    /// A dependency failure (service crash or NTP stop).
    Crash(DepFault),
    /// Resource exhaustion on a node.
    Exhaust(ResourceFault),
    /// A (possibly partial) network partition between two services.
    Partition(PartitionFault),
}

impl PrimaryFault {
    /// When the fault switches on.
    pub fn onset(&self) -> SimTime {
        match self {
            PrimaryFault::Crash(DepFault::ServiceCrash { at, .. }) => *at,
            PrimaryFault::Crash(DepFault::NtpStop { at, .. }) => *at,
            PrimaryFault::Exhaust(f) => f.from,
            PrimaryFault::Partition(f) => f.from,
        }
    }
}

/// A primary fault together with the service whose degradation it
/// represents — the service cascade rules trigger on, and the
/// ground-truth **root** of everything the cascade schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct Primary {
    /// The injected fault.
    pub fault: PrimaryFault,
    /// The degraded service (for a partition: the side that becomes
    /// unreachable from its callers).
    pub trigger: Service,
}

/// What a triggered rule injects.
#[derive(Debug, Clone, PartialEq)]
pub enum SecondaryEffect {
    /// Fail an API for `duration` starting at the (jittered) fire time.
    Api {
        /// The fault to activate; its own scope/error/abort are used as-is.
        fault: ApiFault,
        /// How long the fault stays active (`SimTime::MAX` = rest of run).
        duration: SimTime,
    },
    /// Correlated node-level fault group: crash `service` on *every* node
    /// hosting it, staggered `stagger` apart in deployment order — the
    /// "all three compute agents die within seconds of each other" shape.
    CrashGroup {
        /// Service to crash everywhere.
        service: Service,
        /// Delay between consecutive node crashes.
        stagger: SimTime,
    },
    /// Inject extra latency on the first node hosting `service`.
    Latency {
        /// Service whose node is slowed.
        service: Service,
        /// Extra one-way latency.
        extra: SimTime,
        /// How long the injection lasts.
        duration: SimTime,
    },
}

/// One propagation edge: when `upstream` degrades, `downstream` follows
/// after `delay` (plus coin-drawn jitter), with probability `prob`.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeRule {
    /// Service whose degradation triggers this rule.
    pub upstream: Service,
    /// Service the effect degrades. A rule with `downstream == upstream`
    /// models self-degradation (the primary's own API surface failing)
    /// and does not chain further.
    pub downstream: Service,
    /// Base delay from trigger to effect.
    pub delay: SimTime,
    /// Upper bound on coin-drawn extra delay (0 = none).
    pub jitter: SimTime,
    /// Probability the rule fires at all (1.0 = always).
    pub prob: f64,
    /// The secondary fault to inject.
    pub effect: SecondaryEffect,
}

/// A seeded cascade schedule: primaries, propagation rules, and a depth
/// cap on transitive triggering.
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Seed for every firing/jitter coin.
    pub seed: u64,
    /// The fault(s) that start the cascade.
    pub primaries: Vec<Primary>,
    /// Propagation rules, matched transitively against degraded services.
    pub rules: Vec<CascadeRule>,
    /// Maximum propagation depth (primaries are depth 0; a rule triggered
    /// by a primary fires at depth 1).
    pub max_depth: u32,
}

/// One scheduled secondary activation, for scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggeredFault {
    /// The degraded (symptom) service.
    pub service: Service,
    /// When the secondary fault switches on.
    pub at: SimTime,
    /// Index of the rule that fired.
    pub rule: usize,
    /// Propagation depth (1 = directly off a primary).
    pub depth: u32,
}

/// Ground truth emitted by [`Cascade::compile`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CascadeTruth {
    /// Root services with their fault onsets (one per primary).
    pub roots: Vec<(Service, SimTime)>,
    /// Every scheduled secondary activation, in firing order.
    pub cascade: Vec<TriggeredFault>,
}

impl CascadeTruth {
    /// Distinct root services.
    pub fn root_services(&self) -> Vec<Service> {
        let mut v: Vec<Service> = self.roots.iter().map(|&(s, _)| s).collect();
        v.sort_by_key(|s| s.index());
        v.dedup();
        v
    }

    /// Distinct symptom services: cascade downstreams that are not
    /// themselves roots (self-degradation rules re-fail the root, not a
    /// new victim).
    pub fn symptom_services(&self) -> Vec<Service> {
        let roots = self.root_services();
        let mut v: Vec<Service> = self
            .cascade
            .iter()
            .map(|t| t.service)
            .filter(|s| !roots.contains(s))
            .collect();
        v.sort_by_key(|s| s.index());
        v.dedup();
        v
    }
}

impl Cascade {
    /// Lower the cascade into a [`FaultPlan`] plus its ground truth.
    ///
    /// Deterministic: rule firing and jitter draw [`splitmix64`] coins
    /// keyed by `(seed, draw index, salt)`, and triggers are processed in
    /// FIFO order, so the same cascade always compiles to the same plan.
    pub fn compile(&self, deployment: &Deployment) -> (FaultPlan, CascadeTruth) {
        let mut plan = FaultPlan::none();
        let mut truth = CascadeTruth::default();
        // (degraded service, degradation time, depth)
        let mut work: VecDeque<(Service, SimTime, u32)> = VecDeque::new();

        for p in &self.primaries {
            match &p.fault {
                PrimaryFault::Crash(f) => plan.deps.push(f.clone()),
                PrimaryFault::Exhaust(f) => plan.resources.push(*f),
                PrimaryFault::Partition(f) => plan.partitions.push(*f),
            }
            truth.roots.push((p.trigger, p.fault.onset()));
            work.push_back((p.trigger, p.fault.onset(), 0));
        }

        let mut draw: u64 = 0;
        while let Some((svc, t0, depth)) = work.pop_front() {
            if depth >= self.max_depth {
                continue;
            }
            for (ri, rule) in self.rules.iter().enumerate() {
                if rule.upstream != svc {
                    continue;
                }
                draw += 1;
                if rule.prob < 1.0 {
                    let coin = splitmix64(self.seed, draw, 41);
                    let u = (coin >> 11) as f64 / (1u64 << 53) as f64;
                    if u >= rule.prob {
                        continue;
                    }
                }
                let jitter = if rule.jitter > 0 {
                    splitmix64(self.seed, draw, 43) % (rule.jitter + 1)
                } else {
                    0
                };
                let fire = t0.saturating_add(rule.delay).saturating_add(jitter);
                match &rule.effect {
                    SecondaryEffect::Api { fault, duration } => {
                        plan.timed_api_faults.push(TimedApiFault {
                            fault: fault.clone(),
                            from: fire,
                            until: fire.saturating_add(*duration),
                        });
                    }
                    SecondaryEffect::CrashGroup { service, stagger } => {
                        for (i, &node) in deployment.nodes_of(*service).iter().enumerate() {
                            plan.deps.push(DepFault::ServiceCrash {
                                node,
                                service: *service,
                                at: fire.saturating_add(stagger.saturating_mul(i as u64)),
                            });
                        }
                    }
                    SecondaryEffect::Latency { service, extra, duration } => {
                        plan.latency.push(LatencyFault {
                            node: deployment.node_of(*service, 0),
                            extra: *extra,
                            from: fire,
                            until: fire.saturating_add(*duration),
                        });
                    }
                }
                truth.cascade.push(TriggeredFault {
                    service: rule.downstream,
                    at: fire,
                    rule: ri,
                    depth: depth + 1,
                });
                // Self-degradation rules do not chain; everything else
                // propagates until the depth cap.
                if rule.downstream != rule.upstream {
                    work.push_back((rule.downstream, fire, depth + 1));
                }
            }
        }
        (plan, truth)
    }
}

// ---------------------------------------------------------------------------
// Canned cascade scenarios for the propagation experiment.
// ---------------------------------------------------------------------------

/// A fully assembled cascade scenario: specs + compiled plan + ground
/// truth for root-vs-symptom scoring.
pub struct CascadeScenario {
    /// Short identifier.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Deployment it runs on.
    pub deployment: Deployment,
    /// The operation mix (staggered across the run window).
    pub specs: Vec<OperationSpec>,
    /// The compiled fault plan.
    pub plan: FaultPlan,
    /// Executor configuration.
    pub config: RunConfig,
    /// Ground truth from compilation.
    pub truth: CascadeTruth,
}

impl CascadeScenario {
    /// Run the scenario to completion.
    pub fn run(&self, catalog: Arc<Catalog>) -> crate::executor::Execution {
        let refs: Vec<&OperationSpec> = self.specs.iter().collect();
        crate::executor::Runner::new(catalog, &self.deployment, &self.plan, self.config).run(&refs)
    }
}

/// Rotating storage-heavy mix: volume_attach (exercises the Nova→Cinder
/// edge), volume_create (direct Cinder traffic), image_list (healthy
/// background). `n` instances staggered across the configured window.
fn storage_mix(wf: &Workflows, n: usize) -> Vec<OperationSpec> {
    (0..n)
        .map(|i| {
            let (name, steps, category) = match i % 3 {
                0 => ("storage.volume_attach", wf.volume_attach(), gretel_model::Category::Storage),
                1 => ("storage.volume_create", wf.volume_create(), gretel_model::Category::Storage),
                _ => ("image.image_list", wf.image_list(), gretel_model::Category::Image),
            };
            OperationSpec { id: OpSpecId(i as u16), name: format!("{name}.{i}"), category, steps }
        })
        .collect()
}

/// Cascade 1 — **Cinder crash → Nova attach failures.** The Cinder volume
/// service crashes at 10 s; ten seconds later Nova's volume-attachment API
/// starts failing for everyone. Direct Cinder traffic fails from the crash
/// on (root symptoms), attach operations fail at *Nova* (secondary
/// symptoms) — a correct analysis names Cinder as root and marks the Nova
/// failures as symptoms.
pub fn cinder_crash_cascade(catalog: &Arc<Catalog>, seed: u64) -> CascadeScenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let cinder_node = deployment.node_of(Service::Cinder, 0);
    let attach_api = catalog.rest_expect(
        Service::Nova,
        HttpMethod::Post,
        "/v2.1/servers/{id}/os-volume_attachments",
    );

    let cascade = Cascade {
        seed: seed ^ 0xCA5C_ADE1,
        primaries: vec![Primary {
            fault: PrimaryFault::Crash(DepFault::ServiceCrash {
                node: cinder_node,
                service: Service::Cinder,
                at: secs(10),
            }),
            trigger: Service::Cinder,
        }],
        rules: vec![CascadeRule {
            upstream: Service::Cinder,
            downstream: Service::Nova,
            delay: secs(10),
            jitter: secs(1),
            prob: 1.0,
            effect: SecondaryEffect::Api {
                fault: ApiFault {
                    api: attach_api,
                    scope: FaultScope::AllInstances,
                    occurrence: 0,
                    error: InjectedError::RestStatus {
                        status: 500,
                        reason: Some("VolumeServiceUnavailable".into()),
                    },
                    abort_op: true,
                },
                duration: SimTime::MAX,
            },
        }],
        max_depth: 2,
    };
    let (plan, truth) = cascade.compile(&deployment);

    CascadeScenario {
        name: "cascade-cinder-nova",
        description: "Cinder crash cascades into Nova volume-attach failures; root is Cinder, the Nova errors are symptoms",
        deployment,
        specs: storage_mix(&wf, 36),
        plan,
        config: RunConfig { seed, start_window: secs(40), ..RunConfig::default() },
        truth,
    }
}

/// Cascade 2 — **NTP skew on the network node → multi-service fallout.**
/// NTP stops on the Neutron host at 8 s; Neutron's own API surface starts
/// rejecting requests with token errors shortly after (self-degradation),
/// and twelve seconds later both Nova (boot API) and the L2 agents
/// (port-teardown RPC casts) follow. Root is Neutron (flat RCA sees the
/// dead NTP agent on its node). Both secondaries manifest as Nova
/// failures — casts produce no reply on the wire, so the agent-side
/// fault is only visible through the dashboard relay on Nova's APIs.
pub fn ntp_skew_cascade(catalog: &Arc<Catalog>, seed: u64) -> CascadeScenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let neutron_node = deployment.node_of(Service::Neutron, 0);
    let networks_api =
        catalog.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/networks.json");
    let boot_api = catalog.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers");
    let port_delete_rpc = catalog.rpc_expect(Service::NeutronAgent, "port_delete");

    let timed_all = |api, error| SecondaryEffect::Api {
        fault: ApiFault {
            api,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error,
            abort_op: true,
        },
        duration: SimTime::MAX,
    };

    let cascade = Cascade {
        seed: seed ^ 0xCA5C_ADE2,
        primaries: vec![Primary {
            fault: PrimaryFault::Crash(DepFault::NtpStop { node: neutron_node, at: secs(8) }),
            trigger: Service::Neutron,
        }],
        rules: vec![
            CascadeRule {
                upstream: Service::Neutron,
                downstream: Service::Neutron,
                delay: secs(2),
                jitter: 0,
                prob: 1.0,
                effect: timed_all(
                    networks_api,
                    InjectedError::RestStatus {
                        status: 401,
                        reason: Some("TokenExpired: clock skew".into()),
                    },
                ),
            },
            CascadeRule {
                upstream: Service::Neutron,
                downstream: Service::Nova,
                delay: secs(12),
                jitter: secs(1),
                prob: 1.0,
                effect: timed_all(
                    boot_api,
                    InjectedError::RestStatus {
                        status: 500,
                        reason: Some("NetworkDegraded: cannot allocate".into()),
                    },
                ),
            },
            // The server's port_delete casts to the L2 agents start
            // failing too. Casts have no reply on the wire, so the
            // failure's only observable footprint is the §5.3.1 REST
            // relay on the vm_delete origin API — the *nameable* symptom
            // service is therefore Nova, not the agent itself.
            CascadeRule {
                upstream: Service::Neutron,
                downstream: Service::Nova,
                delay: secs(12),
                jitter: secs(1),
                prob: 1.0,
                effect: timed_all(
                    port_delete_rpc,
                    InjectedError::RpcException { class: "AgentUnreachable".into() },
                ),
            },
        ],
        max_depth: 2,
    };
    let (plan, truth) = cascade.compile(&deployment);

    let specs = (0..36)
        .map(|i| {
            let (name, steps, category) = match i % 3 {
                0 => ("compute.vm_create", wf.vm_create(), gretel_model::Category::Compute),
                1 => ("compute.vm_delete", wf.vm_delete(), gretel_model::Category::Compute),
                _ => ("image.image_list", wf.image_list(), gretel_model::Category::Image),
            };
            OperationSpec { id: OpSpecId(i as u16), name: format!("{name}.{i}"), category, steps }
        })
        .collect();

    CascadeScenario {
        name: "cascade-ntp-multiservice",
        description: "NTP skew on the Neutron host degrades Neutron, then Nova and the L2 agents; root is Neutron via its dead NTP agent",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, start_window: secs(45), ..RunConfig::default() },
        truth,
    }
}

/// Cascade 3 — **partition-induced split.** A full partition severs the
/// Nova↔Cinder pair at 10 s: both services stay up, every watcher stays
/// healthy, but the attach workflow's Nova→Cinder call times out (503 on a
/// *Cinder* API — with no node-local cause for flat RCA to find). Twelve
/// seconds later Nova starts failing attach requests outright. Only the
/// traffic graph can name Cinder as the root here.
pub fn partition_split_cascade(catalog: &Arc<Catalog>, seed: u64) -> CascadeScenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let attach_api = catalog.rest_expect(
        Service::Nova,
        HttpMethod::Post,
        "/v2.1/servers/{id}/os-volume_attachments",
    );

    let cascade = Cascade {
        seed: seed ^ 0xCA5C_ADE3,
        primaries: vec![Primary {
            fault: PrimaryFault::Partition(PartitionFault {
                a: Service::Nova,
                b: Service::Cinder,
                from: secs(10),
                until: SimTime::MAX,
                drop_prob: 1.0,
                seed: seed ^ 0x9A87,
            }),
            trigger: Service::Cinder,
        }],
        rules: vec![CascadeRule {
            upstream: Service::Cinder,
            downstream: Service::Nova,
            delay: secs(12),
            jitter: secs(1),
            prob: 1.0,
            effect: SecondaryEffect::Api {
                fault: ApiFault {
                    api: attach_api,
                    scope: FaultScope::AllInstances,
                    occurrence: 0,
                    error: InjectedError::RestStatus {
                        status: 500,
                        reason: Some("CinderUnreachable: attach rejected".into()),
                    },
                    abort_op: true,
                },
                duration: SimTime::MAX,
            },
        }],
        max_depth: 2,
    };
    let (plan, truth) = cascade.compile(&deployment);

    CascadeScenario {
        name: "cascade-partition-nova-cinder",
        description: "Nova↔Cinder partition: healthy processes, healthy watchers, failing cross-service calls; graph walk must name Cinder",
        deployment,
        specs: storage_mix(&wf, 36),
        plan,
        config: RunConfig { seed, start_window: secs(45), ..RunConfig::default() },
        truth,
    }
}

/// The propagation experiment's cascade suite.
pub fn cascade_suite(catalog: &Arc<Catalog>, seed: u64) -> Vec<CascadeScenario> {
    vec![
        cinder_crash_cascade(catalog, seed),
        ntp_skew_cascade(catalog, seed ^ 0x55),
        partition_split_cascade(catalog, seed ^ 0xAA),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::NodeId;

    #[test]
    fn compile_is_deterministic() {
        let cat = Catalog::openstack();
        let fns: [fn(&Arc<Catalog>, u64) -> CascadeScenario; 3] =
            [cinder_crash_cascade, ntp_skew_cascade, partition_split_cascade];
        for f in fns {
            let a: CascadeScenario = f(&cat, 42);
            let b: CascadeScenario = f(&cat, 42);
            assert_eq!(a.plan, b.plan, "{}: same seed, same plan", a.name);
            assert_eq!(a.truth, b.truth, "{}: same seed, same truth", a.name);
            let c: CascadeScenario = f(&cat, 43);
            assert_ne!(a.config.seed, c.config.seed);
        }
    }

    #[test]
    fn secondary_faults_fire_after_their_delay() {
        let cat = Catalog::openstack();
        let sc = cinder_crash_cascade(&cat, 7);
        assert_eq!(sc.truth.roots, vec![(Service::Cinder, secs(10))]);
        assert_eq!(sc.truth.cascade.len(), 1);
        let t = &sc.truth.cascade[0];
        assert_eq!(t.service, Service::Nova);
        assert_eq!(t.depth, 1);
        assert!(t.at >= secs(20) && t.at <= secs(21), "delay 10s + jitter <= 1s, got {}", t.at);
        assert_eq!(sc.plan.timed_api_faults.len(), 1);
        assert_eq!(sc.plan.timed_api_faults[0].from, t.at);
    }

    #[test]
    fn truth_separates_roots_from_symptoms() {
        let cat = Catalog::openstack();
        let sc = ntp_skew_cascade(&cat, 9);
        assert_eq!(sc.truth.root_services(), vec![Service::Neutron]);
        // The self-degradation rule re-fails Neutron; it must not appear
        // as a symptom of itself. Both downstream rules name Nova (the
        // L2-agent cast failures surface via the Nova dashboard relay),
        // and the duplicate collapses.
        assert_eq!(sc.truth.symptom_services(), vec![Service::Nova]);
        assert_eq!(sc.truth.cascade.len(), 3);
    }

    #[test]
    fn crash_group_staggers_across_hosting_nodes() {
        let dep = Deployment::standard();
        let cascade = Cascade {
            seed: 1,
            primaries: vec![Primary {
                fault: PrimaryFault::Crash(DepFault::ServiceCrash {
                    node: NodeId(1),
                    service: Service::Neutron,
                    at: secs(5),
                }),
                trigger: Service::Neutron,
            }],
            rules: vec![CascadeRule {
                upstream: Service::Neutron,
                downstream: Service::NeutronAgent,
                delay: secs(3),
                jitter: 0,
                prob: 1.0,
                effect: SecondaryEffect::CrashGroup {
                    service: Service::NeutronAgent,
                    stagger: secs(2),
                },
            }],
            max_depth: 2,
        };
        let (plan, truth) = cascade.compile(&dep);
        // One primary crash + one staggered crash per compute node.
        let agents: Vec<_> = plan
            .deps
            .iter()
            .filter_map(|d| match d {
                DepFault::ServiceCrash { service: Service::NeutronAgent, at, node } => {
                    Some((*node, *at))
                }
                _ => None,
            })
            .collect();
        assert_eq!(agents.len(), dep.compute_nodes().len());
        assert_eq!(agents[0].1, secs(8));
        assert_eq!(agents[1].1, secs(10));
        assert_eq!(agents[2].1, secs(12));
        assert_eq!(truth.cascade.len(), 1);
    }

    #[test]
    fn probabilistic_rules_draw_stable_coins() {
        let dep = Deployment::standard();
        let mk = |seed| Cascade {
            seed,
            primaries: vec![Primary {
                fault: PrimaryFault::Crash(DepFault::NtpStop { node: NodeId(3), at: 0 }),
                trigger: Service::Cinder,
            }],
            rules: (0..16)
                .map(|i| CascadeRule {
                    upstream: Service::Cinder,
                    downstream: Service::Nova,
                    delay: secs(i),
                    jitter: secs(4),
                    prob: 0.5,
                    effect: SecondaryEffect::Latency {
                        service: Service::Nova,
                        extra: 1000,
                        duration: secs(1),
                    },
                })
                .collect(),
            max_depth: 1,
        };
        let (p1, t1) = mk(11).compile(&dep);
        let (p2, t2) = mk(11).compile(&dep);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        // prob 0.5 over 16 draws: some fire, some don't.
        assert!(!t1.cascade.is_empty() && t1.cascade.len() < 16, "got {}", t1.cascade.len());
        let (_, t3) = mk(12).compile(&dep);
        assert_ne!(t1.cascade, t3.cascade, "different seed, different firings");
    }

    #[test]
    fn depth_cap_stops_transitive_chains() {
        let dep = Deployment::standard();
        // Nova -> Glance -> Swift chain; with max_depth 1 only the first
        // hop fires.
        let chain = |max_depth| Cascade {
            seed: 3,
            primaries: vec![Primary {
                fault: PrimaryFault::Exhaust(ResourceFault {
                    node: NodeId(0),
                    kind: crate::resources::ResourceKind::CpuPercent,
                    value: 99.0,
                    from: secs(1),
                    until: SimTime::MAX,
                }),
                trigger: Service::Nova,
            }],
            rules: vec![
                CascadeRule {
                    upstream: Service::Nova,
                    downstream: Service::Glance,
                    delay: secs(2),
                    jitter: 0,
                    prob: 1.0,
                    effect: SecondaryEffect::Latency {
                        service: Service::Glance,
                        extra: 500,
                        duration: secs(5),
                    },
                },
                CascadeRule {
                    upstream: Service::Glance,
                    downstream: Service::Swift,
                    delay: secs(2),
                    jitter: 0,
                    prob: 1.0,
                    effect: SecondaryEffect::Latency {
                        service: Service::Swift,
                        extra: 500,
                        duration: secs(5),
                    },
                },
            ],
            max_depth,
        };
        let (_, shallow) = chain(1).compile(&dep);
        assert_eq!(shallow.cascade.len(), 1);
        let (_, deep) = chain(3).compile(&dep);
        assert_eq!(deep.cascade.len(), 2);
        assert_eq!(deep.cascade[1].service, Service::Swift);
        assert_eq!(deep.cascade[1].depth, 2);
        assert_eq!(deep.cascade[1].at, secs(5), "1s onset + 2s + 2s");
        assert_eq!(deep.symptom_services(), vec![Service::Glance, Service::Swift]);
    }
}

//! Crash schedules for the recovery experiment.
//!
//! The fault-tolerant analyzer service (`gretel-core::recover`) accepts a
//! list of scheduled crash points: the n-th service cycle crashes after
//! merging that many messages, then restores from its checkpoint journal
//! and replays. This module generates those schedules deterministically
//! from a seed, so a recovery run — like every other experiment in this
//! repository — is reproducible bit for bit.

/// A deterministic schedule of service crashes. `points[n]` is how many
/// messages the n-th cycle merges before crashing; one point is consumed
/// per cycle, and a finite schedule always lets the run complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Per-cycle crash points (merged-message counts).
    pub points: Vec<u64>,
}

use crate::engine::splitmix64 as mix64;

impl CrashSchedule {
    /// No crashes: the service runs uninterrupted.
    pub fn none() -> CrashSchedule {
        CrashSchedule { points: Vec::new() }
    }

    /// Explicit crash points (merged-message count per cycle, in cycle
    /// order).
    pub fn at(points: Vec<u64>) -> CrashSchedule {
        CrashSchedule { points }
    }

    /// `crashes` seeded crash points, each uniform in `[1, span]` — a
    /// cycle never crashes before merging at least one message, so every
    /// cycle makes progress and the run terminates. `span` should be on
    /// the order of the stream length; points past the end of a cycle's
    /// remaining stream simply let that cycle complete.
    pub fn seeded(seed: u64, crashes: usize, span: u64) -> CrashSchedule {
        let span = span.max(1);
        let points = (0..crashes as u64).map(|i| 1 + mix64(seed, i, 31) % span).collect();
        CrashSchedule { points }
    }

    /// `kills` seeded whole-process kill points, each uniform in
    /// `[1, span]` — same guarantees as [`CrashSchedule::seeded`] but on
    /// an independent salt, so a run can layer in-process crashes and
    /// process kills from one seed without the schedules correlating.
    /// One point is consumed per process lifetime: the driver passes
    /// `points[n]` to the n-th invocation and re-invokes against the same
    /// durable store until the run completes.
    pub fn seeded_kills(seed: u64, kills: usize, span: u64) -> CrashSchedule {
        let span = span.max(1);
        let points = (0..kills as u64).map(|i| 1 + mix64(seed, i, 37) % span).collect();
        CrashSchedule { points }
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the schedule is empty (no crashes).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_deterministic_and_in_range() {
        let a = CrashSchedule::seeded(42, 8, 1000);
        let b = CrashSchedule::seeded(42, 8, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.points.iter().all(|&p| (1..=1000).contains(&p)));
        let c = CrashSchedule::seeded(43, 8, 1000);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn kill_schedules_are_independent_of_crash_schedules() {
        let kills = CrashSchedule::seeded_kills(42, 8, 1000);
        assert_eq!(kills, CrashSchedule::seeded_kills(42, 8, 1000));
        assert!(kills.points.iter().all(|&p| (1..=1000).contains(&p)));
        assert_ne!(
            kills,
            CrashSchedule::seeded(42, 8, 1000),
            "kill and crash salts must not correlate"
        );
        assert!(CrashSchedule::seeded_kills(7, 4, 0).points.iter().all(|&p| p == 1));
    }

    #[test]
    fn degenerate_spans_still_make_progress() {
        let s = CrashSchedule::seeded(7, 4, 0);
        assert!(s.points.iter().all(|&p| p == 1));
        assert!(CrashSchedule::none().is_empty());
        assert_eq!(CrashSchedule::at(vec![10, 20]).len(), 2);
    }
}

//! Human-readable views of an execution.
//!
//! Debugging a fault-localization system needs ground-truth visibility:
//! what actually happened on the wire, per operation instance. These
//! renderers turn an [`Execution`] into the message ladders and summaries
//! the examples and the CLI print.

use crate::executor::Execution;
use gretel_model::{Catalog, Direction, OpInstanceId};

/// One-line-per-message ladder for a single operation instance.
///
/// ```text
///     0.000s  horizon      -> nova         POST nova /v2.1/servers
///    +0.031s  nova         -> nova-compute RPC(cast) nova-compute build_and_run_instance
/// ```
pub fn instance_timeline(exec: &Execution, catalog: &Catalog, inst: OpInstanceId) -> String {
    let mut out = String::new();
    let mut t0 = None;
    for m in exec.messages.iter().filter(|m| m.truth_op == Some(inst)) {
        let t0 = *t0.get_or_insert(m.ts_us);
        let arrow = match m.direction {
            Direction::Request => "->",
            Direction::Response => "<-",
        };
        let marker = if m.is_rest_error() || m.is_rpc_error() { " !!" } else { "" };
        let noise = if m.truth_noise { " (repeat)" } else { "" };
        out.push_str(&format!(
            "  +{:>8.3}s  {:<12} {arrow} {:<12} {}{marker}{noise}\n",
            (m.ts_us - t0) as f64 / 1e6,
            m.src_service.name(),
            m.dst_service.name(),
            catalog.get(m.api).label(),
        ));
    }
    out
}

/// Per-instance summary table: name, duration, messages, outcome.
pub fn summary(exec: &Execution) -> String {
    let mut out = String::from("instance  duration   messages  outcome\n");
    for o in &exec.outcomes {
        let msgs = exec
            .messages
            .iter()
            .filter(|m| m.truth_op == Some(o.inst))
            .count();
        out.push_str(&format!(
            "{:>8}  {:>8.2}s  {:>8}  {} ({})\n",
            o.inst.0,
            (o.finished_at - o.started_at) as f64 / 1e6,
            msgs,
            if o.aborted { "ABORTED" } else { "ok" },
            o.spec_name,
        ));
    }
    let noise = exec.messages.iter().filter(|m| m.truth_noise).count();
    out.push_str(&format!(
        "total: {} messages ({} noise), {} resource samples, {} watcher samples\n",
        exec.messages.len(),
        noise,
        exec.resources.len(),
        exec.watchers.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::executor::{NoiseConfig, RunConfig, Runner};
    use crate::faults::{ApiFault, FaultPlan, FaultScope, InjectedError};
    use gretel_model::{Catalog, HttpMethod, OpSpecId, Service, Workflows};

    #[test]
    fn timeline_shows_every_instance_message_in_order() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let spec = wf.vm_create_spec(OpSpecId(0));
        let exec = Runner::new(
            cat.clone(),
            &dep,
            &FaultPlan::none(),
            RunConfig { seed: 1, noise: NoiseConfig::off(), ..RunConfig::default() },
        )
        .run(&[&spec]);
        let ladder = instance_timeline(&exec, &cat, gretel_model::OpInstanceId(0));
        assert!(ladder.contains("POST nova /v2.1/servers"));
        assert!(ladder.contains("build_and_run_instance"));
        assert!(ladder.starts_with("  +   0.000s"));
        let lines = ladder.lines().count();
        assert_eq!(
            lines,
            exec.messages.iter().filter(|m| m.truth_op.is_some()).count()
        );
    }

    #[test]
    fn errors_are_marked_in_the_ladder() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let spec = wf.image_upload_spec(OpSpecId(0));
        let put = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: put,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 413, reason: None },
            abort_op: true,
        });
        let exec = Runner::new(
            cat.clone(),
            &dep,
            &plan,
            RunConfig { seed: 2, noise: NoiseConfig::off(), ..RunConfig::default() },
        )
        .run(&[&spec]);
        let ladder = instance_timeline(&exec, &cat, gretel_model::OpInstanceId(0));
        assert!(ladder.contains(" !!"), "{ladder}");
    }

    #[test]
    fn summary_reports_outcomes() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs =
            [wf.vm_create_spec(OpSpecId(0)), wf.cinder_list_spec(OpSpecId(1))];
        let refs: Vec<_> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &FaultPlan::none(), RunConfig::default()).run(&refs);
        let s = summary(&exec);
        assert!(s.contains("compute.vm_create.canonical"));
        assert!(s.contains("storage.cinder_list.canonical"));
        assert!(s.contains("total:"));
        assert!(!s.contains("ABORTED"));
    }
}

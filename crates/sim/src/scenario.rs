//! Canned fault scenarios reproducing the paper's case studies.
//!
//! Each constructor assembles the specs, fault plan and run configuration
//! for one of the §3.1 / §7.2 scenarios and records what a correct root
//! cause analysis should conclude, so integration tests and examples can
//! score GRETEL's diagnosis against ground truth.

use crate::deployment::Deployment;
use crate::engine::{ms, secs, SimTime};
use crate::executor::{Execution, RunConfig, Runner};
use crate::faults::{ApiFault, DepFault, FaultPlan, FaultScope, InjectedError, LatencyFault, ResourceFault};
use crate::resources::ResourceKind;
use gretel_model::{
    Catalog, Dependency, HttpMethod, NodeId, OpSpecId, OperationSpec, Service, Workflows,
};
use std::sync::Arc;

/// What a correct diagnosis of the scenario looks like.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectedCause {
    /// An anomalous resource metric on a node.
    Resource(NodeId, ResourceKind),
    /// A failed software dependency on a node.
    Dependency(NodeId, Dependency),
}

/// A fully assembled scenario.
pub struct Scenario {
    /// Short identifier (paper section).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The deployment it runs on.
    pub deployment: Deployment,
    /// The specs executed (faulty ones first).
    pub specs: Vec<OperationSpec>,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Executor configuration.
    pub config: RunConfig,
    /// Name of the spec(s) expected to be diagnosed as failed.
    pub expected_failed_spec: String,
    /// Ground-truth root cause.
    pub expected_cause: ExpectedCause,
}

impl Scenario {
    /// Run the scenario to completion.
    pub fn run(&self, catalog: Arc<Catalog>) -> Execution {
        let refs: Vec<&OperationSpec> = self.specs.iter().collect();
        Runner::new(catalog, &self.deployment, &self.plan, self.config).run(&refs)
    }
}

fn background_specs(wf: &Workflows, n: usize, first_id: u16) -> Vec<OperationSpec> {
    // A rotating mix of healthy operations to run alongside the faulty one.
    let motifs: [(&str, Vec<gretel_model::Step>); 4] = [
        ("compute.vm_create.bg", wf.vm_create()),
        ("network.router_create.bg", wf.router_create()),
        ("storage.volume_create.bg", wf.volume_create()),
        ("image.image_list.bg", wf.image_list()),
    ];
    (0..n)
        .map(|i| {
            let (name, steps) = &motifs[i % motifs.len()];
            OperationSpec {
                id: OpSpecId(first_id + i as u16),
                name: format!("{name}.{i}"),
                category: gretel_model::Category::Compute,
                steps: steps.clone(),
            }
        })
        .collect()
}

/// §7.2.1 — Failed image uploads: Glance returns 413 on `PUT
/// /v2/images/{id}/file` because the image node's disk is (nearly) full.
pub fn failed_image_upload(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let image_node = deployment.node_of(Service::Glance, 0);

    let mut specs = vec![wf.image_upload_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let put_file = catalog.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
    let plan = FaultPlan::none()
        .with_resource(ResourceFault {
            node: image_node,
            kind: ResourceKind::DiskFreeGb,
            value: 0.2,
            from: 0,
            until: SimTime::MAX,
        })
        .with_api_fault(ApiFault {
            api: put_file,
            scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
            occurrence: 0,
            error: InjectedError::RestStatus {
                status: 413,
                reason: Some("Request Entity Too Large".into()),
            },
            abort_op: true,
        });

    Scenario {
        name: "7.2.1-failed-image-upload",
        description: "Image upload fails with REST 413; root cause is low free disk on the Glance server",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "image.upload.canonical".into(),
        expected_cause: ExpectedCause::Resource(image_node, ResourceKind::DiskFreeGb),
    }
}

/// §7.2.2 / §3.1.2 — Neutron API latency increase: under heavy concurrent
/// VM creation the Neutron server's CPU surges and its APIs slow down.
/// The operations *succeed* — this is a pure performance fault.
pub fn neutron_api_latency(catalog: &Arc<Catalog>, seed: u64, concurrency: usize) -> Scenario {
    neutron_api_latency_with_window(catalog, seed, concurrency, secs(30), secs(75))
}

/// [`neutron_api_latency`] with an explicit surge window. Enough
/// operations must complete *before* the surge for the level-shift
/// detector to establish its baseline.
pub fn neutron_api_latency_with_window(
    catalog: &Arc<Catalog>,
    seed: u64,
    concurrency: usize,
    surge_from: SimTime,
    surge_until: SimTime,
) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let neutron_node = deployment.node_of(Service::Neutron, 0);

    let mut specs = Vec::new();
    for i in 0..concurrency {
        let mut s = wf.vm_create_spec(OpSpecId(i as u16));
        s.name = format!("compute.vm_create.{i}");
        specs.push(s);
    }

    let plan = FaultPlan::none()
        .with_resource(ResourceFault {
            node: neutron_node,
            kind: ResourceKind::CpuPercent,
            value: 93.0,
            from: surge_from,
            until: surge_until,
        })
        .with_latency(LatencyFault {
            node: neutron_node,
            extra: ms(60),
            from: surge_from,
            until: surge_until,
        });

    Scenario {
        name: "7.2.2-neutron-api-latency",
        description: "Neutron port APIs slow down under concurrent VM creation; root cause is CPU surge on the Neutron server",
        deployment,
        specs,
        plan,
        config: RunConfig {
            seed,
            // Spread starts across the surge so plenty of operations run
            // both before and during it.
            start_window: surge_until.saturating_sub(secs(5)).max(secs(10)),
            ..RunConfig::default()
        },
        expected_failed_spec: "compute.vm_create".into(),
        expected_cause: ExpectedCause::Resource(neutron_node, ResourceKind::CpuPercent),
    }
}

/// §7.2.3 / §3.1.1 — Linux bridge agent failure: the Neutron L2 agent on
/// the compute hosts has crashed; VM creation fails with "No valid host
/// was found" even though nova-compute is up.
pub fn linuxbridge_crash(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let computes = deployment.compute_nodes();
    let first_compute = computes[0];

    let mut specs = vec![wf.vm_create_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let mut plan = FaultPlan::none();
    for node in computes {
        plan = plan.with_dep(DepFault::ServiceCrash {
            node,
            service: Service::NeutronAgent,
            at: 0,
        });
    }
    // The agent being down surfaces as a scheduling failure on the boot
    // RPC, which the dashboard sees as a "No valid host" REST error.
    let boot_rpc = catalog.rpc_expect(Service::NovaCompute, "build_and_run_instance");
    plan = plan.with_api_fault(ApiFault {
        api: boot_rpc,
        scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RpcException {
            class: "NoValidHost: No valid host was found. There are not enough hosts available"
                .into(),
        },
        abort_op: true,
    });

    Scenario {
        name: "7.2.3-linuxbridge-agent-failure",
        description: "VM create fails with 'No valid host'; root cause is the crashed neutron-linuxbridge-agent on the compute hosts",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "compute.vm_create.canonical".into(),
        expected_cause: ExpectedCause::Dependency(
            first_compute,
            Dependency::ServiceProcess(Service::NeutronAgent),
        ),
    }
}

/// §7.2.4 — NTP failure: a stopped NTP agent on the Cinder host skews its
/// clock, Keystone rejects its tokens with 401, and `cinder list` fails
/// with a misleading "Unable to establish connection" error.
pub fn ntp_failure(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let storage_node = deployment.node_of(Service::Cinder, 0);

    let mut specs = vec![wf.cinder_list_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let auth = catalog.rest_expect(Service::Keystone, HttpMethod::Post, "/v3/auth/tokens");
    let plan = FaultPlan::none()
        .with_dep(DepFault::NtpStop { node: storage_node, at: 0 })
        .with_api_fault(ApiFault {
            api: auth,
            scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
            occurrence: 0,
            error: InjectedError::RestStatus { status: 401, reason: Some("Unauthorized".into()) },
            abort_op: true,
        });

    Scenario {
        name: "7.2.4-ntp-failure",
        description: "Keystone relays 401 to Cinder; root cause is the stopped NTP agent on the Cinder host",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "storage.cinder_list.canonical".into(),
        expected_cause: ExpectedCause::Dependency(storage_node, Dependency::NtpAgent),
    }
}

/// §3.1.1 — VM create with no compute nodes available: every nova-compute
/// process is down, so the boot RPC times out and Horizon shows "No valid
/// host was found".
pub fn no_compute_available(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let computes = deployment.compute_nodes();
    let first_compute = computes[0];

    let mut specs = vec![wf.vm_create_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let mut plan = FaultPlan::none();
    for node in computes {
        plan = plan.with_dep(DepFault::ServiceCrash { node, service: Service::NovaCompute, at: 0 });
    }

    Scenario {
        name: "3.1.1-no-compute-available",
        description: "VM create fails because nova-compute is down on every compute host",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "compute.vm_create.canonical".into(),
        expected_cause: ExpectedCause::Dependency(
            first_compute,
            Dependency::ServiceProcess(Service::NovaCompute),
        ),
    }
}

/// Fig 8b — `tc`-style 50 ms latency injection on all Glance traffic for a
/// 10-minute window in the middle of a long concurrent run.
pub fn glance_latency_injection(
    catalog: &Arc<Catalog>,
    seed: u64,
    concurrency: usize,
    inject_from: SimTime,
    inject_until: SimTime,
) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let image_node = deployment.node_of(Service::Glance, 0);

    // Image-heavy mix so GET /v2/images/{id} is exercised continuously.
    let mut specs = Vec::new();
    for i in 0..concurrency {
        if i % 2 == 0 {
            let mut s = wf.vm_create_spec(OpSpecId(i as u16));
            s.name = format!("compute.vm_create.{i}");
            specs.push(s);
        } else {
            let mut s = wf.image_upload_spec(OpSpecId(i as u16));
            s.name = format!("image.upload.{i}");
            specs.push(s);
        }
    }

    let plan = FaultPlan::none().with_latency(LatencyFault {
        node: image_node,
        extra: ms(50),
        from: inject_from,
        until: inject_until,
    });

    Scenario {
        name: "fig8b-glance-latency",
        description: "50 ms injected on all Glance traffic for a window; level-shift alarms expected during it",
        deployment,
        specs,
        plan,
        config: RunConfig {
            seed,
            start_window: inject_until + inject_from, // spread ops across the run
            ..RunConfig::default()
        },
        expected_failed_spec: "image".into(),
        expected_cause: ExpectedCause::Resource(image_node, ResourceKind::NetMbps),
    }
}

/// Infrastructure outage — the shared MySQL database crashes mid-run.
/// Every API service starts failing with DBConnectionError 500s; the
/// watchers on every node report MySQL unreachable.
pub fn mysql_outage(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let db_node = deployment.node_of(Service::MySql, 0);

    let mut specs = vec![wf.vm_create_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let plan = FaultPlan::none().with_dep(DepFault::ServiceCrash {
        node: db_node,
        service: Service::MySql,
        at: 0,
    });

    Scenario {
        name: "infra-mysql-outage",
        description: "The shared MySQL database is down; every API call fails with DBConnectionError",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "compute.vm_create.canonical".into(),
        expected_cause: ExpectedCause::Dependency(db_node, Dependency::MySqlReachable),
    }
}

/// Infrastructure outage — the RabbitMQ broker crashes mid-run. All RPCs
/// time out; REST-only operations still succeed.
pub fn rabbitmq_outage(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();
    let broker_node = deployment.broker();

    let mut specs = vec![wf.vm_create_spec(OpSpecId(0))];
    specs.extend(background_specs(&wf, background, 1));

    let plan = FaultPlan::none().with_dep(DepFault::ServiceCrash {
        node: broker_node,
        service: Service::RabbitMq,
        at: 0,
    });

    Scenario {
        name: "infra-rabbitmq-outage",
        description: "The RabbitMQ broker is down; every RPC times out and RPC-bearing operations abort",
        deployment,
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "compute.vm_create.canonical".into(),
        expected_cause: ExpectedCause::Dependency(broker_node, Dependency::RabbitMqReachable),
    }
}

/// Limitation 5, demonstrated honestly: operation A deletes the port that
/// operation B is concurrently attaching, so B fails with a 404 — but no
/// node resource is anomalous and no dependency is down. GRETEL names the
/// failed operation yet root cause analysis finds nothing: causal
/// interference between operations is outside its model (as the paper
/// states for itself and most prior art).
pub fn interfering_operations(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Scenario {
    let wf = Workflows::new(catalog.clone());
    let deployment = Deployment::standard();

    // Instance 0: the victim VM create. Instance 1: the interfering
    // deleter. The interference is modelled as a 404 on the victim's port
    // attach (the port is gone).
    let mut specs = vec![wf.vm_create_spec(OpSpecId(0))];
    let mut deleter = OperationSpec {
        id: OpSpecId(1),
        name: "compute.vm_delete.interferer".into(),
        category: gretel_model::Category::Compute,
        steps: wf.vm_delete(),
    };
    deleter.id = OpSpecId(1);
    specs.push(deleter);
    specs.extend(background_specs(&wf, background, 2));

    let put_attach = catalog.rest_expect(Service::Neutron, HttpMethod::Put, "/v2.0/ports/{id}");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: put_attach,
        scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 404, reason: Some("PortNotFound".into()) },
        abort_op: true,
    });

    Scenario {
        name: "limitation5-interfering-operations",
        description: "A concurrent delete removes the port a VM create is attaching; the 404 has no node-state root cause",
        deployment: deployment.clone(),
        specs,
        plan,
        config: RunConfig { seed, ..RunConfig::default() },
        expected_failed_spec: "compute.vm_create.canonical".into(),
        // There IS no node-state cause; encode the expectation as a
        // dependency that will never be reported so tests can assert the
        // *absence* of causes.
        expected_cause: ExpectedCause::Dependency(
            deployment.node_of(Service::Neutron, 0),
            Dependency::Libvirt,
        ),
    }
}

/// The operational (error-producing) case studies as one suite: the fault
/// population that sweep experiments iterate over (e.g. the capture-loss
/// robustness experiment, which re-runs each scenario under increasing
/// impairment). Latency-based scenarios are excluded — performance
/// detection under capture loss is a separate axis.
pub fn operational_suite(catalog: &Arc<Catalog>, seed: u64, background: usize) -> Vec<Scenario> {
    vec![
        failed_image_upload(catalog, seed, background),
        linuxbridge_crash(catalog, seed ^ 0x11, background),
        no_compute_available(catalog, seed ^ 0x22, background),
        mysql_outage(catalog, seed ^ 0x33, background),
        rabbitmq_outage(catalog, seed ^ 0x44, background),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::Catalog;

    #[test]
    fn image_upload_scenario_fails_with_413() {
        let cat = Catalog::openstack();
        let sc = failed_image_upload(&cat, 1, 4);
        let exec = sc.run(cat.clone());
        let failed = &exec.outcomes[0];
        assert!(failed.aborted);
        assert!(exec.messages.iter().any(|m| {
            matches!(m.wire, gretel_model::WireKind::Rest { status: Some(413), .. })
        }));
        // Background ops succeed.
        assert!(exec.outcomes[1..].iter().all(|o| !o.aborted));
    }

    #[test]
    fn linuxbridge_scenario_shows_agent_down_and_rest_relay() {
        let cat = Catalog::openstack();
        let sc = linuxbridge_crash(&cat, 2, 2);
        let exec = sc.run(cat.clone());
        assert!(exec.outcomes[0].aborted);
        // Watchers report the agent down on every compute node.
        let down = exec
            .watchers
            .iter()
            .filter(|w| {
                w.dep == Dependency::ServiceProcess(Service::NeutronAgent) && !w.healthy
            })
            .count();
        assert!(down > 0);
        // A REST error reached the dashboard.
        assert!(exec
            .messages
            .iter()
            .any(|m| m.is_rest_error() && m.dst_service == Service::Horizon));
    }

    #[test]
    fn ntp_scenario_produces_401_and_unhealthy_ntp_watcher() {
        let cat = Catalog::openstack();
        let sc = ntp_failure(&cat, 3, 2);
        let exec = sc.run(cat.clone());
        assert!(exec.messages.iter().any(|m| {
            matches!(m.wire, gretel_model::WireKind::Rest { status: Some(401), .. })
        }));
        assert!(exec
            .watchers
            .iter()
            .any(|w| w.dep == Dependency::NtpAgent && !w.healthy && w.node == NodeId(3)));
    }

    #[test]
    fn no_compute_scenario_aborts_without_explicit_api_fault() {
        let cat = Catalog::openstack();
        let sc = no_compute_available(&cat, 4, 0);
        let exec = sc.run(cat.clone());
        assert!(exec.outcomes[0].aborted);
        assert!(exec.outcomes[0].failed_api.is_some());
    }

    #[test]
    fn mysql_outage_fails_every_api_call() {
        let cat = Catalog::openstack();
        let sc = mysql_outage(&cat, 6, 3);
        let exec = sc.run(cat.clone());
        // Everything that issues a REST call aborts.
        assert!(exec.outcomes.iter().all(|o| o.aborted));
        // Watchers on every node report MySQL unreachable.
        assert!(exec
            .watchers
            .iter()
            .filter(|w| w.dep == Dependency::MySqlReachable)
            .all(|w| !w.healthy));
    }

    #[test]
    fn rabbitmq_outage_fails_rpc_bearing_operations_only() {
        let cat = Catalog::openstack();
        let sc = rabbitmq_outage(&cat, 7, 4);
        let exec = sc.run(cat.clone());
        // The VM create (RPC-bearing) aborts on its first RPC.
        assert!(exec.outcomes[0].aborted);
        // image_list (pure REST background op) succeeds.
        let rest_only = exec
            .outcomes
            .iter()
            .find(|o| o.spec_name.contains("image_list"))
            .expect("image_list background op present");
        assert!(!rest_only.aborted, "REST-only operations ride out a broker outage");
    }

    #[test]
    fn interfering_operations_fault_has_no_node_state_cause() {
        let cat = Catalog::openstack();
        let sc = interfering_operations(&cat, 8, 3);
        let exec = sc.run(cat.clone());
        assert!(exec.outcomes[0].aborted, "victim aborted");
        // No resource override, no dependency down: the watchers are all
        // healthy and resources nominal.
        assert!(exec.watchers.iter().all(|w| w.healthy));
    }

    #[test]
    fn operational_suite_scenarios_all_put_errors_on_the_wire() {
        let cat = Catalog::openstack();
        let suite = operational_suite(&cat, 3, 2);
        assert_eq!(suite.len(), 5);
        for sc in suite {
            let exec = sc.run(cat.clone());
            assert!(
                exec.messages.iter().any(|m| m.is_rest_error() || m.is_rpc_error()),
                "{}: an error message on the wire",
                sc.name
            );
        }
    }

    #[test]
    fn neutron_latency_scenario_operations_succeed() {
        let cat = Catalog::openstack();
        let sc = neutron_api_latency_with_window(&cat, 5, 8, secs(5), secs(60));
        let exec = sc.run(cat.clone());
        // Performance fault: nothing aborts.
        assert!(exec.outcomes.iter().all(|o| !o.aborted));
        // CPU override visible on the Neutron node during the surge.
        let surge = exec
            .resources
            .iter()
            .filter(|r| {
                r.node == NodeId(1)
                    && r.kind == ResourceKind::CpuPercent
                    && r.ts >= secs(5)
                    && r.ts < secs(60)
            })
            .collect::<Vec<_>>();
        assert!(!surge.is_empty());
        assert!(surge.iter().all(|r| r.value > 90.0));
    }
}

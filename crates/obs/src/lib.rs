//! # gretel-obs — pipeline observability for GRETEL itself
//!
//! GRETEL's pitch is passive, lightweight observation of *other* systems;
//! this crate gives its own analyzer pipeline the same treatment. It
//! provides:
//!
//! * [`Stage`] — the pipeline stages (ingest → resequence → window →
//!   detect → match → rca → checkpoint → commit);
//! * [`Counter`] — a lock-free event counter (one relaxed atomic add);
//! * [`Histogram`] — a log2-bucketed latency histogram with
//!   p50/p95/p99/max summaries, three relaxed atomic ops per sample;
//! * [`PipelineMetrics`] — the registry the service threads share. A
//!   *disabled* registry turns every recording call into a branch on a
//!   plain bool (no atomics, no clock reads), so instrumentation can stay
//!   compiled-in everywhere;
//! * two exporters — [`PipelineMetrics::prometheus_text`] (text
//!   exposition, re-parseable with [`parse_prometheus_text`]) and
//!   [`PipelineMetrics::snapshot`] (a serde JSON-roundtrippable
//!   [`MetricsSnapshot`]).
//!
//! Everything is `&self`: one registry is shared by reference (or `Arc`)
//! across the capture agents, the receiver/merge thread and the analysis
//! pool. All atomics use relaxed ordering — the counters are statistics,
//! not synchronization.
//!
//! Event *counts* are deterministic for a fixed workload and seed;
//! latency summaries and queue-depth gauges are wall-clock/scheduling
//! artifacts. [`MetricsSnapshot::deterministic_eq`] compares exactly the
//! reproducible part, which is what the observability experiment asserts.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// One stage of the analyzer pipeline, in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-message fast path on the receiver thread: byte scan, latency
    /// pairing, window push.
    Ingest,
    /// Receiver-side per-frame sequence restoration (dup discard, reorder
    /// parking, gap inference). With the batched transport this stage is
    /// *timed* once per [`FrameBatch`](../gretel_netcap/struct.FrameBatch.html)
    /// drained from the channel but *counted* per decoded frame — the
    /// canonical user of the [`count`](PipelineMetrics::count) /
    /// [`observe`](PipelineMetrics::observe) split: `stage_events` stays
    /// a per-item meter while the latency histogram reflects the real
    /// unit of work.
    Resequence,
    /// Snapshot freeze → job preparation (perf folding, error claiming).
    Window,
    /// Per-fault operation detection (Algorithm 2) over a frozen snapshot.
    Detect,
    /// Shared per-snapshot match preprocessing: the noise-filtered
    /// projection and occurrence index every detection matches against.
    Match,
    /// Root cause analysis (Algorithm 3) over the matched operations.
    Rca,
    /// Checkpoint encode + journal append (recoverable service only).
    Checkpoint,
    /// Diagnosis release into the committed output stream.
    Commit,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Ingest,
        Stage::Resequence,
        Stage::Window,
        Stage::Detect,
        Stage::Match,
        Stage::Rca,
        Stage::Checkpoint,
        Stage::Commit,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// Stable lower-case name (used as the Prometheus `stage` label and
    /// the JSON snapshot key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Resequence => "resequence",
            Stage::Window => "window",
            Stage::Detect => "detect",
            Stage::Match => "match",
            Stage::Rca => "rca",
            Stage::Checkpoint => "checkpoint",
            Stage::Commit => "commit",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Named scalar meters: capture-plane accounting, backpressure, queue
/// depth and checkpoint cadence. Everything except the explicit gauges is
/// a monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Meter {
    /// Frames the capture agents offered to the transport.
    CaptureFrames,
    /// Frames discarded by capture-plane drop impairment.
    CaptureDropped,
    /// Extra frame copies injected by duplication impairment.
    CaptureDuplicated,
    /// Frames delivered out of their original position.
    CaptureReordered,
    /// Frames discarded inside an agent stall window.
    CaptureStalled,
    /// Sequence gaps the receiver inferred.
    CaptureGaps,
    /// Frames inferred lost across those gaps.
    CaptureLost,
    /// Duplicate frames the receiver discarded on arrival.
    CaptureDupDiscarded,
    /// Frames evicted by the `DropOldest` backpressure policy.
    BackpressureDrops,
    /// High-water mark of the snapshot-job queue (gauge: scheduling
    /// dependent, excluded from deterministic comparison).
    JobQueueDepthMax,
    /// Checkpoint records appended to the journal.
    CheckpointsWritten,
    /// Total checkpoint payload bytes journaled.
    CheckpointBytes,
    /// Total payload bytes appended to the durable state store (all
    /// record kinds: checkpoints, released diagnoses, library snapshots).
    StoreBytes,
    /// Fingerprint-library snapshots adopted by a live hot-reload.
    LibraryReloads,
}

impl Meter {
    /// Every meter.
    pub const ALL: [Meter; 14] = [
        Meter::CaptureFrames,
        Meter::CaptureDropped,
        Meter::CaptureDuplicated,
        Meter::CaptureReordered,
        Meter::CaptureStalled,
        Meter::CaptureGaps,
        Meter::CaptureLost,
        Meter::CaptureDupDiscarded,
        Meter::BackpressureDrops,
        Meter::JobQueueDepthMax,
        Meter::CheckpointsWritten,
        Meter::CheckpointBytes,
        Meter::StoreBytes,
        Meter::LibraryReloads,
    ];

    /// Number of meters.
    pub const COUNT: usize = Meter::ALL.len();

    /// Stable snake_case name (Prometheus metric suffix / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Meter::CaptureFrames => "capture_frames",
            Meter::CaptureDropped => "capture_dropped",
            Meter::CaptureDuplicated => "capture_duplicated",
            Meter::CaptureReordered => "capture_reordered",
            Meter::CaptureStalled => "capture_stalled",
            Meter::CaptureGaps => "capture_gaps",
            Meter::CaptureLost => "capture_lost",
            Meter::CaptureDupDiscarded => "capture_dup_discarded",
            Meter::BackpressureDrops => "backpressure_drops",
            Meter::JobQueueDepthMax => "job_queue_depth_max",
            Meter::CheckpointsWritten => "checkpoints_written",
            Meter::CheckpointBytes => "checkpoint_bytes",
            Meter::StoreBytes => "store_bytes",
            Meter::LibraryReloads => "library_reloads",
        }
    }

    /// Gauges record a high-water mark instead of accumulating; their
    /// value depends on thread scheduling and is excluded from
    /// [`MetricsSnapshot::deterministic_eq`].
    pub fn is_gauge(self) -> bool {
        matches!(self, Meter::JobQueueDepthMax)
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// A lock-free monotone counter (or high-water gauge via
/// [`Counter::record_max`]).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Raise the stored high-water mark to at least `v` (relaxed).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so 64 value buckets cover all of
/// `u64` and every bucket's inclusive upper edge is `2^i − 1`.
const BUCKETS: usize = 65;

/// Lock-free log2-bucketed histogram for latency samples (microseconds by
/// convention in this crate). Recording is three relaxed atomic ops
/// (bucket, sum, max); summarizing scans 65 buckets.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Cumulative count of samples `≤ 2^i − 1` for each bucket index, as
    /// the Prometheus exposition needs it, plus the total.
    fn cumulative(&self) -> ([u64; BUCKETS], u64) {
        let mut cum = [0u64; BUCKETS];
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            total += b.load(Relaxed);
            cum[i] = total;
        }
        (cum, total)
    }

    /// The value at quantile `q` (0..=1), estimated as the inclusive
    /// upper edge of the bucket containing it, clamped to the recorded
    /// maximum. 0 for an empty histogram.
    fn quantile(&self, cum: &[u64; BUCKETS], count: u64, q: f64) -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let bucket = cum.iter().position(|&c| c >= rank).unwrap_or(BUCKETS - 1);
        let edge = if bucket == 0 { 0 } else { (1u64 << bucket.min(63)) - 1 };
        edge.min(self.max.load(Relaxed))
    }

    /// Fold another histogram's samples into this one: buckets and sums
    /// add, the maximum is a max. Percentiles cannot be merged from
    /// *summaries*, which is why cross-shard aggregation merges at the
    /// bucket level and only then summarizes.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Relaxed), Relaxed);
        }
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// Summarize: count, sum, max and the p50/p95/p99 upper-edge
    /// estimates.
    pub fn summary(&self) -> LatencySummary {
        let (cum, count) = self.cumulative();
        LatencySummary {
            count,
            sum_us: self.sum.load(Relaxed),
            max_us: self.max.load(Relaxed),
            p50_us: self.quantile(&cum, count, 0.50),
            p95_us: self.quantile(&cum, count, 0.95),
            p99_us: self.quantile(&cum, count, 0.99),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(
            f,
            "Histogram {{ count: {}, p50: {}µs, p95: {}µs, p99: {}µs, max: {}µs }}",
            s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
        )
    }
}

/// Percentile summary of one [`Histogram`]. `count` is deterministic for
/// a fixed workload; the time-valued fields are wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Median, as the containing bucket's upper edge (µs).
    pub p50_us: u64,
    /// 95th percentile upper edge (µs).
    pub p95_us: u64,
    /// 99th percentile upper edge (µs).
    pub p99_us: u64,
}

/// The shared registry: per-stage event counters and latency histograms
/// plus the named [`Meter`]s. Construct with [`PipelineMetrics::enabled`]
/// or [`PipelineMetrics::disabled`]; a disabled registry makes every
/// recording call a no-op behind one branch, so the instrumented pipeline
/// with metrics off is byte-identical (and near-free) compared to an
/// uninstrumented one.
pub struct PipelineMetrics {
    enabled: bool,
    stage_events: [Counter; Stage::COUNT],
    stage_latency: [Histogram; Stage::COUNT],
    meters: [Counter; Meter::COUNT],
}

impl PipelineMetrics {
    fn with_enabled(enabled: bool) -> PipelineMetrics {
        PipelineMetrics {
            enabled,
            stage_events: std::array::from_fn(|_| Counter::new()),
            stage_latency: std::array::from_fn(|_| Histogram::new()),
            meters: std::array::from_fn(|_| Counter::new()),
        }
    }

    /// A live registry.
    pub fn enabled() -> PipelineMetrics {
        Self::with_enabled(true)
    }

    /// A no-op registry: recording calls return after a bool check.
    pub fn disabled() -> PipelineMetrics {
        Self::with_enabled(false)
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Count `n` events at `stage` — one relaxed atomic add when enabled.
    #[inline]
    pub fn count(&self, stage: Stage, n: u64) {
        if self.enabled {
            self.stage_events[stage.idx()].add(n);
        }
    }

    /// Record one latency sample at `stage`. Purely a histogram update:
    /// the event counter is fed only by [`PipelineMetrics::count`], so a
    /// stage timed once per *batch* can still count one event per *item*
    /// without double-booking.
    #[inline]
    pub fn observe(&self, stage: Stage, latency_us: u64) {
        if self.enabled {
            self.stage_latency[stage.idx()].record(latency_us);
        }
    }

    /// Add `n` to a meter.
    #[inline]
    pub fn add(&self, meter: Meter, n: u64) {
        if self.enabled && n > 0 {
            self.meters[meter.idx()].add(n);
        }
    }

    /// Raise a gauge meter's high-water mark to at least `v`.
    #[inline]
    pub fn record_max(&self, meter: Meter, v: u64) {
        if self.enabled {
            self.meters[meter.idx()].record_max(v);
        }
    }

    /// Events counted at `stage` so far.
    pub fn stage_events(&self, stage: Stage) -> u64 {
        self.stage_events[stage.idx()].get()
    }

    /// Latency summary for `stage` so far.
    pub fn stage_latency(&self, stage: Stage) -> LatencySummary {
        self.stage_latency[stage.idx()].summary()
    }

    /// Current value of a meter.
    pub fn meter(&self, meter: Meter) -> u64 {
        self.meters[meter.idx()].get()
    }

    /// Fold another registry's recordings into this one (the cross-shard
    /// aggregation of DESIGN.md §15: each pipeline shard owns a private
    /// registry, and the driver merges them into one fleet view).
    ///
    /// Counters and histogram buckets add; high-water gauges take the
    /// max across shards (the aggregate "deepest queue anywhere"). The
    /// merge is bucket-level, so aggregated percentile summaries are as
    /// faithful as if one registry had recorded every sample. Disabled
    /// registries hold only zeros, so merging one is a no-op; the
    /// *target's* enabled flag is left untouched.
    pub fn merge_from(&self, other: &PipelineMetrics) {
        for (mine, theirs) in self.stage_events.iter().zip(&other.stage_events) {
            mine.add(theirs.get());
        }
        for (mine, theirs) in self.stage_latency.iter().zip(&other.stage_latency) {
            mine.merge_from(theirs);
        }
        for (m, meter) in self.meters.iter().zip(Meter::ALL) {
            let v = other.meter(meter);
            if meter.is_gauge() {
                m.record_max(v);
            } else {
                m.add(v);
            }
        }
    }

    /// A point-in-time copy of every counter, histogram summary and
    /// meter, ready for JSON export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: self.enabled,
            stages: Stage::ALL
                .iter()
                .map(|&s| StageSnapshot {
                    stage: s.name().to_string(),
                    events: self.stage_events(s),
                    latency: self.stage_latency(s),
                })
                .collect(),
            meters: Meter::ALL
                .iter()
                .map(|&m| MeterSnapshot {
                    name: m.name().to_string(),
                    value: self.meter(m),
                    gauge: m.is_gauge(),
                })
                .collect(),
        }
    }

    /// Prometheus-style text exposition of the whole registry:
    /// `gretel_stage_events_total` / `gretel_stage_latency_us` (a
    /// classic cumulative-`le` histogram per stage) and one
    /// `gretel_<meter>` sample per [`Meter`]. Parse it back with
    /// [`parse_prometheus_text`].
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP gretel_stage_events_total Events processed per pipeline stage\n");
        out.push_str("# TYPE gretel_stage_events_total counter\n");
        for &s in &Stage::ALL {
            let _ = writeln!(
                out,
                "gretel_stage_events_total{{stage=\"{}\"}} {}",
                s.name(),
                self.stage_events(s)
            );
        }
        out.push_str("# HELP gretel_stage_latency_us Per-stage latency in microseconds\n");
        out.push_str("# TYPE gretel_stage_latency_us histogram\n");
        for &s in &Stage::ALL {
            let h = &self.stage_latency[s.idx()];
            let (cum, total) = h.cumulative();
            // Emit cumulative buckets up to the highest non-empty one;
            // everything above it repeats the total, which `+Inf` covers.
            let top = h.buckets.iter().rposition(|b| b.load(Relaxed) > 0).unwrap_or(0);
            for (i, &c) in cum.iter().enumerate().take(top + 1) {
                let le = if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
                let _ = writeln!(
                    out,
                    "gretel_stage_latency_us_bucket{{stage=\"{}\",le=\"{le}\"}} {c}",
                    s.name()
                );
            }
            let _ = writeln!(
                out,
                "gretel_stage_latency_us_bucket{{stage=\"{}\",le=\"+Inf\"}} {total}",
                s.name()
            );
            let _ = writeln!(
                out,
                "gretel_stage_latency_us_sum{{stage=\"{}\"}} {}",
                s.name(),
                h.sum.load(Relaxed)
            );
            let _ = writeln!(
                out,
                "gretel_stage_latency_us_count{{stage=\"{}\"}} {total}",
                s.name()
            );
        }
        for &m in &Meter::ALL {
            let kind = if m.is_gauge() { "gauge" } else { "counter" };
            let _ = writeln!(out, "# TYPE gretel_{} {kind}", m.name());
            let _ = writeln!(out, "gretel_{} {}", m.name(), self.meter(m));
        }
        out
    }
}

impl std::fmt::Debug for PipelineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PipelineMetrics {{ enabled: {} }}", self.enabled)
    }
}

/// A timer for one stage execution. Started via [`StageTimer::start`]
/// against an optional registry: with `None` (or a disabled registry) no
/// clock is read and [`StageTimer::finish`] is free.
#[must_use = "a StageTimer records nothing unless finished"]
pub struct StageTimer<'a> {
    target: Option<(&'a PipelineMetrics, Stage)>,
    t0: Option<Instant>,
}

impl<'a> StageTimer<'a> {
    /// Start timing `stage` against `metrics` (no-op when `None` or
    /// disabled).
    #[inline]
    pub fn start(metrics: Option<&'a PipelineMetrics>, stage: Stage) -> StageTimer<'a> {
        match metrics {
            Some(m) if m.enabled => {
                StageTimer { target: Some((m, stage)), t0: Some(Instant::now()) }
            }
            _ => StageTimer { target: None, t0: None },
        }
    }

    /// Stop the clock and record one latency sample (events are counted
    /// separately via [`PipelineMetrics::count`]).
    #[inline]
    pub fn finish(self) {
        if let (Some((m, stage)), Some(t0)) = (self.target, self.t0) {
            m.observe(stage, t0.elapsed().as_micros() as u64);
        }
    }
}

/// JSON-serializable snapshot of a [`PipelineMetrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether the registry was recording.
    pub enabled: bool,
    /// Per-stage events + latency summaries, in pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// Every named meter.
    pub meters: Vec<MeterSnapshot>,
}

/// One stage's counters inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// [`Stage::name`].
    pub stage: String,
    /// Events counted.
    pub events: u64,
    /// Latency summary (wall-clock valued; `count` is deterministic).
    pub latency: LatencySummary,
}

/// One meter's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterSnapshot {
    /// [`Meter::name`].
    pub name: String,
    /// Recorded value.
    pub value: u64,
    /// Whether this is a high-water gauge (scheduling dependent).
    pub gauge: bool,
}

impl MetricsSnapshot {
    /// Compare only the fields that are deterministic for a fixed
    /// workload and seed: stage names and event counts, latency *sample
    /// counts* (but no time values) and every non-gauge meter. Two runs
    /// of the same seeded pipeline must agree under this comparison even
    /// though their latency summaries and queue-depth gauges differ.
    pub fn deterministic_eq(&self, other: &MetricsSnapshot) -> bool {
        self.enabled == other.enabled
            && self.stages.len() == other.stages.len()
            && self
                .stages
                .iter()
                .zip(&other.stages)
                .all(|(a, b)| {
                    a.stage == b.stage
                        && a.events == b.events
                        && a.latency.count == b.latency.count
                })
            && self.meters.len() == other.meters.len()
            && self
                .meters
                .iter()
                .zip(&other.meters)
                .all(|(a, b)| a.name == b.name && a.gauge == b.gauge && (a.gauge || a.value == b.value))
    }
}

/// One parsed sample line of a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`-aware).
    pub value: f64,
}

/// Parse a Prometheus text exposition (the subset
/// [`PipelineMetrics::prometheus_text`] emits: `# HELP`/`# TYPE` comments
/// and `name{labels} value` samples). Returns every sample, or a
/// description of the first malformed line.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", ln + 1))?;
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value {v:?}", ln + 1))?,
        };
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {line:?}", ln + 1))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label {pair:?}", ln + 1))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: unquoted label value {v:?}", ln + 1))?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(format!("line {}: bad metric name {name:?}", ln + 1));
        }
        out.push(PromSample { name, labels, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_meter_tables_are_consistent() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i, "{}", s.name());
        }
        for (i, m) in Meter::ALL.iter().enumerate() {
            assert_eq!(m.idx(), i, "{}", m.name());
        }
        let mut names: Vec<&str> = Meter::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Meter::COUNT, "meter names must be unique");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_us, 5050);
        assert_eq!(s.max_us, 100);
        // Ranks 50/95/99 land in buckets [32,64) and [64,128): upper
        // edges 63 and 127, the latter clamped to the recorded max.
        assert_eq!(s.p50_us, 63);
        assert_eq!(s.p95_us, 100);
        assert_eq!(s.p99_us, 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            LatencySummary { count: 0, sum_us: 0, max_us: 0, p50_us: 0, p95_us: 0, p99_us: 0 }
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = PipelineMetrics::disabled();
        m.count(Stage::Ingest, 5);
        m.observe(Stage::Detect, 123);
        m.add(Meter::CaptureFrames, 9);
        m.record_max(Meter::JobQueueDepthMax, 7);
        StageTimer::start(Some(&m), Stage::Rca).finish();
        assert!(!m.is_enabled());
        let snap = m.snapshot();
        assert!(snap.stages.iter().all(|s| s.events == 0 && s.latency.count == 0));
        assert!(snap.meters.iter().all(|s| s.value == 0));
    }

    #[test]
    fn enabled_registry_counts() {
        let m = PipelineMetrics::enabled();
        m.count(Stage::Ingest, 3);
        m.observe(Stage::Ingest, 10);
        m.observe(Stage::Detect, 1000);
        m.add(Meter::CaptureGaps, 2);
        m.record_max(Meter::JobQueueDepthMax, 4);
        m.record_max(Meter::JobQueueDepthMax, 2);
        // observe() is histogram-only: events move only through count().
        assert_eq!(m.stage_events(Stage::Ingest), 3);
        assert_eq!(m.stage_latency(Stage::Ingest).count, 1);
        assert_eq!(m.stage_events(Stage::Detect), 0);
        assert_eq!(m.stage_latency(Stage::Detect).count, 1);
        assert_eq!(m.meter(Meter::CaptureGaps), 2);
        assert_eq!(m.meter(Meter::JobQueueDepthMax), 4);
        let t = StageTimer::start(Some(&m), Stage::Rca);
        t.finish();
        assert_eq!(m.stage_latency(Stage::Rca).count, 1);
        assert_eq!(m.stage_events(Stage::Rca), 0);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = PipelineMetrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.count(Stage::Ingest, 1);
                        m.observe(Stage::Detect, 7);
                    }
                });
            }
        });
        assert_eq!(m.stage_events(Stage::Ingest), 4000);
        assert_eq!(m.stage_latency(Stage::Detect).count, 4000);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = PipelineMetrics::enabled();
        m.observe(Stage::Ingest, 12);
        m.observe(Stage::Detect, 345);
        m.add(Meter::CaptureFrames, 99);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    fn deterministic_eq_ignores_wall_clock_fields() {
        let a = PipelineMetrics::enabled();
        let b = PipelineMetrics::enabled();
        for (fast, slow) in [(1u64, 1000u64), (2, 2000)] {
            a.observe(Stage::Detect, fast);
            b.observe(Stage::Detect, slow);
        }
        a.record_max(Meter::JobQueueDepthMax, 1);
        b.record_max(Meter::JobQueueDepthMax, 9);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_ne!(sa, sb, "full snapshots differ on wall-clock fields");
        assert!(sa.deterministic_eq(&sb), "deterministic view agrees");
        b.add(Meter::CaptureLost, 1);
        assert!(!sa.deterministic_eq(&b.snapshot()), "counter divergence is detected");
        b2_events_diverge();
    }

    fn b2_events_diverge() {
        let a = PipelineMetrics::enabled();
        let b = PipelineMetrics::enabled();
        a.count(Stage::Commit, 1);
        assert!(!a.snapshot().deterministic_eq(&b.snapshot()));
    }

    #[test]
    fn merged_registries_equal_one_registry_recording_everything() {
        // Record a workload split across two "shard" registries and the
        // same workload on one reference registry: bucket-level merging
        // must make the aggregate snapshot identical (modulo gauges, which
        // take the max).
        let whole = PipelineMetrics::enabled();
        let a = PipelineMetrics::enabled();
        let b = PipelineMetrics::enabled();
        for (i, shard) in [(0u64, &a), (1, &b), (2, &a), (3, &b), (4, &a)] {
            for m in [shard, &whole] {
                m.count(Stage::Ingest, 1);
                m.observe(Stage::Detect, 10 * i + 1);
                m.add(Meter::CaptureFrames, 2);
            }
        }
        whole.record_max(Meter::JobQueueDepthMax, 9);
        a.record_max(Meter::JobQueueDepthMax, 9);
        b.record_max(Meter::JobQueueDepthMax, 3);

        let agg = PipelineMetrics::enabled();
        agg.merge_from(&a);
        agg.merge_from(&b);
        assert_eq!(agg.snapshot(), whole.snapshot());
        // The percentile summary comes from merged buckets, not averaged
        // summaries.
        assert_eq!(agg.stage_latency(Stage::Detect), whole.stage_latency(Stage::Detect));
    }

    #[test]
    fn merging_a_disabled_registry_adds_nothing() {
        let agg = PipelineMetrics::enabled();
        agg.count(Stage::Commit, 2);
        let silent = PipelineMetrics::disabled();
        silent.count(Stage::Commit, 50);
        agg.merge_from(&silent);
        assert_eq!(agg.stage_events(Stage::Commit), 2);
        assert!(agg.is_enabled());
    }

    #[test]
    fn prometheus_text_parses_and_matches_registry() {
        let m = PipelineMetrics::enabled();
        m.count(Stage::Ingest, 2);
        m.observe(Stage::Ingest, 3);
        m.observe(Stage::Ingest, 300);
        m.add(Meter::CaptureFrames, 7);
        m.record_max(Meter::JobQueueDepthMax, 2);
        let text = m.prometheus_text();
        let samples = parse_prometheus_text(&text).expect("exposition parses");

        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label.is_none_or(|(k, v)| {
                            s.labels.iter().any(|(lk, lv)| lk == k && lv == v)
                        })
                })
                .unwrap_or_else(|| panic!("sample {name} {label:?}"))
                .value
        };
        assert_eq!(find("gretel_stage_events_total", Some(("stage", "ingest"))), 2.0);
        assert_eq!(find("gretel_stage_latency_us_count", Some(("stage", "ingest"))), 2.0);
        assert_eq!(find("gretel_stage_latency_us_sum", Some(("stage", "ingest"))), 303.0);
        assert_eq!(find("gretel_capture_frames", None), 7.0);
        assert_eq!(find("gretel_job_queue_depth_max", None), 2.0);

        // Histogram buckets are cumulative and end in +Inf == count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "gretel_stage_latency_us_bucket"
                    && s.labels.contains(&("stage".into(), "ingest".into()))
                    && s.labels.contains(&("le".into(), "+Inf".into()))
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        let mut last = 0.0;
        for s in samples.iter().filter(|s| {
            s.name == "gretel_stage_latency_us_bucket"
                && s.labels.contains(&("stage".into(), "ingest".into()))
        }) {
            assert!(s.value >= last, "buckets are cumulative");
            last = s.value;
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("metric_without_value").is_err());
        assert!(parse_prometheus_text("name{unterminated 1").is_err());
        assert!(parse_prometheus_text("name{k=v} 1").is_err(), "unquoted label value");
        assert!(parse_prometheus_text("bad name 1").is_err());
        assert!(parse_prometheus_text("ok_name 1.5\n# comment\n").is_ok());
    }
}

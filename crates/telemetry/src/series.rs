//! Time series of observations.
//!
//! Both telemetry (regularly polled node metrics) and per-API latency
//! observations (irregular, one point per completed request) are stored as
//! a [`TimeSeries`]: timestamp-ordered `(ts, value)` points with robust
//! statistics helpers (median / MAD), which the outlier detectors build on.

use gretel_sim::SimTime;

/// A timestamp-ordered sequence of observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append an observation. Timestamps must be non-decreasing.
    pub fn push(&mut self, ts: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(ts >= last, "time series timestamps must be non-decreasing");
        }
        self.points.push((ts, value));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Timestamp of the last point.
    pub fn last_ts(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Points with `from <= ts < until`.
    pub fn window(&self, from: SimTime, until: SimTime) -> &[(SimTime, f64)] {
        let lo = self.points.partition_point(|&(t, _)| t < from);
        let hi = self.points.partition_point(|&(t, _)| t < until);
        &self.points[lo..hi]
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.len() as f64)
        }
    }

    /// Median (`None` when empty).
    pub fn median(&self) -> Option<f64> {
        median_of(&self.values().collect::<Vec<_>>())
    }

    /// Median absolute deviation, scaled by 1.4826 to estimate sigma for
    /// normal data (`None` when empty).
    pub fn mad_sigma(&self) -> Option<f64> {
        mad_sigma_of(&self.values().collect::<Vec<_>>())
    }
}

/// Median of a slice (not required to be sorted). `None` when empty.
pub fn median_of(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in series"));
    let mid = v.len() / 2;
    Some(if v.len().is_multiple_of(2) { (v[mid - 1] + v[mid]) / 2.0 } else { v[mid] })
}

/// MAD-based sigma estimate (1.4826 × median |x − median|).
pub fn mad_sigma_of(values: &[f64]) -> Option<f64> {
    let med = median_of(values)?;
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median_of(&deviations).map(|mad| 1.4826 * mad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new();
        for i in 0..10u64 {
            s.push(i * 10, i as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.last_ts(), Some(90));
        assert_eq!(s.window(20, 50).len(), 3);
        assert_eq!(s.window(0, 1000).len(), 10);
        assert_eq!(s.window(95, 1000).len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median_of(&[]), None);
    }

    #[test]
    fn mad_sigma_estimates_spread() {
        // Tight cluster: tiny sigma. Wide cluster: bigger sigma.
        let tight = mad_sigma_of(&[10.0, 10.1, 9.9, 10.05, 9.95]).unwrap();
        let wide = mad_sigma_of(&[10.0, 14.0, 6.0, 12.0, 8.0]).unwrap();
        assert!(tight < 0.5);
        assert!(wide > 2.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = mad_sigma_of(&[10.0, 10.2, 9.8, 10.1, 9.9, 10.0]).unwrap();
        let with_outlier = mad_sigma_of(&[10.0, 10.2, 9.8, 10.1, 9.9, 1000.0]).unwrap();
        // Unlike stddev, MAD barely moves.
        assert!(with_outlier < clean * 5.0 + 1.0);
    }

    #[test]
    fn stats_on_series() {
        let mut s = TimeSeries::new();
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            s.push(i as u64, *v);
        }
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.median(), Some(2.5));
        assert!(s.mad_sigma().unwrap() > 0.0);
    }
}

//! # gretel-telemetry — distributed state monitoring
//!
//! The collectd + watchers substrate (see DESIGN.md §1): time series of
//! per-node resource metrics, dependency-watcher state, and the online
//! level-shift outlier detector GRETEL plugs in where the paper used R's
//! `tsoutliers` (LS mode).
//!
//! * [`series`] — timestamp-ordered series with robust statistics;
//! * [`outlier`] — pluggable online detectors; [`outlier::LevelShiftDetector`]
//!   is the default (one alarm per confirmed shift, adaptive re-baselining);
//! * [`store`] — the analyzer-side [`store::TelemetryStore`] with the
//!   anomaly queries root cause analysis runs (Algorithm 3).

#![deny(missing_docs)]

pub mod outlier;
pub mod series;
pub mod store;

pub use outlier::{
    detect_all, Anomaly, AnomalyKind, EwmaDetector, LevelShiftConfig, LevelShiftDetector,
    OutlierDetector, SpikeDetector,
};
pub use series::TimeSeries;
pub use store::{ResourceEvidence, TelemetryStore};

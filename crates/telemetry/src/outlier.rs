//! Online outlier detection.
//!
//! The paper plugs R's `tsoutliers` package (LS — Level Shift — mode) into
//! GRETEL to flag sustained shifts in API latency and resource series
//! (§6): "The LS mode ensures that GRETEL adapts to the underlying system
//! changes and does not report many false alarms", and "LS does not raise
//! alerts even if latency variations are smaller than the initial observed
//! spike" (§7.3). [`LevelShiftDetector`] reproduces that contract online:
//!
//! * maintain a robust baseline (median + MAD-sigma) over a trailing
//!   window;
//! * when the median of the most recent `test_window` points deviates from
//!   the baseline median by more than `k_sigma` sigmas, raise one
//!   [`Anomaly`] and **re-baseline to the new level** so a sustained shift
//!   does not alarm forever;
//! * a spike smaller than an already-confirmed shift does not re-alarm.
//!
//! Detection is pluggable (paper: "administrators can leverage any
//! sophisticated detection mechanism"): anything implementing
//! [`OutlierDetector`] can replace the default.

use crate::series::{mad_sigma_of, median_of};
use gretel_sim::SimTime;
use std::collections::VecDeque;

/// Kind of detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Sustained upward level shift.
    LevelShiftUp,
    /// Sustained downward level shift.
    LevelShiftDown,
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Time of the observation that confirmed the anomaly.
    pub ts: SimTime,
    /// The observed (test-window median) value.
    pub value: f64,
    /// The baseline median it deviated from.
    pub baseline: f64,
    /// Shift direction.
    pub kind: AnomalyKind,
}

/// Streaming outlier detection interface.
pub trait OutlierDetector {
    /// Feed one observation; returns an anomaly when one is confirmed at
    /// this point.
    fn update(&mut self, ts: SimTime, value: f64) -> Option<Anomaly>;

    /// Reset all internal state.
    fn reset(&mut self);

    /// Serialize the detector's *dynamic* state for checkpointing (the
    /// configuration is not included — a restored detector must be
    /// constructed with the same configuration first). Returns `None` when
    /// the detector does not support checkpointing; callers treat that as
    /// "this analyzer cannot be checkpointed" rather than silently losing
    /// state.
    fn export_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore dynamic state previously produced by
    /// [`OutlierDetector::export_state`] on an identically configured
    /// detector. Returns `false` (leaving the detector untouched or reset)
    /// when the bytes do not decode; a checkpoint restore treats that as a
    /// hard error.
    fn import_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
}

/// Minimal byte writer/reader for detector state (checkpoint payloads are
/// internal, versioned by the journal that carries them).
mod statebuf {
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_f64_seq<'a>(out: &mut Vec<u8>, vals: impl ExactSizeIterator<Item = &'a f64>) {
        put_u32(out, vals.len() as u32);
        for &v in vals {
            put_f64(out, v);
        }
    }

    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        pub fn u32(&mut self) -> Option<u32> {
            let b = self.buf.get(self.pos..self.pos + 4)?;
            self.pos += 4;
            Some(u32::from_le_bytes(b.try_into().ok()?))
        }

        pub fn f64(&mut self) -> Option<f64> {
            let b = self.buf.get(self.pos..self.pos + 8)?;
            self.pos += 8;
            Some(f64::from_bits(u64::from_le_bytes(b.try_into().ok()?)))
        }

        pub fn f64_seq(&mut self) -> Option<Vec<f64>> {
            let n = self.u32()? as usize;
            if n > self.buf.len().saturating_sub(self.pos) / 8 {
                return None; // length prefix inconsistent with remaining bytes
            }
            (0..n).map(|_| self.f64()).collect()
        }

        pub fn done(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

/// Configuration of the level-shift detector.
#[derive(Debug, Clone, Copy)]
pub struct LevelShiftConfig {
    /// Points forming the trailing baseline.
    pub baseline_window: usize,
    /// Consecutive recent points whose median is tested against the
    /// baseline.
    pub test_window: usize,
    /// Deviation threshold in MAD-sigmas.
    pub k_sigma: f64,
    /// Floor for the sigma estimate, as a fraction of the baseline median
    /// (guards against near-constant baselines making every blip a shift).
    pub min_sigma_frac: f64,
}

impl Default for LevelShiftConfig {
    fn default() -> Self {
        LevelShiftConfig {
            baseline_window: 40,
            test_window: 5,
            k_sigma: 5.0,
            min_sigma_frac: 0.05,
        }
    }
}

/// Online level-shift detector (the `tsoutliers` LS substitute).
///
/// ```
/// use gretel_telemetry::{LevelShiftDetector, OutlierDetector};
///
/// let mut det = LevelShiftDetector::default();
/// // Stationary latencies: no alarm.
/// for i in 0..100 {
///     assert!(det.update(i, 25.0).is_none());
/// }
/// // A sustained 4x level shift: exactly one alarm, then adaptation.
/// let alarms: usize =
///     (100..200).filter(|&i| det.update(i, 100.0).is_some()).count();
/// assert_eq!(alarms, 1);
/// ```
///
/// Baseline statistics (median, MAD) are cached and refreshed every
/// `test_window` points rather than per observation — the baseline is a
/// trailing window, so its robust statistics drift slowly and the cache
/// keeps the per-observation cost O(1) amortized (this detector sits on
/// the analyzer's per-message hot path).
#[derive(Debug, Clone)]
pub struct LevelShiftDetector {
    cfg: LevelShiftConfig,
    baseline: VecDeque<f64>,
    test: VecDeque<f64>,
    cached_stats: Option<(f64, f64)>,
    staleness: usize,
}

impl LevelShiftDetector {
    /// New detector with the given configuration.
    pub fn new(cfg: LevelShiftConfig) -> LevelShiftDetector {
        LevelShiftDetector {
            cfg,
            baseline: VecDeque::new(),
            test: VecDeque::new(),
            cached_stats: None,
            staleness: 0,
        }
    }

    fn baseline_stats(&mut self) -> (f64, f64) {
        if let Some(stats) = self.cached_stats {
            if self.staleness < self.cfg.test_window {
                self.staleness += 1;
                return stats;
            }
        }
        let base: Vec<f64> = self.baseline.iter().copied().collect();
        let med = median_of(&base).expect("baseline non-empty");
        let sigma = mad_sigma_of(&base)
            .unwrap_or(0.0)
            .max(self.cfg.min_sigma_frac * med.abs())
            .max(f64::EPSILON);
        self.cached_stats = Some((med, sigma));
        self.staleness = 0;
        (med, sigma)
    }

    /// Current baseline median, if enough data has been seen.
    pub fn baseline_median(&self) -> Option<f64> {
        if self.baseline.is_empty() {
            None
        } else {
            median_of(&self.baseline.iter().copied().collect::<Vec<_>>())
        }
    }
}

impl Default for LevelShiftDetector {
    fn default() -> Self {
        Self::new(LevelShiftConfig::default())
    }
}

impl OutlierDetector for LevelShiftDetector {
    fn update(&mut self, ts: SimTime, value: f64) -> Option<Anomaly> {
        // Warm-up: fill the baseline first.
        if self.baseline.len() < self.cfg.baseline_window {
            self.baseline.push_back(value);
            return None;
        }
        self.test.push_back(value);
        if self.test.len() > self.cfg.test_window {
            // The oldest test point graduates into the baseline.
            if let Some(v) = self.test.pop_front() {
                self.baseline.push_back(v);
                if self.baseline.len() > self.cfg.baseline_window {
                    self.baseline.pop_front();
                }
            }
        }
        if self.test.len() < self.cfg.test_window {
            return None;
        }

        let (base_med, sigma) = self.baseline_stats();
        let test: Vec<f64> = self.test.iter().copied().collect();
        let test_med = median_of(&test).expect("test non-empty");

        let deviation = (test_med - base_med) / sigma;
        if deviation.abs() >= self.cfg.k_sigma {
            // Confirmed level shift: adapt — the new level becomes the
            // baseline, so the sustained shift raises exactly one alarm
            // and later smaller variations are judged against it.
            self.baseline.clear();
            self.baseline.extend(self.test.iter().copied());
            // Re-fill baseline to a workable size by repeating the test
            // window (it will roll forward with real data).
            while self.baseline.len() < self.cfg.baseline_window {
                let copy: Vec<f64> = self.test.iter().copied().collect();
                for v in copy {
                    if self.baseline.len() >= self.cfg.baseline_window {
                        break;
                    }
                    self.baseline.push_back(v);
                }
            }
            self.test.clear();
            self.cached_stats = None;
            return Some(Anomaly {
                ts,
                value: test_med,
                baseline: base_med,
                kind: if deviation > 0.0 {
                    AnomalyKind::LevelShiftUp
                } else {
                    AnomalyKind::LevelShiftDown
                },
            });
        }
        None
    }

    fn reset(&mut self) {
        self.baseline.clear();
        self.test.clear();
        self.cached_stats = None;
        self.staleness = 0;
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        use statebuf::{put_f64, put_f64_seq, put_u32};
        let mut out = Vec::new();
        put_f64_seq(&mut out, self.baseline.iter());
        put_f64_seq(&mut out, self.test.iter());
        match self.cached_stats {
            Some((med, sigma)) => {
                put_u32(&mut out, 1);
                put_f64(&mut out, med);
                put_f64(&mut out, sigma);
            }
            None => put_u32(&mut out, 0),
        }
        put_u32(&mut out, self.staleness as u32);
        Some(out)
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = statebuf::Reader::new(bytes);
        let Some(baseline) = r.f64_seq() else { return false };
        let Some(test) = r.f64_seq() else { return false };
        let cached = match r.u32() {
            Some(0) => None,
            Some(1) => match (r.f64(), r.f64()) {
                (Some(m), Some(s)) => Some((m, s)),
                _ => return false,
            },
            _ => return false,
        };
        let Some(staleness) = r.u32() else { return false };
        if !r.done() {
            return false;
        }
        self.baseline = baseline.into();
        self.test = test.into();
        self.cached_stats = cached;
        self.staleness = staleness as usize;
        true
    }
}

/// Run a detector over a whole series, collecting all anomalies.
pub fn detect_all<D: OutlierDetector>(
    detector: &mut D,
    points: impl IntoIterator<Item = (SimTime, f64)>,
) -> Vec<Anomaly> {
    points.into_iter().filter_map(|(t, v)| detector.update(t, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy(rng: &mut StdRng, level: f64, jitter: f64) -> f64 {
        level + rng.gen_range(-jitter..jitter)
    }

    #[test]
    fn stationary_series_never_alarms() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = LevelShiftDetector::default();
        let pts: Vec<(SimTime, f64)> =
            (0..500).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))).collect();
        assert!(detect_all(&mut det, pts).is_empty());
    }

    #[test]
    fn sustained_shift_raises_exactly_one_alarm() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = LevelShiftDetector::default();
        let mut pts: Vec<(SimTime, f64)> =
            (0..100).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))).collect();
        pts.extend((100..300).map(|i| (i as u64, noisy(&mut rng, 125.0, 2.0))));
        let alarms = detect_all(&mut det, pts);
        assert_eq!(alarms.len(), 1, "adaptive LS: one alarm per shift, got {alarms:?}");
        assert_eq!(alarms[0].kind, AnomalyKind::LevelShiftUp);
        assert!(alarms[0].ts >= 100 && alarms[0].ts <= 115);
    }

    #[test]
    fn shift_down_is_detected_when_level_recovers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = LevelShiftDetector::default();
        let mut pts: Vec<(SimTime, f64)> =
            (0..100).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))).collect();
        pts.extend((100..200).map(|i| (i as u64, noisy(&mut rng, 125.0, 2.0))));
        pts.extend((200..300).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))));
        let alarms = detect_all(&mut det, pts);
        assert_eq!(alarms.len(), 2);
        assert_eq!(alarms[0].kind, AnomalyKind::LevelShiftUp);
        assert_eq!(alarms[1].kind, AnomalyKind::LevelShiftDown);
    }

    #[test]
    fn single_spike_does_not_alarm() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut det = LevelShiftDetector::default();
        let mut pts: Vec<(SimTime, f64)> =
            (0..200).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))).collect();
        pts[120].1 = 500.0; // one isolated spike — LS is about shifts
        assert!(detect_all(&mut det, pts).is_empty());
    }

    #[test]
    fn variations_smaller_than_the_shift_do_not_realarm() {
        // Paper §7.3: "LS does not raise alerts even if latency variations
        // are smaller than the initial observed spike."
        let mut rng = StdRng::seed_from_u64(5);
        let mut det = LevelShiftDetector::default();
        let mut pts: Vec<(SimTime, f64)> =
            (0..100).map(|i| (i as u64, noisy(&mut rng, 25.0, 2.0))).collect();
        pts.extend((100..200).map(|i| (i as u64, noisy(&mut rng, 125.0, 2.0))));
        // After adaptation, ±10ms wiggle around the new 125ms level.
        pts.extend((200..400).map(|i| (i as u64, noisy(&mut rng, 125.0, 10.0))));
        let alarms = detect_all(&mut det, pts);
        assert_eq!(alarms.len(), 1);
    }

    #[test]
    fn gentle_drift_is_adapted_without_alarms() {
        // A slow ramp (+0.2% per point) rolls through the trailing
        // baseline without ever tripping the shift test.
        let mut det = LevelShiftDetector::default();
        let mut alarms = 0;
        let mut level = 100.0;
        for i in 0..600u64 {
            level *= 1.002;
            if det.update(i, level).is_some() {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "gentle drift must not alarm");
    }

    #[test]
    fn steep_ramp_does_alarm() {
        let mut det = LevelShiftDetector::default();
        let mut alarms = 0;
        for i in 0..100u64 {
            if det.update(i, 100.0).is_some() {
                alarms += 1;
            }
        }
        let mut level = 100.0;
        for i in 100..160u64 {
            level *= 1.2; // +20% per point
            if det.update(i, level).is_some() {
                alarms += 1;
            }
        }
        assert!(alarms >= 1, "steep ramp alarms");
    }

    #[test]
    fn reset_clears_state() {
        let mut det = LevelShiftDetector::default();
        for i in 0..100 {
            det.update(i, 25.0);
        }
        assert!(det.baseline_median().is_some());
        det.reset();
        assert!(det.baseline_median().is_none());
    }

    #[test]
    fn warmup_produces_no_alarms() {
        let mut det = LevelShiftDetector::default();
        // Fewer points than the baseline window.
        for i in 0..30 {
            assert!(det.update(i, (i as f64) * 100.0).is_none());
        }
    }
}

/// Exponentially-weighted moving-average detector: flags observations
/// deviating from the EWMA by more than `k` estimated sigmas. Cheaper and
/// twitchier than [`LevelShiftDetector`]; an alternative plug-in
/// (the paper: "administrators can leverage any sophisticated detection
/// mechanism").
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    /// Smoothing factor for the mean (0 < λ ≤ 1).
    pub lambda: f64,
    /// Alarm threshold in estimated sigmas.
    pub k_sigma: f64,
    mean: Option<f64>,
    var: f64,
    warmup: usize,
    seen: usize,
}

impl EwmaDetector {
    /// New detector with smoothing `lambda` and threshold `k_sigma`.
    pub fn new(lambda: f64, k_sigma: f64) -> EwmaDetector {
        assert!(lambda > 0.0 && lambda <= 1.0);
        EwmaDetector { lambda, k_sigma, mean: None, var: 0.0, warmup: 20, seen: 0 }
    }
}

impl Default for EwmaDetector {
    fn default() -> Self {
        EwmaDetector::new(0.1, 6.0)
    }
}

impl OutlierDetector for EwmaDetector {
    fn update(&mut self, ts: SimTime, value: f64) -> Option<Anomaly> {
        let mean = match self.mean {
            None => {
                self.mean = Some(value);
                self.seen = 1;
                return None;
            }
            Some(m) => m,
        };
        let sigma = self.var.sqrt().max(0.05 * mean.abs()).max(f64::EPSILON);
        let deviation = (value - mean) / sigma;
        let out = if self.seen >= self.warmup && deviation.abs() >= self.k_sigma {
            Some(Anomaly {
                ts,
                value,
                baseline: mean,
                kind: if deviation > 0.0 {
                    AnomalyKind::LevelShiftUp
                } else {
                    AnomalyKind::LevelShiftDown
                },
            })
        } else {
            None
        };
        // Update the EWMA (the anomalous value is folded in, so a
        // sustained shift is adapted to rather than re-alarmed forever).
        let diff = value - mean;
        self.mean = Some(mean + self.lambda * diff);
        self.var = (1.0 - self.lambda) * (self.var + self.lambda * diff * diff);
        self.seen += 1;
        out
    }

    fn reset(&mut self) {
        self.mean = None;
        self.var = 0.0;
        self.seen = 0;
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        use statebuf::{put_f64, put_u32};
        let mut out = Vec::new();
        match self.mean {
            Some(m) => {
                put_u32(&mut out, 1);
                put_f64(&mut out, m);
            }
            None => put_u32(&mut out, 0),
        }
        put_f64(&mut out, self.var);
        put_u32(&mut out, self.seen as u32);
        Some(out)
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = statebuf::Reader::new(bytes);
        let mean = match r.u32() {
            Some(0) => None,
            Some(1) => match r.f64() {
                Some(m) => Some(m),
                None => return false,
            },
            _ => return false,
        };
        let (Some(var), Some(seen)) = (r.f64(), r.u32()) else { return false };
        if !r.done() {
            return false;
        }
        self.mean = mean;
        self.var = var;
        self.seen = seen as usize;
        true
    }
}

/// Additive-outlier (spike) detector: flags *isolated* points far from the
/// rolling median — the complement of the LS detector, which deliberately
/// ignores single spikes. Useful for watchdogs on metrics where any
/// excursion matters (e.g. disk I/O stalls).
#[derive(Debug, Clone)]
pub struct SpikeDetector {
    window: VecDeque<f64>,
    capacity: usize,
    k_sigma: f64,
}

impl SpikeDetector {
    /// New detector over a rolling window of `capacity` points.
    pub fn new(capacity: usize, k_sigma: f64) -> SpikeDetector {
        assert!(capacity >= 4);
        SpikeDetector { window: VecDeque::new(), capacity, k_sigma }
    }
}

impl Default for SpikeDetector {
    fn default() -> Self {
        SpikeDetector::new(30, 8.0)
    }
}

impl OutlierDetector for SpikeDetector {
    fn update(&mut self, ts: SimTime, value: f64) -> Option<Anomaly> {
        let out = if self.window.len() >= self.capacity / 2 {
            let vals: Vec<f64> = self.window.iter().copied().collect();
            let med = median_of(&vals).expect("window non-empty");
            let sigma = mad_sigma_of(&vals)
                .unwrap_or(0.0)
                .max(0.05 * med.abs())
                .max(f64::EPSILON);
            let deviation = (value - med) / sigma;
            (deviation.abs() >= self.k_sigma).then_some(Anomaly {
                ts,
                value,
                baseline: med,
                kind: if deviation > 0.0 {
                    AnomalyKind::LevelShiftUp
                } else {
                    AnomalyKind::LevelShiftDown
                },
            })
        } else {
            None
        };
        // Spikes are NOT folded into the window: the baseline stays clean
        // so consecutive spikes each alarm.
        if out.is_none() {
            self.window.push_back(value);
            if self.window.len() > self.capacity {
                self.window.pop_front();
            }
        }
        out
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        statebuf::put_f64_seq(&mut out, self.window.iter());
        Some(out)
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = statebuf::Reader::new(bytes);
        let Some(window) = r.f64_seq() else { return false };
        if !r.done() {
            return false;
        }
        self.window = window.into();
        true
    }
}

#[cfg(test)]
mod more_detector_tests {
    use super::*;

    #[test]
    fn ewma_adapts_to_sustained_shift() {
        let mut det = EwmaDetector::default();
        let mut alarms = 0;
        for i in 0..100 {
            if det.update(i, 25.0 + (i % 3) as f64).is_some() {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "stationary: quiet");
        let mut first_alarm = None;
        for i in 100..400 {
            if det.update(i, 125.0 + (i % 3) as f64).is_some() && first_alarm.is_none() {
                first_alarm = Some(i);
            }
        }
        assert!(first_alarm.is_some(), "shift detected");
        // After adaptation the new level stops alarming.
        let mut tail_alarms = 0;
        for i in 400..500 {
            if det.update(i, 125.0 + (i % 3) as f64).is_some() {
                tail_alarms += 1;
            }
        }
        assert_eq!(tail_alarms, 0, "adapted to the new level");
    }

    #[test]
    fn spike_detector_fires_per_spike_and_ls_does_not() {
        let mut spike = SpikeDetector::default();
        let mut ls = LevelShiftDetector::default();
        let mut spike_alarms = 0;
        let mut ls_alarms = 0;
        for i in 0..300u64 {
            let v = if i % 50 == 49 { 500.0 } else { 25.0 + (i % 3) as f64 };
            if spike.update(i, v).is_some() {
                spike_alarms += 1;
            }
            if ls.update(i, v).is_some() {
                ls_alarms += 1;
            }
        }
        assert!(spike_alarms >= 4, "each isolated spike alarms: {spike_alarms}");
        assert_eq!(ls_alarms, 0, "LS ignores isolated spikes (paper §7.3)");
    }

    #[test]
    fn spike_detector_keeps_baseline_clean() {
        let mut det = SpikeDetector::default();
        for i in 0..20 {
            det.update(i, 10.0);
        }
        // Two consecutive spikes both alarm because neither pollutes the
        // baseline.
        assert!(det.update(20, 400.0).is_some());
        assert!(det.update(21, 400.0).is_some());
    }

    #[test]
    fn detector_state_round_trips_mid_stream() {
        // Export mid-stream, import into a fresh identically-configured
        // detector, and verify both halves produce identical verdicts on
        // the remaining observations.
        fn check<D: OutlierDetector>(mut det: D, fresh: &mut D) {
            for i in 0..137u64 {
                det.update(i, 25.0 + (i % 7) as f64);
            }
            let state = det.export_state().expect("checkpointable");
            assert!(fresh.import_state(&state), "state imports");
            for i in 137..400u64 {
                let v = if i < 200 { 25.0 + (i % 7) as f64 } else { 180.0 };
                assert_eq!(det.update(i, v), fresh.update(i, v), "diverged at {i}");
            }
        }
        check(LevelShiftDetector::default(), &mut LevelShiftDetector::default());
        check(EwmaDetector::default(), &mut EwmaDetector::default());
        check(SpikeDetector::default(), &mut SpikeDetector::default());
    }

    #[test]
    fn detector_state_import_rejects_garbage() {
        let mut det = LevelShiftDetector::default();
        assert!(!det.import_state(&[1, 2, 3]));
        assert!(!det.import_state(&[0xFF; 64]));
        let mut ew = EwmaDetector::default();
        assert!(!ew.import_state(&[9]));
        let mut sp = SpikeDetector::default();
        assert!(!sp.import_state(&[1, 0, 0]));
        // A valid export with trailing junk is rejected too.
        let mut good = LevelShiftDetector::default();
        for i in 0..50 {
            good.update(i, 10.0);
        }
        let mut bytes = good.export_state().unwrap();
        bytes.push(0);
        assert!(!det.import_state(&bytes));
    }

    #[test]
    fn ewma_reset() {
        let mut det = EwmaDetector::default();
        for i in 0..50 {
            det.update(i, 10.0);
        }
        det.reset();
        assert!(det.update(51, 500.0).is_none(), "fresh detector has no baseline");
    }
}

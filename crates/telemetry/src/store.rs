//! The analyzer-side telemetry store.
//!
//! Collects the monitoring agents' resource samples and dependency-watcher
//! reports into queryable per-`(node, metric)` time series — the
//! "fine-grained metadata about per node resource utilization" GRETEL's
//! root cause analysis walks over (Algorithm 3: `Is_Anomalous` over
//! resource metadata, `Is_S/W_Dependency` over watcher state).

use crate::series::{mad_sigma_of, median_of, TimeSeries};
use gretel_model::{Dependency, NodeId};
use gretel_sim::{Execution, ResourceKind, ResourceSample, SimTime, WatcherSample};
use std::collections::HashMap;

/// Evidence for a resource anomaly on a node.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEvidence {
    /// The anomalous metric.
    pub kind: ResourceKind,
    /// Representative (median) observed value inside the window.
    pub observed: f64,
    /// Baseline (median outside the window, or the absolute guard value).
    pub baseline: f64,
    /// Human-readable explanation.
    pub why: String,
}

/// Queryable telemetry collected from all monitoring agents.
#[derive(Debug, Default)]
pub struct TelemetryStore {
    resources: HashMap<(NodeId, ResourceKind), TimeSeries>,
    watchers: HashMap<(NodeId, Dependency), Vec<(SimTime, bool)>>,
}

impl TelemetryStore {
    /// Build from raw sample streams.
    pub fn from_samples(resources: &[ResourceSample], watchers: &[WatcherSample]) -> Self {
        let mut store = TelemetryStore::default();
        for s in resources {
            store
                .resources
                .entry((s.node, s.kind))
                .or_default()
                .push(s.ts, s.value);
        }
        for w in watchers {
            store
                .watchers
                .entry((w.node, w.dep))
                .or_default()
                .push((w.ts, w.healthy));
        }
        store
    }

    /// Build from a simulation run.
    pub fn from_execution(exec: &Execution) -> Self {
        Self::from_samples(&exec.resources, &exec.watchers)
    }

    /// The series for `(node, kind)`, if any samples exist.
    pub fn resource_series(&self, node: NodeId, kind: ResourceKind) -> Option<&TimeSeries> {
        self.resources.get(&(node, kind))
    }

    /// All nodes with any telemetry.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            self.resources.keys().map(|&(n, _)| n).collect();
        nodes.extend(self.watchers.keys().map(|&(n, _)| n));
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Dependencies on `node` that reported unhealthy at least once inside
    /// `[from, until)`.
    pub fn unhealthy_deps(&self, node: NodeId, from: SimTime, until: SimTime) -> Vec<Dependency> {
        let mut out = Vec::new();
        for (&(n, dep), states) in &self.watchers {
            if n != node {
                continue;
            }
            if states.iter().any(|&(ts, healthy)| ts >= from && ts < until && !healthy) {
                out.push(dep);
            }
        }
        out.sort_by_key(|d| d.name());
        out
    }

    /// Resource anomalies on `node` inside `[from, until)`.
    ///
    /// Two complementary checks, mirroring what an operator's runbook (and
    /// the paper's case studies) treat as "anomalous":
    ///
    /// * **absolute guards** — free disk below 1 GB (§7.2.1), CPU above
    ///   85 % (§7.2.2);
    /// * **relative** — window median deviating from the node's own
    ///   history (before the window) by more than 6 MAD-sigmas.
    pub fn resource_anomalies(
        &self,
        node: NodeId,
        from: SimTime,
        until: SimTime,
    ) -> Vec<ResourceEvidence> {
        let mut out = Vec::new();
        for kind in ResourceKind::ALL {
            let Some(series) = self.resource_series(node, kind) else {
                continue;
            };
            let window: Vec<f64> = series.window(from, until).iter().map(|&(_, v)| v).collect();
            if window.is_empty() {
                continue;
            }
            let observed = median_of(&window).expect("window non-empty");

            // Absolute guards.
            match kind {
                ResourceKind::DiskFreeGb if observed < 1.0 => {
                    out.push(ResourceEvidence {
                        kind,
                        observed,
                        baseline: 1.0,
                        why: format!("free disk {observed:.2} GB below 1 GB floor"),
                    });
                    continue;
                }
                ResourceKind::CpuPercent if observed > 85.0 => {
                    out.push(ResourceEvidence {
                        kind,
                        observed,
                        baseline: 85.0,
                        why: format!("CPU {observed:.1}% above 85% ceiling"),
                    });
                    continue;
                }
                _ => {}
            }

            // Relative to the node's own history before the window.
            let history: Vec<f64> = series.window(0, from).iter().map(|&(_, v)| v).collect();
            if history.len() < 10 {
                continue;
            }
            let base_med = median_of(&history).expect("history non-empty");
            let sigma = mad_sigma_of(&history)
                .unwrap_or(0.0)
                .max(0.05 * base_med.abs())
                .max(f64::EPSILON);
            let z = (observed - base_med) / sigma;
            if z.abs() >= 6.0 {
                out.push(ResourceEvidence {
                    kind,
                    observed,
                    baseline: base_med,
                    why: format!(
                        "{kind} median {observed:.1} deviates {z:.1} sigma from history {base_med:.1}"
                    ),
                });
            }
        }
        out
    }

    /// Telemetry series on `node` that are **stale** over `[from, until)`:
    /// the node reported this metric at some point before `until`, but the
    /// series went silent — either entirely before `from`, or mid-window,
    /// dying at least three typical sampling intervals before the window's
    /// end. A stale series looks exactly like a healthy one to
    /// [`TelemetryStore::resource_anomalies`] (an empty window is skipped,
    /// and a window whose tail is missing carries no anomalous points);
    /// this query makes the distinction explicit so root cause analysis can
    /// downgrade "no resource anomaly found" to "telemetry was missing"
    /// instead of asserting health from absent data.
    pub fn resource_staleness(
        &self,
        node: NodeId,
        from: SimTime,
        until: SimTime,
    ) -> Vec<ResourceKind> {
        let mut out = Vec::new();
        let horizon = self.collection_horizon();
        for kind in ResourceKind::ALL {
            let Some(series) = self.resource_series(node, kind) else {
                continue; // never reported: genuinely no telemetry, not stale
            };
            let ts: Vec<SimTime> = series.window(0, until).iter().map(|&(t, _)| t).collect();
            if series_went_silent(&ts, from, until, horizon) {
                out.push(kind);
            }
        }
        out
    }

    /// Dependency watchers on `node` that are stale over `[from, until)`:
    /// they reported before `until` but went silent (entirely before the
    /// window, or mid-window for at least three typical report intervals),
    /// so [`TelemetryStore::unhealthy_deps`] would read their silence as
    /// health.
    pub fn watcher_staleness(
        &self,
        node: NodeId,
        from: SimTime,
        until: SimTime,
    ) -> Vec<Dependency> {
        let mut out = Vec::new();
        let horizon = self.collection_horizon();
        for (&(n, dep), states) in &self.watchers {
            if n != node {
                continue;
            }
            let ts: Vec<SimTime> =
                states.iter().map(|&(t, _)| t).filter(|&t| t < until).collect();
            if series_went_silent(&ts, from, until, horizon) {
                out.push(dep);
            }
        }
        out.sort_by_key(|d| d.name());
        out
    }

    /// Latest timestamp of any sample in the store — how far telemetry
    /// collection as a whole has progressed. Mid-window staleness is
    /// judged against this: a node is only "dead" if *other* telemetry
    /// kept arriving after it went quiet, not when collection itself
    /// stopped (end of run).
    fn collection_horizon(&self) -> SimTime {
        let res = self.resources.values().filter_map(|s| s.last_ts()).max();
        let wat = self.watchers.values().filter_map(|s| s.last().map(|&(t, _)| t)).max();
        res.max(wat).unwrap_or(0)
    }

    /// Latest watcher verdict for `(node, dep)` at or before `ts`.
    pub fn dependency_state(&self, node: NodeId, dep: Dependency, ts: SimTime) -> Option<bool> {
        let states = self.watchers.get(&(node, dep))?;
        states.iter().rev().find(|&&(t, _)| t <= ts).map(|&(_, h)| h)
    }
}

/// Whether a sample stream (timestamps before `until`, ascending) went
/// silent with respect to the window `[from, until)`.
///
/// Two shapes count as silent:
///
/// * the stream reported before `from` but has nothing inside the window
///   at all (classic staleness), or
/// * the stream died **mid-window**: its last report precedes `until` by
///   more than three typical sampling intervals (median inter-sample gap),
///   so the tail of the fault window has no coverage even though the
///   window as a whole is non-empty.
///
/// A stream with a single report (no cadence to estimate) only matches the
/// first shape; an empty stream is absent, not stale. The mid-window shape
/// is additionally bounded by `horizon` (how far collection as a whole has
/// progressed), so a global end of collection never reads as one node
/// dying.
fn series_went_silent(ts: &[SimTime], from: SimTime, until: SimTime, horizon: SimTime) -> bool {
    let Some(&last) = ts.last() else {
        return false; // never reported before `until`
    };
    if last < from {
        return true; // silent across the entire window
    }
    if ts.len() < 2 {
        return false;
    }
    let mut gaps: Vec<SimTime> = ts.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    let typical = gaps[gaps.len() / 2];
    typical > 0 && last.saturating_add(typical.saturating_mul(3)) < until.min(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::Service;
    use gretel_sim::secs;

    fn store_with_cpu(node: NodeId, values: &[(SimTime, f64)]) -> TelemetryStore {
        let samples: Vec<ResourceSample> = values
            .iter()
            .map(|&(ts, value)| ResourceSample { ts, node, kind: ResourceKind::CpuPercent, value })
            .collect();
        TelemetryStore::from_samples(&samples, &[])
    }

    #[test]
    fn cpu_guard_detects_surge() {
        let mut pts: Vec<(SimTime, f64)> = (0..60).map(|i| (secs(i), 10.0)).collect();
        pts.extend((60..80).map(|i| (secs(i), 95.0)));
        let store = store_with_cpu(NodeId(1), &pts);
        let anomalies = store.resource_anomalies(NodeId(1), secs(60), secs(80));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, ResourceKind::CpuPercent);
        // And the quiet window is clean.
        assert!(store.resource_anomalies(NodeId(1), secs(10), secs(50)).is_empty());
    }

    #[test]
    fn disk_floor_detects_exhaustion() {
        let samples: Vec<ResourceSample> = (0..30)
            .map(|i| ResourceSample {
                ts: secs(i),
                node: NodeId(2),
                kind: ResourceKind::DiskFreeGb,
                value: 0.2,
            })
            .collect();
        let store = TelemetryStore::from_samples(&samples, &[]);
        let anomalies = store.resource_anomalies(NodeId(2), 0, secs(30));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, ResourceKind::DiskFreeGb);
    }

    #[test]
    fn relative_shift_detected_against_history() {
        // Memory climbing from ~4000 to ~12000 — no absolute guard, but a
        // huge relative deviation.
        let mut samples: Vec<ResourceSample> = (0..60)
            .map(|i| ResourceSample {
                ts: secs(i),
                node: NodeId(3),
                kind: ResourceKind::MemUsedMb,
                value: 4000.0 + (i % 5) as f64 * 20.0,
            })
            .collect();
        samples.extend((60..70).map(|i| ResourceSample {
            ts: secs(i),
            node: NodeId(3),
            kind: ResourceKind::MemUsedMb,
            value: 12_000.0,
        }));
        let store = TelemetryStore::from_samples(&samples, &[]);
        let anomalies = store.resource_anomalies(NodeId(3), secs(60), secs(70));
        assert!(anomalies.iter().any(|a| a.kind == ResourceKind::MemUsedMb));
    }

    #[test]
    fn unhealthy_deps_respect_window() {
        let watchers = vec![
            WatcherSample {
                ts: secs(5),
                node: NodeId(4),
                dep: Dependency::ServiceProcess(Service::NeutronAgent),
                healthy: true,
            },
            WatcherSample {
                ts: secs(15),
                node: NodeId(4),
                dep: Dependency::ServiceProcess(Service::NeutronAgent),
                healthy: false,
            },
        ];
        let store = TelemetryStore::from_samples(&[], &watchers);
        assert!(store.unhealthy_deps(NodeId(4), 0, secs(10)).is_empty());
        assert_eq!(
            store.unhealthy_deps(NodeId(4), secs(10), secs(20)),
            vec![Dependency::ServiceProcess(Service::NeutronAgent)]
        );
        // Other nodes are unaffected.
        assert!(store.unhealthy_deps(NodeId(5), 0, secs(100)).is_empty());
    }

    #[test]
    fn dependency_state_returns_latest_before_ts() {
        let watchers = vec![
            WatcherSample { ts: secs(1), node: NodeId(0), dep: Dependency::NtpAgent, healthy: true },
            WatcherSample { ts: secs(5), node: NodeId(0), dep: Dependency::NtpAgent, healthy: false },
        ];
        let store = TelemetryStore::from_samples(&[], &watchers);
        assert_eq!(store.dependency_state(NodeId(0), Dependency::NtpAgent, secs(3)), Some(true));
        assert_eq!(store.dependency_state(NodeId(0), Dependency::NtpAgent, secs(7)), Some(false));
        assert_eq!(store.dependency_state(NodeId(0), Dependency::NtpAgent, 0), None);
    }

    #[test]
    fn staleness_flags_series_that_end_before_window() {
        // CPU reported up to t=30s, then the monitoring agent went silent.
        let pts: Vec<(SimTime, f64)> = (0..30).map(|i| (secs(i), 10.0)).collect();
        let store = store_with_cpu(NodeId(7), &pts);
        // Fault window after the silence: no anomaly (empty window skipped)
        // but the series is reported stale rather than healthy.
        assert!(store.resource_anomalies(NodeId(7), secs(60), secs(80)).is_empty());
        assert_eq!(
            store.resource_staleness(NodeId(7), secs(60), secs(80)),
            vec![ResourceKind::CpuPercent]
        );
        // Window with live samples: not stale.
        assert!(store.resource_staleness(NodeId(7), secs(10), secs(20)).is_empty());
        // A node that never reported anything is absent, not stale.
        assert!(store.resource_staleness(NodeId(8), secs(60), secs(80)).is_empty());
    }

    #[test]
    fn staleness_flags_series_that_die_mid_window() {
        // 1 Hz cadence up to t=30s, silence after — and a fault window
        // [20s, 60s) that *straddles* the death. The window is non-empty,
        // so the old whole-window rule would read it as covered; the tail
        // (30s..60s, thirty missed samples) says otherwise. A second node
        // keeps reporting through t=60s: collection as a whole continued,
        // so the silence is this node dying, not the run ending.
        let mut samples: Vec<ResourceSample> = (0..30)
            .map(|i| ResourceSample {
                ts: secs(i),
                node: NodeId(7),
                kind: ResourceKind::CpuPercent,
                value: 10.0,
            })
            .collect();
        samples.extend((0..60).map(|i| ResourceSample {
            ts: secs(i),
            node: NodeId(8),
            kind: ResourceKind::CpuPercent,
            value: 10.0,
        }));
        let store = TelemetryStore::from_samples(&samples, &[]);
        assert_eq!(
            store.resource_staleness(NodeId(7), secs(20), secs(60)),
            vec![ResourceKind::CpuPercent]
        );
        // A window ending within three intervals of the last sample is
        // still considered covered.
        assert!(store.resource_staleness(NodeId(7), secs(20), secs(32)).is_empty());
    }

    #[test]
    fn watcher_staleness_flags_silent_watchers() {
        let watchers = vec![WatcherSample {
            ts: secs(5),
            node: NodeId(9),
            dep: Dependency::ServiceProcess(Service::NeutronAgent),
            healthy: true,
        }];
        let store = TelemetryStore::from_samples(&[], &watchers);
        // Window after the last report: silent, hence stale.
        assert_eq!(
            store.watcher_staleness(NodeId(9), secs(10), secs(20)),
            vec![Dependency::ServiceProcess(Service::NeutronAgent)]
        );
        // Window covering the report: fresh.
        assert!(store.watcher_staleness(NodeId(9), 0, secs(10)).is_empty());
        // Never-reporting node: absent, not stale.
        assert!(store.watcher_staleness(NodeId(10), secs(10), secs(20)).is_empty());
    }

    #[test]
    fn nodes_lists_all_sampled_nodes() {
        let samples = vec![
            ResourceSample { ts: 0, node: NodeId(1), kind: ResourceKind::CpuPercent, value: 1.0 },
            ResourceSample { ts: 0, node: NodeId(3), kind: ResourceKind::CpuPercent, value: 1.0 },
        ];
        let store = TelemetryStore::from_samples(&samples, &[]);
        assert_eq!(store.nodes(), vec![NodeId(1), NodeId(3)]);
    }
}

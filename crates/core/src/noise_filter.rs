//! Trace noise filtering (Algorithm 1's `FILTER_NOISE`).
//!
//! "Routine OpenStack operations typically involve several messages, both
//! REST and RPC, that do not contribute in any meaningful way to segregate
//! user-level operations at run time. These messages include heartbeat and
//! status update RPCs, common REST invocations involving Keystone, and
//! repeat occurrences of idempotent REST actions for a specific URI" (§5).
//!
//! The filter works on API-id sequences: drop APIs the catalog classifies
//! as noise, and collapse repeats of idempotent REST reads to their first
//! occurrence.

use gretel_model::{ApiId, ApiKind, Catalog};
use std::collections::HashSet;

/// Filter one trace. Order of retained invocations is preserved.
pub fn filter_noise(catalog: &Catalog, trace: &[ApiId]) -> Vec<ApiId> {
    let mut seen_idempotent: HashSet<ApiId> = HashSet::new();
    let mut out = Vec::with_capacity(trace.len());
    for &api in trace {
        let def = catalog.get(api);
        if def.noise.is_some() {
            continue;
        }
        let idempotent_read = matches!(
            &def.kind,
            ApiKind::Rest { method, .. } if method.is_idempotent_read()
        );
        if idempotent_read && !seen_idempotent.insert(api) {
            continue; // repeat of an idempotent read — prune
        }
        out.push(api);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{HttpMethod, Service};

    fn setup() -> (std::sync::Arc<Catalog>, ApiId, ApiId, ApiId, ApiId) {
        let cat = Catalog::openstack();
        let get = cat.rest_expect(Service::Nova, HttpMethod::Get, "/v2.1/servers");
        let post = cat.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers");
        let rpc = cat.rpc_expect(Service::NovaCompute, "build_and_run_instance");
        let noise = cat.noise_apis()[0];
        (cat, get, post, rpc, noise)
    }

    #[test]
    fn drops_noise_class_apis() {
        let (cat, get, post, _, noise) = setup();
        assert_eq!(filter_noise(&cat, &[noise, get, noise, post, noise]), vec![get, post]);
    }

    #[test]
    fn collapses_idempotent_repeats() {
        let (cat, get, post, _, _) = setup();
        assert_eq!(filter_noise(&cat, &[get, get, post, get]), vec![get, post]);
    }

    #[test]
    fn keeps_state_change_repeats() {
        // Two POSTs are two distinct actions — never collapsed.
        let (cat, _, post, _, _) = setup();
        assert_eq!(filter_noise(&cat, &[post, post, post]), vec![post, post, post]);
    }

    #[test]
    fn keeps_rpc_repeats() {
        let (cat, _, _, rpc, _) = setup();
        assert_eq!(filter_noise(&cat, &[rpc, rpc]), vec![rpc, rpc]);
    }

    #[test]
    fn is_idempotent_filter_is_idempotent() {
        let (cat, get, post, rpc, noise) = setup();
        let trace = vec![get, noise, get, post, rpc, get, post, noise, rpc];
        let once = filter_noise(&cat, &trace);
        let twice = filter_noise(&cat, &once);
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_trace() {
        let (cat, ..) = setup();
        assert!(filter_noise(&cat, &[]).is_empty());
    }
}

//! Diagnosis reports.
//!
//! The analyzer's output for one fault: what kind of fault, which
//! high-level administrative operations matched (and with what precision
//! θ), and the root causes found. This is the artifact the paper's case
//! studies (§7.2) hand to the operator.

use crate::rca::RootCause;
use gretel_model::{ApiId, OpSpecId, OperationSpec};
use gretel_sim::SimTime;

/// Kind of diagnosed fault.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum FaultKind {
    /// API error response.
    Operational {
        /// HTTP status (REST errors).
        status: Option<u16>,
        /// Whether the error arrived in an RPC message.
        rpc: bool,
    },
    /// Anomalous API latency (level shift).
    Performance {
        /// Observed (shifted) latency, ms.
        observed_ms: f64,
        /// Pre-shift baseline latency, ms.
        baseline_ms: f64,
    },
}

/// How much of the capture around a fault actually reached the analyzer.
///
/// A diagnosis is never silently wrong about its evidence: when the frozen
/// window contains capture-gap markers (frames the receiver inferred lost
/// from per-agent sequence numbers), the diagnosis says so instead of
/// presenting a lossy match as exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub enum CaptureConfidence {
    /// Every frame around the fault was captured; matching ran on complete
    /// evidence.
    #[default]
    Exact,
    /// The snapshot window spans capture gaps; matching may have widened
    /// across the holes (degraded mode).
    Degraded {
        /// Distinct gap markers inside the window.
        gaps: u32,
        /// Total frames inferred lost inside the window.
        lost: u32,
    },
    /// Snapshot analysis exhausted its per-job budget and was cancelled:
    /// the fault is reported (never silently swallowed) but no matching or
    /// root-cause evidence backs it.
    Cancelled,
}

impl CaptureConfidence {
    /// True for [`CaptureConfidence::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, CaptureConfidence::Exact)
    }
}

/// One complete diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Fault classification.
    pub kind: FaultKind,
    /// The offending API.
    pub api: ApiId,
    /// Time of the fault.
    pub ts: SimTime,
    /// Operations matched by the snapshot (the failed high-level task).
    pub matched: Vec<OpSpecId>,
    /// Precision θ of the match.
    pub theta: f64,
    /// Context-buffer size used.
    pub beta_used: usize,
    /// Candidate operations before snapshot matching ("with API error"
    /// baseline).
    pub candidates: usize,
    /// Root causes, most relevant first.
    pub root_causes: Vec<RootCause>,
    /// Capture quality of the snapshot this diagnosis was made from.
    pub confidence: CaptureConfidence,
    /// Cascade attribution (root vs symptom), set by the state-graph
    /// post-pass ([`crate::graph::attribute_cascades`]) when this fault is
    /// part of a detected failure-propagation cascade. `None` — and
    /// skipped entirely in serialized output — for ordinary single-service
    /// faults, so reports without cascade structure are byte-identical to
    /// the flat RCA path.
    pub attribution: Option<crate::graph::Attribution>,
}

// Manual impl (not derived) so a `None` attribution is omitted from the
// output entirely: a run without cascade structure must serialize
// byte-identically to the pre-graph flat path.
impl serde::Serialize for Diagnosis {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("api".to_string(), self.api.to_value()),
            ("ts".to_string(), self.ts.to_value()),
            ("matched".to_string(), self.matched.to_value()),
            ("theta".to_string(), self.theta.to_value()),
            ("beta_used".to_string(), self.beta_used.to_value()),
            ("candidates".to_string(), self.candidates.to_value()),
            ("root_causes".to_string(), self.root_causes.to_value()),
            ("confidence".to_string(), self.confidence.to_value()),
        ];
        if let Some(attr) = &self.attribution {
            fields.push(("attribution".to_string(), attr.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Diagnosis {
    /// Whether the diagnosis narrowed the fault to exactly one operation.
    pub fn is_precise(&self) -> bool {
        self.matched.len() == 1
    }

    /// Render a human-readable report. `specs` resolves operation names;
    /// pass the suite the library was trained on.
    pub fn render(&self, specs: &[OperationSpec]) -> String {
        let mut out = String::new();
        match &self.kind {
            FaultKind::Operational { status, rpc } => {
                out.push_str(&format!(
                    "OPERATIONAL fault at t={:.3}s on {} ({})\n",
                    self.ts as f64 / 1e6,
                    self.api,
                    match (status, rpc) {
                        (Some(s), _) => format!("HTTP {s}"),
                        (None, true) => "RPC exception".to_string(),
                        (None, false) => "error".to_string(),
                    }
                ));
            }
            FaultKind::Performance { observed_ms, baseline_ms } => {
                out.push_str(&format!(
                    "PERFORMANCE fault at t={:.3}s on {}: latency {:.1} ms (baseline {:.1} ms)\n",
                    self.ts as f64 / 1e6,
                    self.api,
                    observed_ms,
                    baseline_ms
                ));
            }
        }
        out.push_str(&format!(
            "  matched {} operation(s), theta={:.4}, context={} msgs:\n",
            self.matched.len(),
            self.theta,
            self.beta_used
        ));
        match self.confidence {
            CaptureConfidence::Exact => {}
            CaptureConfidence::Degraded { gaps, lost } => {
                out.push_str(&format!(
                    "  capture DEGRADED: {lost} frame(s) lost across {gaps} gap(s) in the window\n"
                ));
            }
            CaptureConfidence::Cancelled => {
                out.push_str(
                    "  analysis CANCELLED: per-job budget exhausted; no matching evidence\n",
                );
            }
        }
        for op in &self.matched {
            let name = specs
                .get(op.index())
                .map(|s| s.name.as_str())
                .unwrap_or("<unknown>");
            out.push_str(&format!("    - {name} ({op})\n"));
        }
        if self.root_causes.is_empty() {
            out.push_str("  root cause: none identified\n");
        } else {
            for rc in &self.root_causes {
                out.push_str(&format!("  root cause on {}: {}\n", rc.node, rc.why));
            }
        }
        if let Some(attr) = &self.attribution {
            out.push_str(&attr.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rca::CauseKind;
    use gretel_model::{Category, Dependency, NodeId, Service};

    fn spec(name: &str) -> OperationSpec {
        OperationSpec {
            id: OpSpecId(0),
            name: name.into(),
            category: Category::Compute,
            steps: vec![],
        }
    }

    #[test]
    fn render_operational() {
        let d = Diagnosis {
            kind: FaultKind::Operational { status: Some(413), rpc: false },
            api: ApiId(5),
            ts: 1_500_000,
            matched: vec![OpSpecId(0)],
            theta: 1.0,
            beta_used: 77,
            candidates: 12,
            root_causes: vec![RootCause {
                node: NodeId(2),
                cause: CauseKind::Dependency(Dependency::ServiceProcess(Service::Glance)),
                why: "glance-service reported down".into(),
            }],
            confidence: CaptureConfidence::Exact,
            attribution: None,
        };
        let s = d.render(&[spec("image.upload.canonical")]);
        assert!(s.contains("OPERATIONAL"));
        assert!(s.contains("HTTP 413"));
        assert!(s.contains("image.upload.canonical"));
        assert!(s.contains("glance-service reported down"));
        assert!(!s.contains("DEGRADED"));
        assert!(d.is_precise());
    }

    #[test]
    fn render_mentions_degraded_capture() {
        let d = Diagnosis {
            kind: FaultKind::Operational { status: Some(500), rpc: false },
            api: ApiId(5),
            ts: 0,
            matched: vec![OpSpecId(0)],
            theta: 1.0,
            beta_used: 32,
            candidates: 4,
            root_causes: vec![],
            confidence: CaptureConfidence::Degraded { gaps: 2, lost: 7 },
            attribution: None,
        };
        let s = d.render(&[spec("op")]);
        assert!(s.contains("capture DEGRADED"));
        assert!(s.contains("7 frame(s) lost across 2 gap(s)"));
        assert!(!d.confidence.is_exact());
    }

    #[test]
    fn render_mentions_cancelled_analysis() {
        let d = Diagnosis {
            kind: FaultKind::Operational { status: Some(503), rpc: false },
            api: ApiId(2),
            ts: 0,
            matched: vec![],
            theta: 0.0,
            beta_used: 0,
            candidates: 0,
            root_causes: vec![],
            confidence: CaptureConfidence::Cancelled,
            attribution: None,
        };
        let s = d.render(&[]);
        assert!(s.contains("analysis CANCELLED"));
        assert!(!d.confidence.is_exact());
    }

    #[test]
    fn render_performance_without_cause() {
        let d = Diagnosis {
            kind: FaultKind::Performance { observed_ms: 130.0, baseline_ms: 28.0 },
            api: ApiId(9),
            ts: 0,
            matched: vec![],
            theta: 0.5,
            beta_used: 768,
            candidates: 3,
            root_causes: vec![],
            confidence: CaptureConfidence::Exact,
            attribution: None,
        };
        let s = d.render(&[]);
        assert!(s.contains("PERFORMANCE"));
        assert!(s.contains("130.0 ms"));
        assert!(s.contains("none identified"));
        assert!(!d.is_precise());
    }
}

//! Tenant-sharded pipeline: N independent partitions, one merged report.
//!
//! The single-pipeline entry points ([`run_service_cfg`](crate::run_service_cfg),
//! [`run_service_durable`]) run one ingest→resequence→window→detect
//! pipeline no matter how much traffic arrives. This module scales that
//! shape out by *Keystone project* (DESIGN.md §15): traffic is routed with
//! [`gretel_netcap::shard::shard_of`] so each tenant's operations land on
//! exactly one of N partitions, and each partition owns the full pipeline
//! privately — its own capture agents and resequencers, its own
//! [`Analyzer`] with windows and detection state, its own checkpoint
//! journal (durable variant) and its own [`PipelineMetrics`] registry.
//! Shards share nothing and never synchronize while running.
//!
//! After the shards drain, the driver merges:
//!
//! * **diagnoses** — the per-shard streams are unioned and put in
//!   canonical order (timestamp, API, then the exact checkpoint-codec
//!   bytes as the total-order tiebreak), so the merged report is a pure
//!   function of the diagnosis *set*, independent of shard count;
//! * **traffic graphs** — [`ServiceGraph::merge`] folds the per-shard
//!   dependency graphs into the graph an unsharded pass would have mined
//!   (observation is additive per message, and every message belongs to
//!   exactly one shard);
//! * **cascades** — when [`ShardedConfig::cascades`] is set,
//!   [`attribute_cascades`] re-runs over the merged diagnoses and merged
//!   graph, so a cascade whose root is tenant-A traffic on shard 0 and
//!   whose symptoms are tenant-B traffic on shard 3 still names the single
//!   root service — the cross-shard RCA merge;
//! * **metrics** — per-shard registries are folded bucket-wise into one
//!   aggregate view ([`PipelineMetrics::merge_from`]).
//!
//! **Determinism.** Within a shard the pipeline inherits the byte-identity
//! guarantees of [`run_service_cfg`](crate::run_service_cfg). Across shard
//! counts the merged
//! diagnosis stream is byte-identical to the unsharded one whenever each
//! diagnosis is a pure function of its own operation's events — which the
//! deployment guarantees by propagating correlation ids
//! ([`GretelConfig::use_correlation_ids`]) with operations that stop
//! emitting after their fault (prefix-complete histories), and by sizing
//! the window to the traffic rate ([`GretelConfig::auto`]) so an
//! operation's events are never evicted before its fault arrives — an
//! undersized α evicts under full load but not under a shard's 1/N load,
//! skewing the context-buffer accounting between regimes. The soak binary
//! (`gretel-bench --bin soak`) gates on exactly this equality for shard
//! counts 1/2/4/8.

use crate::analyzer::{Analyzer, AnalyzerStats};
use crate::anomaly::scan_message;
use crate::config::GretelConfig;
use crate::event::FaultMark;
use crate::fingerprint::FingerprintLibrary;
use crate::graph::{attribute_cascades, CascadeParams, ServiceGraph};
use crate::recover::{run_service_durable, DurableConfig, DurableOutcome, RecoveryStats};
use crate::report::Diagnosis;
use crate::service::{
    resolve_shard_workers, run_service_checked, ServiceConfig, ServiceError, ServiceStats,
};
use gretel_model::{Catalog, Message, NodeId};
use gretel_netcap::{is_relevant, partition_messages};
use gretel_obs::{MetricsSnapshot, PipelineMetrics};
use gretel_store::Store;
use std::sync::Arc;

/// Configuration for [`run_sharded`] / [`run_sharded_durable`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of independent pipeline partitions (≥ 1).
    pub shards: usize,
    /// Per-shard pipeline template. `workers: None` resolves via
    /// [`resolve_shard_workers`], so the *total* `GRETEL_WORKERS` budget
    /// is divided across shards instead of multiplied by them; `metrics`
    /// must be `None` — per-shard registries are created internally (a
    /// shared registry would break per-shard ownership).
    pub service: ServiceConfig,
    /// Re-run cascade attribution over the merged diagnoses and merged
    /// traffic graph after the shards drain. `None` leaves diagnoses
    /// unattributed — required when comparing encoded bytes against an
    /// unattributed unsharded run.
    pub cascades: Option<CascadeParams>,
    /// Give each shard a live [`PipelineMetrics`] registry and aggregate
    /// them into [`ShardedOutcome::metrics`].
    pub metrics: bool,
}

impl Default for ShardedConfig {
    fn default() -> ShardedConfig {
        ShardedConfig {
            shards: 1,
            service: ServiceConfig::default(),
            cascades: None,
            metrics: false,
        }
    }
}

/// What one pipeline partition did during a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Partition index (0-based).
    pub shard: usize,
    /// Messages routed to this partition.
    pub messages: usize,
    /// Diagnoses this partition released.
    pub diagnoses: usize,
    /// Transport statistics for this partition's agents and channels.
    pub service: ServiceStats,
    /// This partition's analyzer counters.
    pub analyzer: AnalyzerStats,
    /// Supervision counters (durable runs only).
    pub recovery: Option<RecoveryStats>,
    /// This partition's private metrics registry, snapshotted after the
    /// run (when [`ShardedConfig::metrics`] is on).
    pub metrics: Option<MetricsSnapshot>,
}

/// Merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Union of all shards' diagnoses in canonical order, cascade
    /// attributions applied when configured.
    pub diagnoses: Vec<Diagnosis>,
    /// The merged cross-service traffic graph.
    pub graph: ServiceGraph,
    /// Per-shard accounting, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Aggregate of the per-shard metrics registries (when enabled).
    pub metrics: Option<MetricsSnapshot>,
}

/// Serialize diagnoses with the checkpoint codec — the byte encoding the
/// durable store journals, reused here as the *canonical* form for
/// byte-identity comparison across pipeline layouts. Attributions are a
/// presentation-layer post-pass and are not part of the encoding.
pub fn encode_diagnoses(diagnoses: &[Diagnosis]) -> Vec<u8> {
    let mut out = Vec::with_capacity(diagnoses.len() * 64);
    for d in diagnoses {
        crate::checkpoint::put_diagnosis(&mut out, d);
    }
    out
}

/// Put a diagnosis union into canonical order: timestamp, then API, then
/// the full checkpoint-codec bytes as a deterministic total-order
/// tiebreak. The result depends only on the *set* of diagnoses, never on
/// which shard produced which — the property the cross-shard merge and
/// the byte-identity oracles stand on.
pub fn canonical_order(diagnoses: &mut Vec<Diagnosis>) {
    let mut keyed: Vec<(u64, u16, Vec<u8>, Diagnosis)> = std::mem::take(diagnoses)
        .into_iter()
        .map(|d| {
            let mut bytes = Vec::with_capacity(64);
            crate::checkpoint::put_diagnosis(&mut bytes, &d);
            (d.ts, d.api.0, bytes, d)
        })
        .collect();
    keyed.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    *diagnoses = keyed.into_iter().map(|(_, _, _, d)| d).collect();
}

/// Mine the cross-service traffic graph from a message stream exactly as
/// the analyzer does in-line: agent relevance filter, catalog noise
/// classification, byte-scan error verdict — never ground truth. Used by
/// the durable shard path, where the analyzer (and its graph) lives and
/// dies inside [`run_service_durable`].
fn mine_graph(catalog: &Catalog, traffic: &[Message]) -> ServiceGraph {
    let mut g = ServiceGraph::new();
    for msg in traffic.iter().filter(|m| is_relevant(m)) {
        let def = catalog.get(msg.api);
        let fault = scan_message(msg);
        g.observe(msg, def.noise.is_some(), !matches!(fault, FaultMark::None));
    }
    g
}

/// The per-shard service template with the worker budget resolved: when
/// the template leaves `workers` unset, the total `GRETEL_WORKERS` budget
/// is *divided* across shards ([`resolve_shard_workers`]) — N shards must
/// not multiply the thread count N×.
fn resolved_service(cfg: &ShardedConfig) -> ServiceConfig {
    let mut sc = cfg.service.clone();
    if sc.workers.is_none() {
        sc.workers = Some(resolve_shard_workers(
            cfg.shards,
            std::env::var("GRETEL_WORKERS").ok().as_deref(),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ));
    }
    sc
}

fn validate(cfg: &ShardedConfig) {
    assert!(cfg.shards > 0, "need at least one shard");
    assert!(
        cfg.service.metrics.is_none(),
        "ShardedConfig::service.metrics must be None: each shard owns a private registry \
         (set ShardedConfig::metrics = true for per-shard + aggregated registries)"
    );
}

struct ShardRun {
    diagnoses: Vec<Diagnosis>,
    graph: ServiceGraph,
    service: ServiceStats,
    analyzer: AnalyzerStats,
    recovery: Option<RecoveryStats>,
}

/// Assemble the merged outcome from per-shard results.
fn merge(
    cfg: &ShardedConfig,
    catalog: &Catalog,
    parts: &[Vec<Message>],
    runs: Vec<ShardRun>,
    registries: Vec<Option<Arc<PipelineMetrics>>>,
) -> ShardedOutcome {
    let mut graph = ServiceGraph::new();
    let mut diagnoses = Vec::new();
    let mut shards = Vec::with_capacity(runs.len());
    for (i, run) in runs.into_iter().enumerate() {
        graph.merge(&run.graph);
        shards.push(ShardReport {
            shard: i,
            messages: parts[i].len(),
            diagnoses: run.diagnoses.len(),
            service: run.service,
            analyzer: run.analyzer,
            recovery: run.recovery,
            metrics: registries[i].as_ref().map(|m| m.snapshot()),
        });
        diagnoses.extend(run.diagnoses);
    }
    canonical_order(&mut diagnoses);
    if let Some(params) = cfg.cascades {
        attribute_cascades(&mut diagnoses, &graph, catalog, params);
    }
    let metrics = cfg.metrics.then(|| {
        let agg = PipelineMetrics::enabled();
        for r in registries.iter().flatten() {
            agg.merge_from(r);
        }
        agg.snapshot()
    });
    ShardedOutcome { diagnoses, graph, shards, metrics }
}

/// Run the pipeline sharded by tenant: route `traffic` onto
/// [`ShardedConfig::shards`] partitions, run each partition's full
/// agents→receiver→analyzer pipeline on its own threads, then merge
/// diagnoses, graphs and metrics (see the module docs).
///
/// Every shard sees the complete `nodes` list: a node's capture agent
/// exists on every shard but only receives the frames of that shard's
/// tenants (in a real deployment the agent applies the same project hash
/// at capture time, so per-shard agents are filters, not copies).
pub fn run_sharded(
    lib: &FingerprintLibrary,
    gcfg: GretelConfig,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &ShardedConfig,
) -> Result<ShardedOutcome, ServiceError> {
    validate(cfg);
    let parts = partition_messages(traffic, cfg.shards);
    let registries: Vec<Option<Arc<PipelineMetrics>>> = (0..cfg.shards)
        .map(|_| cfg.metrics.then(|| Arc::new(PipelineMetrics::enabled())))
        .collect();

    let base = resolved_service(cfg);
    let mut results: Vec<Option<Result<ShardRun, ServiceError>>> =
        (0..cfg.shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((part, registry), slot) in parts.iter().zip(&registries).zip(&mut results) {
            let mut sc = base.clone();
            sc.metrics = registry.clone();
            scope.spawn(move || {
                let mut analyzer = Analyzer::new(lib, gcfg);
                *slot = Some(run_service_checked(&mut analyzer, nodes, part, &sc).map(
                    |(diagnoses, service, astats)| ShardRun {
                        diagnoses,
                        graph: analyzer.traffic_graph().clone(),
                        service,
                        analyzer: astats,
                        recovery: None,
                    },
                ));
            });
        }
    });
    let runs = results
        .into_iter()
        .map(|r| r.expect("every shard thread reports"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge(cfg, lib.catalog(), &parts, runs, registries))
}

/// [`run_sharded`] with a durable checkpoint journal per shard: partition
/// `i` runs [`run_service_durable`] against `stores[i]`, so each shard
/// owns a private `gretel-store` backend it can crash-recover from
/// independently.
///
/// `dcfg` supplies the recovery shape (checkpoint cadence, budget, chaos,
/// crash points), applied identically to every shard;
/// `dcfg.recovery.service` is ignored in favour of
/// [`ShardedConfig::service`]. Whole-process kill modeling
/// ([`DurableConfig::kill_point`]) is a single-pipeline concern and must
/// be `None` here: drive one shard's store through [`run_service_durable`]
/// directly to model kills.
///
/// # Panics
///
/// Panics if `stores.len() != cfg.shards` or a kill point is configured.
pub fn run_sharded_durable(
    lib: &FingerprintLibrary,
    gcfg: GretelConfig,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &ShardedConfig,
    dcfg: &DurableConfig,
    stores: &mut [&mut (dyn Store + Send)],
) -> Result<ShardedOutcome, ServiceError> {
    validate(cfg);
    assert_eq!(stores.len(), cfg.shards, "one store per shard");
    assert!(
        dcfg.kill_point.is_none(),
        "kill points are per-pipeline: model process kills through run_service_durable"
    );
    let parts = partition_messages(traffic, cfg.shards);
    let registries: Vec<Option<Arc<PipelineMetrics>>> = (0..cfg.shards)
        .map(|_| cfg.metrics.then(|| Arc::new(PipelineMetrics::enabled())))
        .collect();

    let base = resolved_service(cfg);
    let mut results: Vec<Option<Result<ShardRun, ServiceError>>> =
        (0..cfg.shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (((part, registry), store), slot) in
            parts.iter().zip(&registries).zip(stores.iter_mut()).zip(&mut results)
        {
            let mut shard_dcfg = dcfg.clone();
            shard_dcfg.recovery.service = base.clone();
            shard_dcfg.recovery.service.metrics = registry.clone();
            let catalog = lib.catalog();
            scope.spawn(move || {
                let run = run_service_durable(lib, gcfg, nodes, part, &shard_dcfg, *store).map(
                    |outcome| match outcome {
                        DurableOutcome::Completed { diagnoses, service, analyzer, recovery } => {
                            ShardRun {
                                diagnoses,
                                // The durable runner owns its analyzer;
                                // re-mine the graph from this shard's
                                // traffic with the identical observation
                                // rule.
                                graph: mine_graph(catalog, part),
                                service,
                                analyzer,
                                recovery: Some(recovery),
                            }
                        }
                        DurableOutcome::Killed { .. } => {
                            unreachable!("kill points are rejected above")
                        }
                    },
                );
                *slot = Some(run);
            });
        }
    });
    let runs = results
        .into_iter()
        .map(|r| r.expect("every shard thread reports"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge(cfg, lib.catalog(), &parts, runs, registries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze_stream;
    use gretel_model::{Catalog, HttpMethod, OpSpecId, OperationSpec, Service, Workflows};
    use gretel_sim::{
        ApiFault, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
    };
    use gretel_store::MemStore;

    /// A multi-tenant run in the deployment mode under which sharded
    /// output is byte-identical to unsharded: correlation ids propagated
    /// and faulted operations aborting (`abort_op`), so every operation's
    /// correlated event set is prefix-complete regardless of how windows
    /// close around it. 36 instances over 5 Keystone projects, with the
    /// Neutron ports POST inside every VM create failing.
    fn multi_tenant_run() -> (FingerprintLibrary, GretelConfig, Vec<NodeId>, Vec<Message>) {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![
            wf.vm_create_spec(OpSpecId(0)),
            wf.image_upload_spec(OpSpecId(1)),
            wf.cinder_list_spec(OpSpecId(2)),
        ];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 11);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> =
            (0..12).flat_map(|_| specs.iter()).collect();
        let cfg = RunConfig {
            seed: 29,
            correlation_ids: true,
            projects: 5,
            ..RunConfig::default()
        };
        let exec = Runner::new(cat, &dep, &plan, cfg).run(&refs);
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        // α must cover each faulted operation's span (the [`GretelConfig::auto`]
        // rate-based sizing rule): an undersized window evicts early
        // operation events under full load but not under a shard's 1/N
        // load, skewing `beta_used` between the two regimes.
        let alpha = (2 * exec.messages.len()).max(64);
        let gcfg = GretelConfig { alpha, ..GretelConfig::default() };
        (lib, gcfg, nodes, exec.messages)
    }

    #[test]
    fn sharded_output_is_byte_identical_across_shard_counts() {
        let (lib, gcfg, nodes, traffic) = multi_tenant_run();
        let mut inline = Analyzer::new(&lib, gcfg);
        let mut expected = analyze_stream(&mut inline, traffic.iter());
        assert!(!expected.is_empty(), "the scenario must produce diagnoses");
        canonical_order(&mut expected);
        let expected_bytes = encode_diagnoses(&expected);
        let expected_graph = inline.traffic_graph().clone();

        for shards in [1usize, 2, 4, 8] {
            let cfg = ShardedConfig { shards, ..ShardedConfig::default() };
            let out = run_sharded(&lib, gcfg, &nodes, &traffic, &cfg).expect("sharded run");
            assert_eq!(
                encode_diagnoses(&out.diagnoses),
                expected_bytes,
                "{shards} shard(s): merged diagnoses must be byte-identical"
            );
            assert_eq!(out.graph, expected_graph, "{shards} shard(s): merged graph");
            assert_eq!(out.shards.len(), shards);
            let routed: usize = out.shards.iter().map(|s| s.messages).sum();
            assert_eq!(routed, traffic.len(), "every message routed exactly once");
            if shards > 1 {
                assert!(
                    out.shards.iter().filter(|s| s.messages > 0).count() > 1,
                    "multi-tenant traffic must actually spread across shards"
                );
            }
        }
    }

    #[test]
    fn durable_shards_match_the_in_memory_path() {
        let (lib, gcfg, nodes, traffic) = multi_tenant_run();
        let cfg = ShardedConfig { shards: 4, metrics: true, ..ShardedConfig::default() };
        let plain = run_sharded(&lib, gcfg, &nodes, &traffic, &cfg).expect("in-memory");

        let mut stores: Vec<MemStore> = (0..4).map(|_| MemStore::new()).collect();
        let mut store_refs: Vec<&mut (dyn Store + Send)> =
            stores.iter_mut().map(|s| s as &mut (dyn Store + Send)).collect();
        let out = run_sharded_durable(
            &lib,
            gcfg,
            &nodes,
            &traffic,
            &cfg,
            &DurableConfig::default(),
            &mut store_refs,
        )
        .expect("durable");
        assert_eq!(encode_diagnoses(&out.diagnoses), encode_diagnoses(&plain.diagnoses));
        assert_eq!(out.graph, plain.graph, "re-mined graphs equal analyzer graphs");
        for s in &out.shards {
            assert!(s.recovery.is_some(), "durable shards report recovery stats");
        }
        let agg = out.metrics.expect("metrics requested");
        let events: u64 = agg.stages.iter().map(|st| st.events).sum();
        assert!(events > 0, "aggregated registry saw traffic");
    }

    #[test]
    fn cross_shard_cascades_survive_partitioning() {
        // Covered end to end (proptest over shard counts × seeds) in
        // tests/sharded_cascade.rs; here: the merge plumbing applies
        // attributions at all.
        let (lib, gcfg, nodes, traffic) = multi_tenant_run();
        let cfg = ShardedConfig {
            shards: 4,
            cascades: Some(CascadeParams::default()),
            ..ShardedConfig::default()
        };
        let out = run_sharded(&lib, gcfg, &nodes, &traffic, &cfg).expect("sharded run");
        // This scenario is a single-service incident: the conservative
        // pass must leave it unattributed rather than invent a cascade.
        assert!(out.diagnoses.iter().all(|d| d.attribution.is_none()));
    }
}

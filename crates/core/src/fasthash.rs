//! A tiny multiply-rotate hasher for the per-message hash maps.
//!
//! The pairer keys two maps per message with small fixed-size keys
//! (connection tuples, message ids). SipHash's per-call setup dominates at
//! that key size; this hasher folds each word in with a golden-ratio
//! multiply and a rotate instead. Not DoS-resistant — only for maps keyed
//! by simulator-controlled values, never by raw attacker-controlled bytes.

use std::hash::{BuildHasherDefault, Hasher};

/// `2^64 / φ`, the usual Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiply-rotate hasher; see the module docs.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(K).rotate_left(5);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `HashMap` with the [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the [`FastHasher`].
pub type FastSet<T> = std::collections::HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_apart() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for n in 0u64..10_000 {
            let mut h = FastHasher::default();
            h.write_u64(n);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on a dense small range");
    }

    #[test]
    fn write_is_chunked_consistently() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FastHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}

//! Compact per-message events.
//!
//! The analyzer converts each captured [`Message`] into a small [`Event`]
//! at ingest time: the symbol, endpoints, and the *result of the byte-level
//! fault scan* (see [`crate::anomaly`]). Everything downstream — the
//! sliding window, operation detection, RCA — works on events, never on
//! payloads, which is what keeps GRETEL's per-message cost low (§5.3).

use gretel_model::{ApiId, Direction, Message, MessageId, NodeId};
use gretel_sim::SimTime;

/// Fault classification of one message, from the byte scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMark {
    /// No error pattern found.
    None,
    /// REST response with this error status.
    RestError(u16),
    /// RPC message carrying a serialized exception.
    RpcError,
}

impl FaultMark {
    /// Whether any error was found.
    pub fn is_error(self) -> bool {
        !matches!(self, FaultMark::None)
    }

    /// Whether the error arrived in a REST message (what arms snapshots,
    /// §5.3.1 "Improving precision").
    pub fn is_rest_error(self) -> bool {
        matches!(self, FaultMark::RestError(_))
    }
}

/// One ingested message, reduced to what detection needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Original message id.
    pub id: MessageId,
    /// Capture timestamp.
    pub ts: SimTime,
    /// API symbol.
    pub api: ApiId,
    /// Request or response.
    pub direction: Direction,
    /// Whether the API is an RPC.
    pub is_rpc: bool,
    /// Whether the API is state-change priority (POST/PUT/DELETE/PATCH or
    /// RPC).
    pub state_change: bool,
    /// Whether the catalog flags the API as background noise.
    pub noise_api: bool,
    /// Sender node.
    pub src_node: NodeId,
    /// Receiver node.
    pub dst_node: NodeId,
    /// Correlation id propagated by the deployment, when present.
    pub corr: Option<u64>,
    /// Byte-scan fault classification.
    pub fault: FaultMark,
    /// Capture-gap marker: frames the receiver inferred lost immediately
    /// before this event (0 = clean capture). Non-zero values make every
    /// snapshot containing this event a degraded-confidence snapshot.
    pub gap_before: u32,
}

impl Event {
    /// Build an event from a message plus the catalog-derived API traits
    /// and the byte-scan verdict.
    pub fn new(
        msg: &Message,
        is_rpc: bool,
        state_change: bool,
        noise_api: bool,
        fault: FaultMark,
    ) -> Event {
        Event {
            id: msg.id,
            ts: msg.ts_us,
            api: msg.api,
            direction: msg.direction,
            is_rpc,
            state_change,
            noise_api,
            src_node: msg.src_node,
            dst_node: msg.dst_node,
            corr: msg.correlation_id,
            fault,
            gap_before: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_mark_predicates() {
        assert!(!FaultMark::None.is_error());
        assert!(FaultMark::RestError(500).is_error());
        assert!(FaultMark::RestError(500).is_rest_error());
        assert!(FaultMark::RpcError.is_error());
        assert!(!FaultMark::RpcError.is_rest_error());
    }

    #[test]
    fn event_is_small() {
        // The whole point of Event is to be cheap to buffer by the
        // thousand; keep it within a cache line.
        assert!(std::mem::size_of::<Event>() <= 64);
    }
}

//! GRETEL watching itself: pipeline stage latencies fed back into the
//! same level-shift machinery that watches OpenStack.
//!
//! The observability registry ([`gretel_obs::PipelineMetrics`]) records
//! how long each pipeline stage takes. [`SelfWatch`] polls those
//! histograms on an interval, turns each stage's interval-mean latency
//! into a [`LatencyObs`] under a synthetic per-stage [`ApiId`], and feeds
//! it to a [`PerfMonitor`] — so a stall in GRETEL's own detect or
//! checkpoint stage raises a [`PerfFault`] exactly the way a slow Nova
//! API would. The paper's pitch is that level-shift detection is cheap
//! and generic; pointing it at the tool's own pipeline costs one extra
//! observation per stage per poll.

use crate::anomaly::LatencyObs;
use crate::perf::{PerfFault, PerfMonitor};
use gretel_model::ApiId;
use gretel_obs::{PipelineMetrics, Stage};
use gretel_telemetry::LevelShiftConfig;

/// Base of the synthetic [`ApiId`] range self-watch reports under. Real
/// catalog ids index a definition table of a few hundred entries, so the
/// top of the `u16` range cannot collide with them.
pub const SELF_WATCH_API_BASE: u16 = 0xFF00;

/// The synthetic [`ApiId`] a pipeline stage's latency stream reports
/// under: `SELF_WATCH_API_BASE` + the stage's position in [`Stage::ALL`].
pub fn self_watch_api(stage: Stage) -> ApiId {
    let pos = Stage::ALL.iter().position(|s| *s == stage).expect("ALL covers every stage");
    ApiId(SELF_WATCH_API_BASE + pos as u16)
}

/// The stage a synthetic self-watch [`ApiId`] refers to, if it is one.
pub fn self_watch_stage(api: ApiId) -> Option<Stage> {
    let pos = api.0.checked_sub(SELF_WATCH_API_BASE)? as usize;
    Stage::ALL.get(pos).copied()
}

/// Feeds per-stage pipeline latencies into a [`PerfMonitor`], raising
/// [`PerfFault`]s when GRETEL's own pipeline stalls.
///
/// Call [`SelfWatch::poll`] on a fixed cadence (every N merged messages,
/// or on a timer). Each poll computes, per stage, the mean latency of the
/// samples recorded since the previous poll and feeds it as one
/// observation; stages with no new samples are skipped, so idle stages
/// neither train nor trip their detectors.
pub struct SelfWatch {
    monitor: PerfMonitor,
    /// Per stage: `(count, sum_us)` seen at the previous poll.
    seen: [(u64, u64); Stage::COUNT],
    polls: u64,
}

impl SelfWatch {
    /// New self-watcher with the default level-shift detector per stage.
    pub fn new(cfg: LevelShiftConfig) -> SelfWatch {
        SelfWatch {
            monitor: PerfMonitor::new(cfg, false),
            seen: [(0, 0); Stage::COUNT],
            polls: 0,
        }
    }

    /// Number of polls performed so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Observe the interval since the last poll: for every stage with new
    /// latency samples, feed the interval's mean latency to the monitor at
    /// timestamp `ts` (caller-supplied, µs — the same clock the pipeline's
    /// message timestamps use). Returns every [`PerfFault`] this interval
    /// confirmed; its `api` maps back to a stage via [`self_watch_stage`].
    pub fn poll(&mut self, metrics: &PipelineMetrics, ts: u64) -> Vec<PerfFault> {
        self.polls += 1;
        let mut faults = Vec::new();
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            let s = metrics.stage_latency(stage);
            let (seen_count, seen_sum) = self.seen[i];
            let d_count = s.count.saturating_sub(seen_count);
            let d_sum = s.sum_us.saturating_sub(seen_sum);
            self.seen[i] = (s.count, s.sum_us);
            if d_count == 0 {
                continue;
            }
            let obs = LatencyObs { api: self_watch_api(stage), ts, latency_us: d_sum / d_count };
            faults.extend(self.monitor.observe(obs));
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_api_ids_round_trip_and_stay_clear_of_the_catalog() {
        for &stage in &Stage::ALL {
            let api = self_watch_api(stage);
            assert!(api.0 >= SELF_WATCH_API_BASE);
            assert_eq!(self_watch_stage(api), Some(stage));
        }
        assert_eq!(self_watch_stage(ApiId(3)), None);
        let n_catalog = gretel_model::Catalog::openstack().len();
        assert!(n_catalog < SELF_WATCH_API_BASE as usize, "synthetic range is disjoint");
    }

    #[test]
    fn pipeline_stall_raises_a_perf_fault_on_the_right_stage() {
        let metrics = PipelineMetrics::enabled();
        let mut watch = SelfWatch::new(LevelShiftConfig::default());

        // Steady state: detect passes take ~2ms, commits ~50µs.
        let mut ts = 0u64;
        for i in 0..100u64 {
            metrics.observe(Stage::Detect, 2_000 + (i % 3));
            metrics.observe(Stage::Commit, 50);
            ts += 1_000;
            assert!(watch.poll(&metrics, ts).is_empty(), "baseline must not alarm");
        }

        // The detect stage stalls: per-pass latency jumps 10×.
        let mut faults = Vec::new();
        for i in 0..100u64 {
            metrics.observe(Stage::Detect, 20_000 + (i % 3));
            metrics.observe(Stage::Commit, 50);
            ts += 1_000;
            faults.extend(watch.poll(&metrics, ts));
        }
        assert_eq!(faults.len(), 1, "exactly one level shift: {faults:?}");
        assert_eq!(self_watch_stage(faults[0].api), Some(Stage::Detect));
        assert!(faults[0].anomaly.value > faults[0].anomaly.baseline);
        assert_eq!(watch.polls(), 200);
    }

    #[test]
    fn idle_stages_are_skipped_not_trained_on_zeros() {
        let metrics = PipelineMetrics::enabled();
        let mut watch = SelfWatch::new(LevelShiftConfig::default());
        for i in 0..50u64 {
            metrics.observe(Stage::Ingest, 10);
            assert!(watch.poll(&metrics, i * 1_000).is_empty());
        }
        // Only the ingest stage's detector exists; silent stages trained
        // nothing, so a later first sample cannot be judged against a
        // phantom zero baseline.
        assert_eq!(watch.monitor.tracked_apis(), 1);
    }
}

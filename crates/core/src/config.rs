//! GRETEL configuration: the paper's thresholds.
//!
//! §5.3.1 defines the sliding window `α = 2·max{FPmax, Prate·t}` and the
//! context buffer that starts at `β = c1·α` and grows by `δ = c2·α` per
//! side. §7 empirically fixes `c1 = 0.1`, `c2 = 0.04` and `t = 1 s`; with
//! `FPmax = 384` and `Prate ≈ 150 pps` that gives `α = 768`, `β = 80`
//! (rounded), `δ = 30`.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the analyzer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GretelConfig {
    /// Sliding window size α, in messages.
    pub alpha: usize,
    /// Context-buffer start coefficient c1 (β₀ = c1·α).
    pub c1: f64,
    /// Context-buffer growth coefficient c2 (δ = c2·α).
    pub c2: f64,
    /// Prune RPC symbols from fingerprints before matching (§6
    /// optimization; ablated in Fig 7c).
    pub prune_rpcs: bool,
    /// Truncate fingerprints at the offending API for operational faults
    /// (§5.3.1; ablation switch).
    pub truncate: bool,
    /// Relaxed matching: only state-change literals must be present in
    /// order; starred symbols may be missing (§5.3.1; ablation switch —
    /// `false` requires every atom in order).
    pub relaxed: bool,
    /// Bounded literal context: match only the last `k` literals of the
    /// (truncated) fingerprint. Long-running operations span more wall
    /// clock than the sliding window covers, so requiring the *entire*
    /// literal prefix would yield false negatives exactly as the paper's
    /// Limitation (1) describes; bounding the pattern to the most recent
    /// literals keeps recall under heavy concurrency. `None` disables the
    /// bound (strictly-paper behaviour).
    pub max_literals: Option<usize>,
    /// Grow the context buffer to cover the whole snapshot instead of
    /// stopping at the first θ drop (ablation of the §5.3.1 stop rule).
    pub grow_full: bool,
    /// Scored matching: rank candidates by the length of the matched
    /// literal suffix and keep only those within `scored_slack` of the
    /// best. `None` keeps the boolean presence predicate.
    pub scored_slack: Option<usize>,
    /// Minimum pattern length that can *stop* the context-buffer growth in
    /// the earliest-complete policy. Candidates with shorter truncated
    /// patterns (the offending API sits at the very start of their
    /// fingerprint) complete trivially in any buffer and must not end the
    /// search; they are reported only when nothing longer ever completes.
    pub min_pattern: usize,
    /// Growth steps to continue after the first qualifying completion,
    /// letting longer patterns (stronger evidence) overtake coincidental
    /// short completions before the match set is finalized.
    pub grace_steps: usize,
    /// Exploit deployment-propagated correlation ids when messages carry
    /// them (paper §5.3.1: "GRETEL can exploit these correlation
    /// identifiers to increase its precision by reducing the number of
    /// packets against which a fingerprint is matched"). When the fault
    /// message has an id, the context buffer is restricted to messages of
    /// the same operation before matching.
    pub use_correlation_ids: bool,
}

impl Default for GretelConfig {
    fn default() -> Self {
        // The paper's deployment values.
        GretelConfig {
            alpha: 768,
            c1: 0.1,
            c2: 0.04,
            prune_rpcs: true,
            truncate: true,
            relaxed: true,
            max_literals: Some(8),
            grow_full: false,
            scored_slack: Some(2),
            min_pattern: 6,
            grace_steps: 5,
            use_correlation_ids: true,
        }
    }
}

impl GretelConfig {
    /// Compute α from the largest fingerprint and the observed packet rate
    /// (paper: `α = 2·max{FPmax, Prate·t}` with t in seconds).
    pub fn auto(fp_max: usize, p_rate_pps: f64, t_secs: f64) -> GretelConfig {
        let alpha = 2 * (fp_max.max((p_rate_pps * t_secs).ceil() as usize)).max(1);
        GretelConfig { alpha, ..GretelConfig::default() }
    }

    /// Sanity-check the configuration; returns all problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.alpha < 2 {
            problems.push(format!("alpha {} must be >= 2", self.alpha));
        }
        if !(0.0..=1.0).contains(&self.c1) || self.c1 <= 0.0 {
            problems.push(format!("c1 {} must be in (0, 1]", self.c1));
        }
        if !(0.0..=1.0).contains(&self.c2) || self.c2 <= 0.0 {
            problems.push(format!("c2 {} must be in (0, 1]", self.c2));
        }
        if self.beta0() > self.alpha {
            problems.push(format!("beta0 {} exceeds alpha {}", self.beta0(), self.alpha));
        }
        if self.min_pattern == 0 {
            problems.push("min_pattern must be >= 1".to_string());
        }
        if self.max_literals == Some(0) {
            problems.push("max_literals must be None or >= 1".to_string());
        }
        problems
    }

    /// Initial context-buffer size β₀ (≥ 2).
    pub fn beta0(&self) -> usize {
        ((self.c1 * self.alpha as f64).round() as usize).max(2)
    }

    /// Context-buffer growth per side δ (≥ 1).
    pub fn delta(&self) -> usize {
        ((self.c2 * self.alpha as f64).round() as usize).max(1)
    }
}

/// GRETEL's precision for one fault: `θ = (N − n)/(N − 1)` where `N` is
/// the number of fingerprints in the library and `n` the number of
/// operations the detector reported (§5.3.1). `θ = 1` means the fault was
/// narrowed to a single operation; `θ = 0` means nothing was narrowed.
pub fn theta(n_matched: usize, n_total: usize) -> f64 {
    if n_total <= 1 {
        return 1.0;
    }
    ((n_total as f64 - n_matched as f64) / (n_total as f64 - 1.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = GretelConfig::default();
        assert_eq!(c.alpha, 768);
        assert_eq!(c.beta0(), 77); // 0.1 × 768 ≈ 77 (the paper rounds to 80)
        assert_eq!(c.delta(), 31); // 0.04 × 768 ≈ 31 (the paper rounds to 30)
    }

    #[test]
    fn auto_alpha_follows_the_formula() {
        // FPmax dominates a small rate.
        assert_eq!(GretelConfig::auto(384, 150.0, 1.0).alpha, 768);
        // Rate dominates at stress levels.
        assert_eq!(GretelConfig::auto(384, 50_000.0, 1.0).alpha, 100_000);
        // Degenerate inputs stay sane.
        assert!(GretelConfig::auto(0, 0.0, 1.0).alpha >= 2);
    }

    #[test]
    fn theta_bounds() {
        assert!((theta(1, 1200) - 1.0).abs() < 1e-12);
        assert_eq!(theta(0, 1200), 1.0, "no matches clamps to 1");
        assert_eq!(theta(1200, 1200), 0.0);
        assert!(theta(24, 1200) > 0.98);
        assert!(theta(25, 1200) < 0.98 + 1e-9);
        assert_eq!(theta(5, 1), 1.0);
    }

    #[test]
    fn default_and_auto_configs_validate() {
        assert!(GretelConfig::default().validate().is_empty());
        assert!(GretelConfig::auto(384, 150.0, 1.0).validate().is_empty());
    }

    #[test]
    fn validate_catches_nonsense() {
        let bad = GretelConfig {
            alpha: 1,
            c1: 0.0,
            c2: 2.0,
            min_pattern: 0,
            max_literals: Some(0),
            ..GretelConfig::default()
        };
        let problems = bad.validate();
        assert!(problems.len() >= 4, "{problems:?}");
    }

    #[test]
    fn beta_delta_floors() {
        let c = GretelConfig { alpha: 4, c1: 0.1, c2: 0.01, ..GretelConfig::default() };
        assert!(c.beta0() >= 2);
        assert!(c.delta() >= 1);
    }
}

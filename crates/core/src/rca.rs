//! Root cause analysis (Algorithm 3).
//!
//! Given the operations matched for a fault and the endpoints of the
//! error messages, GRETEL correlates the distributed state collected by
//! the monitoring agents: first the **error nodes** (source and
//! destination of the error messages) are checked for anomalous resource
//! metadata and failed software dependencies; only if nothing is found
//! does the search expand to the **remaining nodes** participating in the
//! operation (the root cause "may manifest upstream from the actual node
//! where the fault arose", §5.4 — the NTP case study is exactly this).

use gretel_model::{Dependency, NodeId, OperationSpec};
use gretel_sim::{Deployment, ResourceKind, SimTime};
use gretel_telemetry::{ResourceEvidence, TelemetryStore};

/// One identified root cause.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RootCause {
    /// Node the cause was found on.
    pub node: NodeId,
    /// What was wrong.
    pub cause: CauseKind,
    /// Human-readable evidence.
    pub why: String,
}

/// Category of root cause.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum CauseKind {
    /// Anomalous resource metric.
    Resource(ResourceKind),
    /// Failed software dependency.
    Dependency(Dependency),
    /// No cause found, but the telemetry needed to rule one out was stale:
    /// series on this node stopped reporting before the fault window.
    /// "Nothing anomalous" would be asserted from missing data, so the
    /// verdict is downgraded to "telemetry missing" instead.
    StaleTelemetry {
        /// Resource series that went silent before the window.
        stale_resources: Vec<ResourceKind>,
        /// Dependency watchers that went silent before the window.
        stale_watchers: Vec<Dependency>,
    },
}

/// Root cause analysis engine.
pub struct RcaEngine<'a> {
    deployment: &'a Deployment,
    telemetry: &'a TelemetryStore,
}

impl<'a> RcaEngine<'a> {
    /// New engine over a deployment and its collected telemetry.
    pub fn new(deployment: &'a Deployment, telemetry: &'a TelemetryStore) -> RcaEngine<'a> {
        RcaEngine { deployment, telemetry }
    }

    /// Algorithm 3 (`GET_ROOT_CAUSE`): analyze the fault window.
    ///
    /// * `matched_ops` — the operations the detector matched;
    /// * `error_nodes` — source/destination nodes of the error messages;
    /// * `[from, until)` — the time span of the context buffer.
    pub fn analyze(
        &self,
        matched_ops: &[&OperationSpec],
        error_nodes: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> Vec<RootCause> {
        let mut error_nodes: Vec<NodeId> = error_nodes.to_vec();
        error_nodes.sort();
        error_nodes.dedup();

        let mut causes = self.find_root_cause(&error_nodes, from, until);
        if causes.is_empty() {
            // Expand to the remaining nodes participating in the matched
            // operations.
            let mut remaining = self.operation_nodes(matched_ops);
            remaining.retain(|n| !error_nodes.contains(n));
            causes = self.find_root_cause(&remaining, from, until);
            if causes.is_empty() {
                // Nothing anomalous anywhere — but only trust that verdict
                // where the telemetry actually covered the window. Nodes
                // whose series went silent before the window are reported
                // as stale rather than silently counted healthy.
                let mut all = error_nodes.clone();
                all.extend(remaining);
                causes = self.staleness_report(&all, from, until);
            }
        }
        causes
    }

    /// [`CauseKind::StaleTelemetry`] entries for every listed node whose
    /// telemetry went silent before `[from, until)`. Empty when coverage
    /// was complete — i.e. when "no anomaly" is actually supported by data.
    pub fn staleness_report(
        &self,
        nodes: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> Vec<RootCause> {
        let mut out = Vec::new();
        for &node in nodes {
            let stale_resources = self.telemetry.resource_staleness(node, from, until);
            let stale_watchers = self.telemetry.watcher_staleness(node, from, until);
            if stale_resources.is_empty() && stale_watchers.is_empty() {
                continue;
            }
            let why = format!(
                "telemetry on {node} stale over the fault window: {} resource series, {} watcher(s) silent — cannot rule out a root cause here",
                stale_resources.len(),
                stale_watchers.len()
            );
            out.push(RootCause {
                node,
                cause: CauseKind::StaleTelemetry { stale_resources, stale_watchers },
                why,
            });
        }
        out
    }

    /// Algorithm 3 (`FIND_ROOT_CAUSE`): anomalies in resource metadata,
    /// then failed software dependencies, on the listed nodes.
    pub fn find_root_cause(
        &self,
        nodes: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> Vec<RootCause> {
        let mut out = Vec::new();
        for &node in nodes {
            for ResourceEvidence { kind, why, .. } in
                self.telemetry.resource_anomalies(node, from, until)
            {
                out.push(RootCause { node, cause: CauseKind::Resource(kind), why });
            }
            for dep in self.telemetry.unhealthy_deps(node, from, until) {
                out.push(RootCause {
                    node,
                    cause: CauseKind::Dependency(dep),
                    why: format!("{dep} reported down by the watcher on {node}"),
                });
            }
        }
        out
    }

    /// Nodes hosting any service that participates in the operations.
    pub fn operation_nodes(&self, ops: &[&OperationSpec]) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        for op in ops {
            for service in op.services() {
                for &n in self.deployment.nodes_of(service) {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
        }
        nodes.sort();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{Catalog, OpSpecId, Service, Workflows};
    use gretel_sim::{secs, ResourceSample, WatcherSample};

    fn telemetry_with(
        resources: Vec<ResourceSample>,
        watchers: Vec<WatcherSample>,
    ) -> TelemetryStore {
        TelemetryStore::from_samples(&resources, &watchers)
    }

    fn baseline_cpu(node: NodeId, until_s: u64) -> Vec<ResourceSample> {
        (0..until_s)
            .map(|i| ResourceSample {
                ts: secs(i),
                node,
                kind: ResourceKind::CpuPercent,
                value: 10.0,
            })
            .collect()
    }

    #[test]
    fn error_nodes_are_checked_first() {
        let dep = Deployment::standard();
        // Disk exhausted on node 2 (image), CPU fine everywhere.
        let mut res = baseline_cpu(NodeId(2), 60);
        res.extend((0..60).map(|i| ResourceSample {
            ts: secs(i),
            node: NodeId(2),
            kind: ResourceKind::DiskFreeGb,
            value: 0.3,
        }));
        let t = telemetry_with(res, vec![]);
        let engine = RcaEngine::new(&dep, &t);
        let causes = engine.analyze(&[], &[NodeId(2), NodeId(0)], secs(10), secs(50));
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].node, NodeId(2));
        assert_eq!(causes[0].cause, CauseKind::Resource(ResourceKind::DiskFreeGb));
    }

    #[test]
    fn expands_to_operation_nodes_when_error_nodes_are_clean() {
        // NTP scenario: error between Keystone (node 0) and nothing found
        // there; the stopped NTP agent is on the Cinder node (3), which
        // participates in the operation.
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let spec = wf.cinder_list_spec(OpSpecId(0));

        let watchers: Vec<WatcherSample> = (0..60)
            .map(|i| WatcherSample {
                ts: secs(i),
                node: NodeId(3),
                dep: Dependency::NtpAgent,
                healthy: false,
            })
            .collect();
        let t = telemetry_with(vec![], watchers);
        let engine = RcaEngine::new(&dep, &t);

        // Error nodes: keystone/controller only — clean.
        let causes = engine.analyze(&[&spec], &[NodeId(0)], secs(10), secs(50));
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].node, NodeId(3));
        assert_eq!(causes[0].cause, CauseKind::Dependency(Dependency::NtpAgent));
    }

    #[test]
    fn no_anomalies_yields_empty() {
        let dep = Deployment::standard();
        let t = telemetry_with(baseline_cpu(NodeId(1), 60), vec![]);
        let engine = RcaEngine::new(&dep, &t);
        assert!(engine.analyze(&[], &[NodeId(1)], secs(10), secs(50)).is_empty());
    }

    #[test]
    fn stale_telemetry_downgrades_no_cause_verdict() {
        let dep = Deployment::standard();
        // Node 1 reported CPU up to t=20s and then went silent; the fault
        // window starts at t=40s. Nothing anomalous is *observable*, but
        // claiming "no root cause" would rest on missing data.
        let t = telemetry_with(baseline_cpu(NodeId(1), 20), vec![]);
        let engine = RcaEngine::new(&dep, &t);
        let causes = engine.analyze(&[], &[NodeId(1)], secs(40), secs(50));
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].node, NodeId(1));
        match &causes[0].cause {
            CauseKind::StaleTelemetry { stale_resources, stale_watchers } => {
                assert_eq!(stale_resources, &vec![ResourceKind::CpuPercent]);
                assert!(stale_watchers.is_empty());
            }
            other => panic!("expected StaleTelemetry, got {other:?}"),
        }
        // With live coverage of the window the verdict stays a clean empty.
        let fresh = telemetry_with(baseline_cpu(NodeId(1), 60), vec![]);
        let engine = RcaEngine::new(&dep, &fresh);
        assert!(engine.analyze(&[], &[NodeId(1)], secs(10), secs(50)).is_empty());
    }

    #[test]
    fn operation_nodes_cover_all_participating_services() {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let spec = wf.vm_create_spec(OpSpecId(0));
        let t = telemetry_with(vec![], vec![]);
        let engine = RcaEngine::new(&dep, &t);
        let nodes = engine.operation_nodes(&[&spec]);
        // VM create touches Horizon/Nova (0), Neutron (1), Glance (2), and
        // all compute nodes.
        assert!(nodes.contains(&NodeId(0)));
        assert!(nodes.contains(&NodeId(1)));
        assert!(nodes.contains(&NodeId(2)));
        assert!(nodes.contains(&NodeId(4)));
        // Cinder does not participate.
        assert!(!nodes.contains(&NodeId(3)));
        // Sanity: nodes_of agrees.
        assert_eq!(dep.nodes_of(Service::Cinder), &[NodeId(3)]);
    }

    #[test]
    fn multiple_causes_are_all_reported() {
        let dep = Deployment::standard();
        // CPU baseline with a surge inside the window (samples stay in
        // timestamp order).
        let res: Vec<ResourceSample> = (0..60)
            .map(|i| ResourceSample {
                ts: secs(i),
                node: NodeId(1),
                kind: ResourceKind::CpuPercent,
                value: if (40..50).contains(&i) { 96.0 } else { 10.0 },
            })
            .collect();
        let watchers: Vec<WatcherSample> = (0..60)
            .map(|i| WatcherSample {
                ts: secs(i),
                node: NodeId(1),
                dep: Dependency::ServiceProcess(Service::Neutron),
                healthy: i < 40,
            })
            .collect();
        let t = telemetry_with(res, watchers);
        let engine = RcaEngine::new(&dep, &t);
        let causes = engine.analyze(&[], &[NodeId(1)], secs(40), secs(50));
        assert_eq!(causes.len(), 2);
        assert!(causes.iter().any(|c| matches!(c.cause, CauseKind::Resource(_))));
        assert!(causes.iter().any(|c| matches!(c.cause, CauseKind::Dependency(_))));
    }
}

//! Fingerprint-to-snapshot match predicates.
//!
//! GRETEL "relaxes the notion of a fingerprint match, such that a regular
//! expression matches the snapshot if the sequence of symbols
//! corresponding to the state change operations … is preserved" (§5.3.1).
//! Concretely (Fig 4): starred symbols (idempotent reads) may be missing
//! from the context buffer, but the state-change literals must appear in
//! the buffer *in fingerprint order* — i.e. the literal sequence must be a
//! subsequence of the buffer's symbol sequence. Strict matching (every
//! atom required, for ablation) uses the full atom sequence instead.

use crate::fingerprint::Fingerprint;
use crate::lcs::is_subsequence;
use gretel_model::{ApiId, Catalog};

/// Relaxed match: the literal (state-change) sequence of `fp` — already
/// truncated by the caller when applicable — must be a subsequence of the
/// buffer's API sequence. `prune_rpcs` applies the §6 optimization.
pub fn matches_relaxed(
    fp: &Fingerprint,
    catalog: &Catalog,
    prune_rpcs: bool,
    max_literals: Option<usize>,
    buffer: &[ApiId],
) -> bool {
    let literals = fp.literals(catalog, prune_rpcs);
    let pattern = match max_literals {
        Some(k) if literals.len() > k => &literals[literals.len() - k..],
        _ => &literals[..],
    };
    is_subsequence(pattern, buffer)
}

/// Strict match (ablation): every atom, starred or not, must appear in
/// order.
pub fn matches_strict(fp: &Fingerprint, buffer: &[ApiId]) -> bool {
    is_subsequence(&fp.api_seq(), buffer)
}

/// Scored relaxed match: the length of the longest *suffix* of the
/// (pruned, bounded) literal pattern that is a subsequence of the buffer.
/// Candidates sharing the fault API but whose recent history is absent
/// from the buffer score low; the detector keeps only the top scorers.
/// Returns `(score, pattern_len)`.
pub fn suffix_match_score(
    fp: &Fingerprint,
    catalog: &Catalog,
    prune_rpcs: bool,
    max_literals: Option<usize>,
    buffer: &[ApiId],
) -> (usize, usize) {
    let literals = fp.literals(catalog, prune_rpcs);
    let pattern: &[ApiId] = match max_literals {
        Some(k) if literals.len() > k => &literals[literals.len() - k..],
        _ => &literals[..],
    };
    // Greedy from the end: match pattern[-1] to the last occurrence in the
    // buffer, pattern[-2] before it, and so on.
    let mut score = 0usize;
    let mut pos = buffer.len();
    'outer: for &lit in pattern.iter().rev() {
        while pos > 0 {
            pos -= 1;
            if buffer[pos] == lit {
                score += 1;
                continue 'outer;
            }
        }
        break;
    }
    (score, pattern.len())
}

/// Per-API occurrence index over a frozen buffer.
///
/// A frozen snapshot is matched against *many* candidate patterns (one per
/// truncation point per candidate operation) and, in the presence-policy
/// path, over many context-buffer growth steps. Scanning the buffer once
/// per (pattern, step) pair is O(patterns · β · steps); indexing each API's
/// sorted positions once turns every subsequence query into a chain of
/// binary searches — O(|pattern| · log β) per query, buffer bytes touched
/// once.
#[derive(Debug, Clone, Default)]
pub struct PositionIndex {
    positions: crate::fasthash::FastMap<ApiId, Vec<usize>>,
    len: usize,
}

impl PositionIndex {
    /// Index `buffer`; position `i` is `buffer[i]`.
    pub fn new(buffer: &[ApiId]) -> PositionIndex {
        let mut idx = PositionIndex::default();
        idx.extend(buffer);
        idx
    }

    /// Append more symbols (δ context growth): positions continue from the
    /// current length, so `idx.extend(tail)` over a split buffer equals
    /// `PositionIndex::new(whole)`.
    pub fn extend(&mut self, more: &[ApiId]) {
        for &api in more {
            self.positions.entry(api).or_default().push(self.len);
            self.len += 1;
        }
    }

    /// Number of indexed symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `pattern` a subsequence of the indexed buffer restricted to
    /// positions in `lo..hi`? Equivalent to
    /// `is_subsequence(pattern, &buffer[lo..hi])`, via greedy successor
    /// queries instead of a scan.
    pub fn contains_subsequence(&self, pattern: &[ApiId], lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len);
        let mut cursor = lo;
        for &api in pattern {
            let Some(occ) = self.positions.get(&api) else {
                return false;
            };
            let i = occ.partition_point(|&p| p < cursor);
            match occ.get(i) {
                Some(&p) if p < hi => cursor = p + 1,
                _ => return false,
            }
        }
        true
    }

    /// Minimal anchored half-width: the smallest `h` such that `pattern`
    /// is a subsequence of positions `(center − h)..bound`, computed by
    /// greedy backward matching (the last literal as late as possible
    /// before `bound`, the one before it earlier still, …). `None` when
    /// the pattern never completes before `bound`. An empty pattern is
    /// trivially present: `Some(0)`.
    pub fn min_anchored_half(
        &self,
        pattern: &[ApiId],
        center: usize,
        bound: usize,
    ) -> Option<usize> {
        if pattern.is_empty() {
            return Some(0);
        }
        let mut bound = bound.min(self.len);
        for &lit in pattern.iter().rev() {
            let occ = self.positions.get(&lit)?;
            let i = occ.partition_point(|&p| p < bound);
            if i == 0 {
                return None;
            }
            bound = occ[i - 1];
        }
        Some(center - bound)
    }

    /// Degraded-mode variant of [`PositionIndex::min_anchored_half`]: up to
    /// `max_misses` pattern literals may be absent from the buffer — each
    /// skipped literal models a symbol swallowed by a capture gap. Greedy
    /// from the end, like the exact matcher: a literal with no occurrence
    /// before the current cursor consumes one miss and the cursor stays
    /// put. Returns `(half_width, misses_used)`; `None` when the budget is
    /// exceeded or no literal matched at all (a match built purely of
    /// misses carries no evidence). With `max_misses == 0` this is exactly
    /// `min_anchored_half`.
    pub fn min_anchored_half_with_misses(
        &self,
        pattern: &[ApiId],
        center: usize,
        bound: usize,
        max_misses: usize,
    ) -> Option<(usize, usize)> {
        if pattern.is_empty() {
            return Some((0, 0));
        }
        let mut bound = bound.min(self.len);
        let mut misses = 0usize;
        let mut matched = 0usize;
        for &lit in pattern.iter().rev() {
            let hit = self.positions.get(&lit).and_then(|occ| {
                let i = occ.partition_point(|&p| p < bound);
                (i > 0).then(|| occ[i - 1])
            });
            match hit {
                Some(p) => {
                    bound = p;
                    matched += 1;
                }
                None => {
                    misses += 1;
                    if misses > max_misses {
                        return None;
                    }
                }
            }
        }
        if matched == 0 {
            return None;
        }
        Some((center - bound, misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Atom;
    use gretel_model::{HttpMethod, OpSpecId, Service};
    use std::sync::Arc;

    struct Fixture {
        catalog: Arc<Catalog>,
        get_nets: ApiId,     // starred (GET)
        get_sg: ApiId,       // starred (GET)
        post_servers: ApiId, // literal E in the paper's Fig 4
        post_ports: ApiId,   // literal F
        rpc_boot: ApiId,     // RPC literal
    }

    fn fx() -> Fixture {
        let catalog = Catalog::openstack();
        Fixture {
            get_nets: catalog.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/networks.json"),
            get_sg: catalog
                .rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/security-groups.json"),
            post_servers: catalog.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers"),
            post_ports: catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json"),
            rpc_boot: catalog.rpc_expect(Service::NovaCompute, "build_and_run_instance"),
            catalog,
        }
    }

    fn fp(fx: &Fixture) -> Fingerprint {
        // E G* B S* F  (E = POST servers, B = RPC boot, F = POST ports)
        Fingerprint {
            op: OpSpecId(0),
            atoms: vec![
                Atom { api: fx.post_servers, starred: false },
                Atom { api: fx.get_nets, starred: true },
                Atom { api: fx.rpc_boot, starred: false },
                Atom { api: fx.get_sg, starred: true },
                Atom { api: fx.post_ports, starred: false },
            ],
        }
    }

    #[test]
    fn paper_fig4_missing_starred_symbol_still_matches() {
        let f = fx();
        let fp = fp(&f);
        // Buffer holds E and F (order preserved) but no GETs: matches with
        // RPC pruning (B removed from the pattern).
        let buffer = vec![f.post_servers, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
        // Without pruning, the RPC literal B is required too.
        assert!(!matches_relaxed(&fp, &f.catalog, false, None, &buffer));
        let with_rpc = vec![f.post_servers, f.rpc_boot, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, false, None, &with_rpc));
    }

    #[test]
    fn literal_order_violation_fails() {
        let f = fx();
        let fp = fp(&f);
        let buffer = vec![f.post_ports, f.post_servers]; // F before E
        assert!(!matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn interleaved_foreign_symbols_are_ignored() {
        let f = fx();
        let fp = fp(&f);
        let noise = f.catalog.rest_expect(Service::Glance, HttpMethod::Get, "/v2/images");
        let buffer = vec![noise, f.post_servers, noise, noise, f.post_ports, noise];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn duplicate_literals_in_buffer_are_tolerated() {
        // Interleaved instances of the same operation repeat symbols —
        // subsequence matching skips the extras.
        let f = fx();
        let fp = fp(&f);
        let buffer =
            vec![f.post_servers, f.post_servers, f.post_ports, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn strict_requires_starred_atoms_too() {
        let f = fx();
        let fp = fp(&f);
        let without_gets = vec![f.post_servers, f.rpc_boot, f.post_ports];
        assert!(!matches_strict(&fp, &without_gets));
        let all = vec![f.post_servers, f.get_nets, f.rpc_boot, f.get_sg, f.post_ports];
        assert!(matches_strict(&fp, &all));
    }

    #[test]
    fn bounded_literal_context_matches_on_suffix() {
        let f = fx();
        let fp = fp(&f);
        // Only the most recent literal (F) is in the buffer; with a bound
        // of 1 the pattern reduces to [F] and matches; unbounded it needs
        // E too.
        let buffer = vec![f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, Some(1), &buffer));
        assert!(!matches_relaxed(&fp, &f.catalog, true, None, &buffer));
        // A bound larger than the pattern is a no-op.
        assert!(!matches_relaxed(&fp, &f.catalog, true, Some(99), &buffer));
    }

    #[test]
    fn empty_pattern_matches_anything() {
        let f = fx();
        let empty = Fingerprint { op: OpSpecId(1), atoms: vec![] };
        assert!(matches_relaxed(&empty, &f.catalog, true, None, &[]));
        assert!(matches_strict(&empty, &[f.post_servers]));
        let (score, plen) = suffix_match_score(&empty, &f.catalog, true, None, &[]);
        assert_eq!((score, plen), (0, 0));
    }

    #[test]
    fn max_literals_zero_reduces_every_pattern_to_empty() {
        // `max_literals: Some(0)` truncates the literal pattern to its last
        // zero symbols — the empty pattern, which matches any buffer. A
        // degenerate but well-defined configuration (it turns relaxed
        // matching into "is a candidate").
        let f = fx();
        let fp = fp(&f);
        assert!(matches_relaxed(&fp, &f.catalog, true, Some(0), &[]));
        assert!(matches_relaxed(&fp, &f.catalog, false, Some(0), &[f.get_nets]));
        let (score, plen) = suffix_match_score(&fp, &f.catalog, true, Some(0), &[f.post_ports]);
        assert_eq!((score, plen), (0, 0));
    }

    fn pool(f: &Fixture) -> [ApiId; 5] {
        [f.get_nets, f.get_sg, f.post_servers, f.post_ports, f.rpc_boot]
    }

    #[test]
    fn position_index_agrees_with_linear_subsequence_scan() {
        use rand::prelude::*;
        let f = fx();
        let pool = pool(&f);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let buffer: Vec<ApiId> =
                (0..rng.gen_range(0usize..40)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let idx = PositionIndex::new(&buffer);
            assert_eq!(idx.len(), buffer.len());
            for _ in 0..20 {
                let pattern: Vec<ApiId> =
                    (0..rng.gen_range(0usize..6)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
                let lo = rng.gen_range(0..=buffer.len());
                let hi = rng.gen_range(lo..=buffer.len());
                assert_eq!(
                    idx.contains_subsequence(&pattern, lo, hi),
                    is_subsequence(&pattern, &buffer[lo..hi]),
                    "pattern {pattern:?} window {lo}..{hi} of {buffer:?}"
                );
            }
        }
    }

    #[test]
    fn position_index_extend_equals_bulk_build() {
        use rand::prelude::*;
        let f = fx();
        let pool = pool(&f);
        let mut rng = StdRng::seed_from_u64(7);
        let buffer: Vec<ApiId> = (0..64).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let bulk = PositionIndex::new(&buffer);
        // Build the same index in three increments (δ context growth).
        let mut grown = PositionIndex::new(&buffer[..20]);
        grown.extend(&buffer[20..50]);
        grown.extend(&buffer[50..]);
        assert_eq!(grown.len(), bulk.len());
        for _ in 0..200 {
            let pattern: Vec<ApiId> =
                (0..rng.gen_range(0usize..5)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let lo = rng.gen_range(0..=buffer.len());
            let hi = rng.gen_range(lo..=buffer.len());
            assert_eq!(
                grown.contains_subsequence(&pattern, lo, hi),
                bulk.contains_subsequence(&pattern, lo, hi)
            );
        }
    }

    #[test]
    fn min_anchored_half_is_the_smallest_complete_window() {
        use rand::prelude::*;
        let f = fx();
        let pool = pool(&f);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let buffer: Vec<ApiId> =
                (0..rng.gen_range(1usize..48)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let idx = PositionIndex::new(&buffer);
            let center = rng.gen_range(0..buffer.len());
            let bound = center + 1; // anchored at the fault
            let pattern: Vec<ApiId> =
                (0..rng.gen_range(1usize..5)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            // Reference: the smallest h with the pattern embedded in
            // buffer[center-h..bound].
            let naive = (0..=center)
                .find(|&h| is_subsequence(&pattern, &buffer[center - h..bound]));
            assert_eq!(
                idx.min_anchored_half(&pattern, center, bound),
                naive,
                "pattern {pattern:?} center {center} of {buffer:?}"
            );
        }
        let idx = PositionIndex::new(&[f.post_servers]);
        assert_eq!(idx.min_anchored_half(&[], 0, 1), Some(0));
        assert_eq!(idx.min_anchored_half(&[f.post_ports], 0, 1), None);
    }

    #[test]
    fn zero_miss_budget_equals_exact_matching() {
        use rand::prelude::*;
        let f = fx();
        let pool = pool(&f);
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..80 {
            let buffer: Vec<ApiId> =
                (0..rng.gen_range(1usize..48)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let idx = PositionIndex::new(&buffer);
            let center = rng.gen_range(0..buffer.len());
            let bound = center + 1;
            let pattern: Vec<ApiId> =
                (0..rng.gen_range(1usize..5)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let exact = idx.min_anchored_half(&pattern, center, bound);
            let degraded = idx.min_anchored_half_with_misses(&pattern, center, bound, 0);
            assert_eq!(degraded, exact.map(|h| (h, 0)), "pattern {pattern:?} of {buffer:?}");
        }
    }

    #[test]
    fn miss_budget_bridges_a_hole_in_the_buffer() {
        let f = fx();
        // Pattern E B F, but B (the RPC literal) never made it into the
        // capture: exact matching fails, one miss bridges it.
        let buffer = vec![f.post_servers, f.get_nets, f.post_ports];
        let idx = PositionIndex::new(&buffer);
        let pattern = [f.post_servers, f.rpc_boot, f.post_ports];
        assert_eq!(idx.min_anchored_half(&pattern, 2, 3), None);
        assert_eq!(idx.min_anchored_half_with_misses(&pattern, 2, 3, 0), None);
        assert_eq!(idx.min_anchored_half_with_misses(&pattern, 2, 3, 1), Some((2, 1)));
        // A bigger budget does not inflate the reported misses.
        assert_eq!(idx.min_anchored_half_with_misses(&pattern, 2, 3, 5), Some((2, 1)));
    }

    #[test]
    fn all_misses_is_not_a_match() {
        let f = fx();
        let idx = PositionIndex::new(&[f.get_nets, f.get_sg]);
        let pattern = [f.post_servers, f.post_ports];
        assert_eq!(idx.min_anchored_half_with_misses(&pattern, 1, 2, 2), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fingerprint::{Atom, Fingerprint};
    use gretel_model::{Catalog, HttpMethod, OpSpecId, Service};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The greedy backward score equals the length of the longest
        // pattern *suffix* that embeds in the buffer (greedy backward
        // matching is optimal for suffix embedding).
        #[test]
        fn suffix_score_equals_longest_embedding_suffix(
            atom_picks in proptest::collection::vec(0usize..5, 0..10),
            stars in proptest::collection::vec(any::<bool>(), 10),
            buf_picks in proptest::collection::vec(0usize..5, 0..24),
            prune in any::<bool>(),
            bound_raw in 0usize..10,
        ) {
            let catalog = Catalog::openstack();
            let pool = [
                catalog.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/networks.json"),
                catalog.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/security-groups.json"),
                catalog.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers"),
                catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json"),
                catalog.rpc_expect(Service::NovaCompute, "build_and_run_instance"),
            ];
            let fp = Fingerprint {
                op: OpSpecId(0),
                atoms: atom_picks
                    .iter()
                    .zip(&stars)
                    .map(|(&i, &starred)| Atom { api: pool[i], starred })
                    .collect(),
            };
            let buffer: Vec<_> = buf_picks.iter().map(|&i| pool[i]).collect();
            let max_literals = (bound_raw < 9).then_some(bound_raw);

            let (score, plen) =
                suffix_match_score(&fp, &catalog, prune, max_literals, &buffer);

            let literals = fp.literals(&catalog, prune);
            let pattern: &[_] = match max_literals {
                Some(k) if literals.len() > k => &literals[literals.len() - k..],
                _ => &literals[..],
            };
            prop_assert_eq!(plen, pattern.len());
            let naive = (0..=pattern.len())
                .rev()
                .find(|&s| is_subsequence(&pattern[pattern.len() - s..], &buffer))
                .unwrap_or(0);
            prop_assert_eq!(score, naive);
        }
    }
}

//! Fingerprint-to-snapshot match predicates.
//!
//! GRETEL "relaxes the notion of a fingerprint match, such that a regular
//! expression matches the snapshot if the sequence of symbols
//! corresponding to the state change operations … is preserved" (§5.3.1).
//! Concretely (Fig 4): starred symbols (idempotent reads) may be missing
//! from the context buffer, but the state-change literals must appear in
//! the buffer *in fingerprint order* — i.e. the literal sequence must be a
//! subsequence of the buffer's symbol sequence. Strict matching (every
//! atom required, for ablation) uses the full atom sequence instead.

use crate::fingerprint::Fingerprint;
use crate::lcs::is_subsequence;
use gretel_model::{ApiId, Catalog};

/// Relaxed match: the literal (state-change) sequence of `fp` — already
/// truncated by the caller when applicable — must be a subsequence of the
/// buffer's API sequence. `prune_rpcs` applies the §6 optimization.
pub fn matches_relaxed(
    fp: &Fingerprint,
    catalog: &Catalog,
    prune_rpcs: bool,
    max_literals: Option<usize>,
    buffer: &[ApiId],
) -> bool {
    let literals = fp.literals(catalog, prune_rpcs);
    let pattern = match max_literals {
        Some(k) if literals.len() > k => &literals[literals.len() - k..],
        _ => &literals[..],
    };
    is_subsequence(pattern, buffer)
}

/// Strict match (ablation): every atom, starred or not, must appear in
/// order.
pub fn matches_strict(fp: &Fingerprint, buffer: &[ApiId]) -> bool {
    is_subsequence(&fp.api_seq(), buffer)
}

/// Scored relaxed match: the length of the longest *suffix* of the
/// (pruned, bounded) literal pattern that is a subsequence of the buffer.
/// Candidates sharing the fault API but whose recent history is absent
/// from the buffer score low; the detector keeps only the top scorers.
/// Returns `(score, pattern_len)`.
pub fn suffix_match_score(
    fp: &Fingerprint,
    catalog: &Catalog,
    prune_rpcs: bool,
    max_literals: Option<usize>,
    buffer: &[ApiId],
) -> (usize, usize) {
    let literals = fp.literals(catalog, prune_rpcs);
    let pattern: &[ApiId] = match max_literals {
        Some(k) if literals.len() > k => &literals[literals.len() - k..],
        _ => &literals[..],
    };
    // Greedy from the end: match pattern[-1] to the last occurrence in the
    // buffer, pattern[-2] before it, and so on.
    let mut score = 0usize;
    let mut pos = buffer.len();
    'outer: for &lit in pattern.iter().rev() {
        while pos > 0 {
            pos -= 1;
            if buffer[pos] == lit {
                score += 1;
                continue 'outer;
            }
        }
        break;
    }
    (score, pattern.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Atom;
    use gretel_model::{HttpMethod, OpSpecId, Service};
    use std::sync::Arc;

    struct Fixture {
        catalog: Arc<Catalog>,
        get_nets: ApiId,     // starred (GET)
        get_sg: ApiId,       // starred (GET)
        post_servers: ApiId, // literal E in the paper's Fig 4
        post_ports: ApiId,   // literal F
        rpc_boot: ApiId,     // RPC literal
    }

    fn fx() -> Fixture {
        let catalog = Catalog::openstack();
        Fixture {
            get_nets: catalog.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/networks.json"),
            get_sg: catalog
                .rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/security-groups.json"),
            post_servers: catalog.rest_expect(Service::Nova, HttpMethod::Post, "/v2.1/servers"),
            post_ports: catalog.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json"),
            rpc_boot: catalog.rpc_expect(Service::NovaCompute, "build_and_run_instance"),
            catalog,
        }
    }

    fn fp(fx: &Fixture) -> Fingerprint {
        // E G* B S* F  (E = POST servers, B = RPC boot, F = POST ports)
        Fingerprint {
            op: OpSpecId(0),
            atoms: vec![
                Atom { api: fx.post_servers, starred: false },
                Atom { api: fx.get_nets, starred: true },
                Atom { api: fx.rpc_boot, starred: false },
                Atom { api: fx.get_sg, starred: true },
                Atom { api: fx.post_ports, starred: false },
            ],
        }
    }

    #[test]
    fn paper_fig4_missing_starred_symbol_still_matches() {
        let f = fx();
        let fp = fp(&f);
        // Buffer holds E and F (order preserved) but no GETs: matches with
        // RPC pruning (B removed from the pattern).
        let buffer = vec![f.post_servers, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
        // Without pruning, the RPC literal B is required too.
        assert!(!matches_relaxed(&fp, &f.catalog, false, None, &buffer));
        let with_rpc = vec![f.post_servers, f.rpc_boot, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, false, None, &with_rpc));
    }

    #[test]
    fn literal_order_violation_fails() {
        let f = fx();
        let fp = fp(&f);
        let buffer = vec![f.post_ports, f.post_servers]; // F before E
        assert!(!matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn interleaved_foreign_symbols_are_ignored() {
        let f = fx();
        let fp = fp(&f);
        let noise = f.catalog.rest_expect(Service::Glance, HttpMethod::Get, "/v2/images");
        let buffer = vec![noise, f.post_servers, noise, noise, f.post_ports, noise];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn duplicate_literals_in_buffer_are_tolerated() {
        // Interleaved instances of the same operation repeat symbols —
        // subsequence matching skips the extras.
        let f = fx();
        let fp = fp(&f);
        let buffer =
            vec![f.post_servers, f.post_servers, f.post_ports, f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, None, &buffer));
    }

    #[test]
    fn strict_requires_starred_atoms_too() {
        let f = fx();
        let fp = fp(&f);
        let without_gets = vec![f.post_servers, f.rpc_boot, f.post_ports];
        assert!(!matches_strict(&fp, &without_gets));
        let all = vec![f.post_servers, f.get_nets, f.rpc_boot, f.get_sg, f.post_ports];
        assert!(matches_strict(&fp, &all));
    }

    #[test]
    fn bounded_literal_context_matches_on_suffix() {
        let f = fx();
        let fp = fp(&f);
        // Only the most recent literal (F) is in the buffer; with a bound
        // of 1 the pattern reduces to [F] and matches; unbounded it needs
        // E too.
        let buffer = vec![f.post_ports];
        assert!(matches_relaxed(&fp, &f.catalog, true, Some(1), &buffer));
        assert!(!matches_relaxed(&fp, &f.catalog, true, None, &buffer));
        // A bound larger than the pattern is a no-op.
        assert!(!matches_relaxed(&fp, &f.catalog, true, Some(99), &buffer));
    }

    #[test]
    fn empty_pattern_matches_anything() {
        let f = fx();
        let empty = Fingerprint { op: OpSpecId(1), atoms: vec![] };
        assert!(matches_relaxed(&empty, &f.catalog, true, None, &[]));
        assert!(matches_strict(&empty, &[f.post_servers]));
    }
}

//! Longest common subsequence over API-id sequences.
//!
//! Algorithm 1 iteratively intersects the traces of repeated executions of
//! an operation via LCS, leaving only the APIs that occur (in order) in
//! every successful run — the operational fingerprint. Traces are a few
//! hundred symbols, so the classic O(n·m) dynamic program with O(min(n,m))
//! rolling rows is plenty.

use gretel_model::ApiId;

/// Longest common subsequence of `a` and `b` (one canonical witness).
pub fn lcs(a: &[ApiId], b: &[ApiId]) -> Vec<ApiId> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    // Full DP table of lengths (u32 keeps it compact), then backtrack.
    let n = a.len();
    let m = b.len();
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        for j in 1..=m {
            dp[idx(i, j)] = if a[i - 1] == b[j - 1] {
                dp[idx(i - 1, j - 1)] + 1
            } else {
                dp[idx(i - 1, j)].max(dp[idx(i, j - 1)])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[idx(n, m)] as usize);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        if a[i - 1] == b[j - 1] {
            out.push(a[i - 1]);
            i -= 1;
            j -= 1;
        } else if dp[idx(i - 1, j)] >= dp[idx(i, j - 1)] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out.reverse();
    out
}

/// LCS length only (no witness); O(min) memory.
pub fn lcs_len(a: &[ApiId], b: &[ApiId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev = vec![0u32; short.len() + 1];
    let mut cur = vec![0u32; short.len() + 1];
    for &x in long {
        for (j, &y) in short.iter().enumerate() {
            cur[j + 1] = if x == y { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()] as usize
}

/// Whether `needle` is a subsequence of `haystack`.
pub fn is_subsequence(needle: &[ApiId], haystack: &[ApiId]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<ApiId> {
        v.iter().map(|&x| ApiId(x)).collect()
    }

    #[test]
    fn classic_cases() {
        assert_eq!(lcs(&ids(&[1, 2, 3, 4]), &ids(&[2, 4, 6])), ids(&[2, 4]));
        assert_eq!(lcs(&ids(&[1, 2, 3]), &ids(&[1, 2, 3])), ids(&[1, 2, 3]));
        assert_eq!(lcs(&ids(&[1, 2, 3]), &ids(&[4, 5, 6])), ids(&[]));
        assert_eq!(lcs(&ids(&[]), &ids(&[1])), ids(&[]));
    }

    #[test]
    fn handles_repeats() {
        // Both [1,1,2] and [1,2,2] are valid witnesses; require a maximal
        // common subsequence.
        let a = ids(&[1, 1, 2, 2]);
        let b = ids(&[1, 2, 1, 2]);
        let c = lcs(&a, &b);
        assert_eq!(c.len(), 3);
        assert!(is_subsequence(&c, &a));
        assert!(is_subsequence(&c, &b));
    }

    #[test]
    fn result_is_subsequence_of_both() {
        let a = ids(&[7, 3, 9, 1, 3, 5, 9, 2]);
        let b = ids(&[3, 1, 9, 3, 2, 5, 2]);
        let c = lcs(&a, &b);
        assert!(is_subsequence(&c, &a));
        assert!(is_subsequence(&c, &b));
        assert_eq!(c.len(), lcs_len(&a, &b));
    }

    #[test]
    fn length_is_symmetric() {
        let a = ids(&[1, 2, 3, 4, 5, 6, 1, 2]);
        let b = ids(&[2, 4, 1, 6, 2]);
        assert_eq!(lcs_len(&a, &b), lcs_len(&b, &a));
    }

    #[test]
    fn subsequence_checks() {
        assert!(is_subsequence(&ids(&[1, 3]), &ids(&[1, 2, 3])));
        assert!(is_subsequence(&ids(&[]), &ids(&[])));
        assert!(!is_subsequence(&ids(&[3, 1]), &ids(&[1, 2, 3])));
        assert!(!is_subsequence(&ids(&[1]), &ids(&[])));
    }

    #[test]
    fn lcs_of_identical_long_traces_is_identity() {
        let a: Vec<ApiId> = (0..500u16).map(ApiId).collect();
        assert_eq!(lcs(&a, &a), a);
        assert_eq!(lcs_len(&a, &a), 500);
    }
}

//! The dual-buffer sliding window (§5.3.1, §6).
//!
//! GRETEL keeps the last α messages in a ring. When a REST error is
//! detected, the window is "frozen": GRETEL slides ahead by α/2 messages
//! and waits for the event receiver to fill the remaining α/2, so the
//! resulting snapshot holds both the past and the future of the faulty
//! message. The §6 dual-buffer optimization — two pointers separated by α
//! messages with a freeze between them — is exactly what the ring +
//! armed-fault bookkeeping below implements.

use crate::event::Event;
use std::collections::VecDeque;

/// A frozen snapshot around one fault.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The faulty event that armed the snapshot.
    pub fault: Event,
    /// Window contents, oldest first; the fault sits near the middle.
    pub events: Vec<Event>,
    /// Index of the fault within `events`.
    pub fault_index: usize,
}

impl Snapshot {
    /// Number of events in this window carrying a capture-gap marker
    /// (`gap_before > 0`): distinct places where the receiver knows frames
    /// went missing.
    pub fn gap_markers(&self) -> u32 {
        self.events.iter().filter(|e| e.gap_before > 0).count() as u32
    }

    /// Total frames inferred lost inside this window (sum of the events'
    /// `gap_before` markers). Zero means the capture around this fault was
    /// complete and any diagnosis from it is `Exact`.
    pub fn lost_frames(&self) -> u32 {
        self.events.iter().map(|e| e.gap_before).sum()
    }
}

struct Armed {
    fault: Event,
    remaining: usize,
}

/// Ring of the most recent α events plus pending freezes.
///
/// ```
/// use gretel_core::{Event, FaultMark, SlidingWindow};
/// use gretel_model::{ApiId, Direction, MessageId, NodeId};
///
/// let ev = |i: u64| Event {
///     id: MessageId(i), ts: i, api: ApiId(0), direction: Direction::Request,
///     is_rpc: false, state_change: false, noise_api: false,
///     src_node: NodeId(0), dst_node: NodeId(1), corr: None,
///     fault: FaultMark::None,
///     gap_before: 0,
/// };
/// let mut w = SlidingWindow::new(8);
/// for i in 0..8 { assert!(w.push(ev(i)).is_empty()); }
/// let fault = ev(8);
/// w.push(fault);
/// w.arm(fault); // completes after alpha/2 = 4 more events
/// for i in 9..12 { assert!(w.push(ev(i)).is_empty()); }
/// let snaps = w.push(ev(12));
/// assert_eq!(snaps.len(), 1);
/// assert_eq!(snaps[0].fault.id, MessageId(8));
/// ```
pub struct SlidingWindow {
    alpha: usize,
    buf: VecDeque<Event>,
    armed: Vec<Armed>,
}

impl SlidingWindow {
    /// Window of size `alpha` (≥ 2).
    pub fn new(alpha: usize) -> SlidingWindow {
        assert!(alpha >= 2, "window must hold at least two messages");
        SlidingWindow { alpha, buf: VecDeque::with_capacity(alpha + 1), armed: Vec::new() }
    }

    /// Configured α.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Current buffered events (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of snapshots awaiting their future half.
    pub fn pending(&self) -> usize {
        self.armed.len()
    }

    /// Arm a snapshot for `fault` (must be the most recently pushed
    /// event). It completes after α/2 further events arrive.
    pub fn arm(&mut self, fault: Event) {
        self.armed.push(Armed { fault, remaining: self.alpha / 2 });
    }

    /// Resize the window to a new α (the paper recomputes α when the
    /// observed packet rate changes — Prate is "the only dynamic
    /// parameter"). Shrinking evicts the oldest events; pending snapshot
    /// deadlines are left untouched.
    pub fn resize(&mut self, alpha: usize) {
        assert!(alpha >= 2, "window must hold at least two messages");
        self.alpha = alpha;
        while self.buf.len() > self.alpha {
            self.buf.pop_front();
        }
    }

    /// Push one event; returns any snapshots that completed.
    pub fn push(&mut self, ev: Event) -> Vec<Snapshot> {
        self.buf.push_back(ev);
        if self.buf.len() > self.alpha {
            self.buf.pop_front();
        }
        if self.armed.is_empty() {
            return Vec::new();
        }
        // In-place countdown: a snapshot stays armed for α/2 pushes, so
        // this runs once per message while anything is pending — it must
        // not allocate unless a snapshot actually completes.
        let mut done: Vec<Event> = Vec::new();
        self.armed.retain_mut(|a| {
            a.remaining -= 1;
            if a.remaining == 0 {
                done.push(a.fault);
                false
            } else {
                true
            }
        });
        done.into_iter().map(|f| self.freeze(f)).collect()
    }

    /// Flush all pending snapshots with whatever future context arrived
    /// (stream end).
    pub fn flush(&mut self) -> Vec<Snapshot> {
        let armed = std::mem::take(&mut self.armed);
        armed.into_iter().map(|a| self.freeze(a.fault)).collect()
    }

    fn freeze(&self, fault: Event) -> Snapshot {
        let events: Vec<Event> = self.buf.iter().copied().collect();
        let fault_index = events
            .iter()
            .position(|e| e.id == fault.id)
            .unwrap_or(0); // fault already evicted (tiny α): anchor at start
        Snapshot { fault, events, fault_index }
    }

    /// Serialize the full window state — α, ring contents, and armed
    /// snapshots with their countdowns — for an analyzer checkpoint.
    pub(crate) fn export_state(&self, out: &mut Vec<u8>) {
        use crate::checkpoint::codec::{put_u32, put_u64};
        put_u64(out, self.alpha as u64);
        put_u32(out, self.buf.len() as u32);
        for ev in &self.buf {
            crate::checkpoint::put_event(out, ev);
        }
        put_u32(out, self.armed.len() as u32);
        for a in &self.armed {
            crate::checkpoint::put_event(out, &a.fault);
            put_u64(out, a.remaining as u64);
        }
    }

    /// Rebuild a window from [`SlidingWindow::export_state`] bytes.
    pub(crate) fn import_state(
        r: &mut crate::checkpoint::codec::Reader<'_>,
    ) -> Result<SlidingWindow, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let alpha = r.u64()? as usize;
        if !(2..=(1 << 24)).contains(&alpha) {
            return Err(CheckpointError::Invalid("window alpha"));
        }
        let n = r.u32()? as usize;
        if n > alpha {
            return Err(CheckpointError::Invalid("window overfull"));
        }
        let mut buf = VecDeque::with_capacity(n);
        for _ in 0..n {
            buf.push_back(crate::checkpoint::read_event(r)?);
        }
        let n_armed = r.u32()? as usize;
        let mut armed = Vec::with_capacity(n_armed);
        for _ in 0..n_armed {
            let fault = crate::checkpoint::read_event(r)?;
            let remaining = r.u64()? as usize;
            if remaining == 0 {
                return Err(CheckpointError::Invalid("armed snapshot with zero countdown"));
            }
            armed.push(Armed { fault, remaining });
        }
        Ok(SlidingWindow { alpha, buf, armed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultMark;
    use gretel_model::{ApiId, Direction, MessageId, NodeId};

    fn ev(id: u64) -> Event {
        Event {
            id: MessageId(id),
            ts: id * 10,
            api: ApiId((id % 50) as u16),
            direction: Direction::Request,
            is_rpc: false,
            state_change: false,
            noise_api: false,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        }
    }

    #[test]
    fn ring_keeps_last_alpha() {
        let mut w = SlidingWindow::new(8);
        for i in 0..20 {
            w.push(ev(i));
        }
        assert_eq!(w.len(), 8);
        let ids: Vec<u64> = w.events().map(|e| e.id.0).collect();
        assert_eq!(ids, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_centers_the_fault() {
        let mut w = SlidingWindow::new(8);
        for i in 0..10 {
            assert!(w.push(ev(i)).is_empty());
        }
        let fault = ev(10);
        w.push(fault);
        w.arm(fault);
        // α/2 = 4 more events complete the snapshot.
        assert!(w.push(ev(11)).is_empty());
        assert!(w.push(ev(12)).is_empty());
        assert!(w.push(ev(13)).is_empty());
        let snaps = w.push(ev(14));
        assert_eq!(snaps.len(), 1);
        let s = &snaps[0];
        assert_eq!(s.events.len(), 8);
        assert_eq!(s.events[s.fault_index].id, MessageId(10));
        // Past half and future half around the fault.
        assert_eq!(s.fault_index, 3); // events 7..=14, fault=10 at index 3
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn multiple_armed_faults_complete_independently() {
        let mut w = SlidingWindow::new(8);
        for i in 0..8 {
            w.push(ev(i));
        }
        let f1 = ev(8);
        w.push(f1);
        w.arm(f1);
        w.push(ev(9));
        let f2 = ev(10);
        w.push(f2);
        w.arm(f2);
        // f1 needs 2 more, f2 needs 4 more.
        assert!(w.push(ev(11)).is_empty());
        let s1 = w.push(ev(12));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].fault.id, MessageId(8));
        w.push(ev(13));
        let s2 = w.push(ev(14));
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].fault.id, MessageId(10));
    }

    #[test]
    fn flush_emits_partial_snapshots() {
        let mut w = SlidingWindow::new(100);
        for i in 0..5 {
            w.push(ev(i));
        }
        let f = ev(5);
        w.push(f);
        w.arm(f);
        let snaps = w.flush();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].events.len(), 6);
        assert_eq!(snaps[0].fault_index, 5);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut w = SlidingWindow::new(4);
        for i in 0..10 {
            w.push(ev(i));
        }
        assert_eq!(w.len(), 4);
        w.resize(8);
        for i in 10..20 {
            w.push(ev(i));
        }
        assert_eq!(w.len(), 8);
        w.resize(3);
        assert_eq!(w.len(), 3);
        let ids: Vec<u64> = w.events().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![17, 18, 19], "shrink keeps the newest");
    }

    #[test]
    fn snapshot_counts_gap_markers() {
        let mut w = SlidingWindow::new(8);
        for i in 0..6 {
            let mut e = ev(i);
            if i == 2 {
                e.gap_before = 3;
            }
            if i == 4 {
                e.gap_before = 1;
            }
            w.push(e);
        }
        let f = ev(6);
        w.push(f);
        w.arm(f);
        let snaps = w.flush();
        assert_eq!(snaps[0].gap_markers(), 2);
        assert_eq!(snaps[0].lost_frames(), 4);
    }

    #[test]
    fn fault_evicted_by_tiny_window_anchors_at_start() {
        let mut w = SlidingWindow::new(2);
        let f = ev(0);
        w.push(f);
        w.arm(f);
        let snaps = w.push(ev(1)); // α/2 = 1 → completes, but window holds 0..1
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].fault_index, 0);
    }
}

//! Performance-fault monitoring.
//!
//! Latency observations (from [`crate::anomaly::LatencyPairer`]) are
//! grouped per API and fed to an online level-shift detector each
//! (§5.3: "GRETEL leverages available online outlier detection tools to
//! detect performance faults"; §6 uses the LS mode of `tsoutliers`). A
//! confirmed shift becomes a [`PerfFault`], which the analyzer treats like
//! an anomaly: snapshot, operation detection with *untruncated*
//! fingerprints, then root cause analysis.

use crate::anomaly::LatencyObs;
use crate::fasthash::FastMap;
use gretel_model::ApiId;
use gretel_telemetry::{Anomaly, LevelShiftConfig, LevelShiftDetector, OutlierDetector};

/// Factory producing one detector per monitored API. Defaults to the
/// adaptive level-shift detector; any [`OutlierDetector`] can be plugged
/// in (paper §6: "outlier detection in GRETEL is pluggable").
pub type DetectorFactory = Box<dyn Fn() -> Box<dyn OutlierDetector + Send> + Send>;

/// A confirmed per-API latency anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFault {
    /// The API whose latency shifted.
    pub api: ApiId,
    /// The underlying level-shift anomaly (times in µs).
    pub anomaly: Anomaly,
}

/// Per-API latency monitoring.
pub struct PerfMonitor {
    factory: DetectorFactory,
    detectors: FastMap<ApiId, Box<dyn OutlierDetector + Send>>,
    history: FastMap<ApiId, Vec<(u64, f64)>>,
    keep_history: bool,
}

impl PerfMonitor {
    /// New monitor with the default level-shift detector; `keep_history`
    /// retains the raw latency series per API (needed to plot Fig 6 /
    /// Fig 8b, off for throughput runs).
    pub fn new(cfg: LevelShiftConfig, keep_history: bool) -> PerfMonitor {
        Self::with_factory(
            Box::new(move || Box::new(LevelShiftDetector::new(cfg))),
            keep_history,
        )
    }

    /// New monitor with a custom detector factory.
    pub fn with_factory(factory: DetectorFactory, keep_history: bool) -> PerfMonitor {
        PerfMonitor { factory, detectors: FastMap::default(), history: FastMap::default(), keep_history }
    }

    /// Feed one latency observation.
    pub fn observe(&mut self, obs: LatencyObs) -> Option<PerfFault> {
        if self.keep_history {
            self.history.entry(obs.api).or_default().push((obs.ts, obs.latency_us as f64));
        }
        let det = self.detectors.entry(obs.api).or_insert_with(&self.factory);
        det.update(obs.ts, obs.latency_us as f64)
            .map(|anomaly| PerfFault { api: obs.api, anomaly })
    }

    /// Raw latency series collected for `api` (empty unless history is
    /// kept).
    pub fn history(&self, api: ApiId) -> &[(u64, f64)] {
        self.history.get(&api).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of APIs currently tracked.
    pub fn tracked_apis(&self) -> usize {
        self.detectors.len()
    }

    /// Serialize the monitor's state — per-API detector state and (when
    /// kept) latency history — for an analyzer checkpoint. Returns `false`
    /// (writing nothing) when any detector does not implement
    /// [`OutlierDetector::export_state`]: a monitor with an opaque plug-in
    /// detector cannot be checkpointed.
    pub(crate) fn export_state(&self, out: &mut Vec<u8>) -> bool {
        use crate::checkpoint::codec::{put_f64, put_u16, put_u32, put_u64, put_u8};
        let mut dets: Vec<(&ApiId, &Box<dyn OutlierDetector + Send>)> =
            self.detectors.iter().collect();
        dets.sort_by_key(|(a, _)| a.0);
        let mut body = Vec::new();
        put_u8(&mut body, self.keep_history as u8);
        put_u32(&mut body, dets.len() as u32);
        for (api, det) in dets {
            let Some(state) = det.export_state() else {
                return false;
            };
            put_u16(&mut body, api.0);
            put_u32(&mut body, state.len() as u32);
            body.extend_from_slice(&state);
        }
        let mut hist: Vec<(&ApiId, &Vec<(u64, f64)>)> = self.history.iter().collect();
        hist.sort_by_key(|(a, _)| a.0);
        put_u32(&mut body, hist.len() as u32);
        for (api, series) in hist {
            put_u16(&mut body, api.0);
            put_u32(&mut body, series.len() as u32);
            for &(ts, v) in series {
                put_u64(&mut body, ts);
                put_f64(&mut body, v);
            }
        }
        out.extend_from_slice(&body);
        true
    }

    /// Replace this monitor's state with [`PerfMonitor::export_state`]
    /// bytes. Detectors are re-created through the monitor's own factory
    /// and fed the serialized state, so the restoring monitor must be
    /// configured with the same factory as the one checkpointed.
    pub(crate) fn import_state(
        &mut self,
        r: &mut crate::checkpoint::codec::Reader<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let keep_history = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Invalid("perf keep_history flag")),
        };
        if keep_history != self.keep_history {
            return Err(CheckpointError::Invalid("perf keep_history mismatch"));
        }
        let n_det = r.u32()? as usize;
        let mut detectors = FastMap::default();
        for _ in 0..n_det {
            let api = ApiId(r.u16()?);
            let state = r.bytes()?;
            let mut det = (self.factory)();
            if !det.import_state(state) {
                return Err(CheckpointError::Invalid("perf detector state rejected"));
            }
            detectors.insert(api, det);
        }
        let n_hist = r.u32()? as usize;
        let mut history: FastMap<ApiId, Vec<(u64, f64)>> = FastMap::default();
        for _ in 0..n_hist {
            let api = ApiId(r.u16()?);
            let n = r.u32()? as usize;
            let mut series = Vec::with_capacity(n);
            for _ in 0..n {
                let ts = r.u64()?;
                let v = r.f64()?;
                series.push((ts, v));
            }
            history.insert(api, series);
        }
        self.detectors = detectors;
        self.history = history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(api: u16, ts: u64, latency_ms: f64) -> LatencyObs {
        LatencyObs { api: ApiId(api), ts, latency_us: (latency_ms * 1000.0) as u64 }
    }

    #[test]
    fn latency_shift_raises_perf_fault() {
        let mut mon = PerfMonitor::new(LevelShiftConfig::default(), false);
        let mut faults = Vec::new();
        for i in 0..100 {
            if let Some(f) = mon.observe(obs(1, i, 25.0 + (i % 3) as f64)) {
                faults.push(f);
            }
        }
        for i in 100..200 {
            if let Some(f) = mon.observe(obs(1, i, 125.0 + (i % 3) as f64)) {
                faults.push(f);
            }
        }
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].api, ApiId(1));
    }

    #[test]
    fn apis_are_tracked_independently() {
        let mut mon = PerfMonitor::new(LevelShiftConfig::default(), false);
        // API 1 shifts, API 2 stays flat.
        let mut faults = Vec::new();
        for i in 0..200 {
            let l1 = if i < 100 { 25.0 } else { 125.0 };
            if let Some(f) = mon.observe(obs(1, i, l1)) {
                faults.push(f);
            }
            if let Some(f) = mon.observe(obs(2, i, 10.0)) {
                faults.push(f);
            }
        }
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].api, ApiId(1));
        assert_eq!(mon.tracked_apis(), 2);
    }

    #[test]
    fn custom_detector_factory_is_honored() {
        use gretel_telemetry::EwmaDetector;
        let mut mon = PerfMonitor::with_factory(
            Box::new(|| Box::new(EwmaDetector::default())),
            false,
        );
        let mut alarms = 0;
        for i in 0..200 {
            let l = if i < 100 { 25.0 } else { 250.0 };
            if mon.observe(obs(1, i, l)).is_some() {
                alarms += 1;
            }
        }
        assert!(alarms >= 1, "EWMA plug-in detects the shift");
    }

    #[test]
    fn history_is_kept_when_requested() {
        let mut mon = PerfMonitor::new(LevelShiftConfig::default(), true);
        for i in 0..10 {
            mon.observe(obs(3, i, 5.0));
        }
        assert_eq!(mon.history(ApiId(3)).len(), 10);
        assert!(mon.history(ApiId(4)).is_empty());

        let mut quiet = PerfMonitor::new(LevelShiftConfig::default(), false);
        quiet.observe(obs(3, 0, 5.0));
        assert!(quiet.history(ApiId(3)).is_empty());
    }
}

//! The distributed monitoring service (paper Fig 3), threaded.
//!
//! One capture-agent thread per node encodes its egress traffic into
//! frames, packs them into arena-backed [`FrameBatch`]es
//! ([`ServiceConfig::ingest_batch`] frames per channel operation), and
//! ships the batches over a bounded channel; the event receiver performs
//! a k-way merge (each agent's stream is in timestamp order, like a TCP
//! stream from Bro preserves order, §5.2), decodes each batch zero-copy
//! out of its arena, scans the whole batch for failure patterns in one
//! tight pass, and drives the [`Analyzer`]. This is the deployment shape
//! the §7.4.2 overhead experiment measures.
//!
//! Batching is a transport-granularity knob, never a semantic one: frames
//! keep their per-agent order inside each arena, the k-way merge still
//! consumes one message at a time, and the fault scan is a pure function
//! of each message — so the diagnosis stream is byte-identical for every
//! `ingest_batch` value, including under impairment and crash replay
//! (`tests/batched_ingest.rs` holds that oracle).
//!
//! [`run_service_cfg`] is the full-featured entry point: it can stamp
//! per-agent sequence numbers, impair the capture plane with a seeded
//! [`CaptureImpairment`], resequence at the receiver (turning inferred
//! losses into window gap markers), and shed load under a
//! [`BackpressurePolicy::DropOldest`] policy instead of blocking agents.
//! [`run_service`] / [`run_service_sharded`] are the unimpaired legacy
//! shapes, expressed in terms of the same machinery.

use crate::analyzer::{Analyzer, AnalyzerStats, SnapshotJob};
use crate::anomaly::scan_message;
use crate::checkpoint::CheckpointError;
use crate::event::FaultMark;
use crate::report::Diagnosis;
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use gretel_model::{Message, NodeId};
use gretel_netcap::{
    batch_frames, CaptureAgent, CaptureImpairment, CaptureStats, CodecError, FrameBatch,
    FrameBatchBuilder, Resequencer,
};
use std::collections::VecDeque;

/// Why a service run could not complete (or start).
#[derive(Debug)]
pub enum ServiceError {
    /// A frame on an agent link failed to decode — the capture plane is
    /// shipping corrupt or mis-versioned frames.
    Codec(CodecError),
    /// The analysis pool disappeared while the receiver still had jobs to
    /// hand it (every worker exited or panicked unrecoverably).
    PoolDisconnected,
    /// The requested recovery configuration needs a backpressure policy
    /// that preserves the frame stream ([`BackpressurePolicy::Block`]):
    /// lossy eviction is nondeterministic across restarts, so replay could
    /// not reproduce the pre-crash stream.
    UnsupportedBackpressure,
    /// The analyzer's state cannot be serialized (a plug-in perf detector
    /// without [`gretel_telemetry::OutlierDetector::export_state`]), so
    /// checkpointing is impossible with this configuration.
    NotCheckpointable,
    /// A checkpoint journal failed to restore.
    Checkpoint(CheckpointError),
    /// The requested recovery configuration uses a wall-clock analysis
    /// budget ([`crate::JobBudget::WallClock`]), whose cancellation
    /// decisions depend on machine speed — replay after a crash could
    /// diverge from the original run. Use a deterministic budget
    /// ([`crate::JobBudget::Passes`] or [`crate::JobBudget::Unlimited`]).
    NondeterministicBudget,
    /// The durable state store failed (oversized record or file I/O).
    Store(gretel_store::StoreError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Codec(e) => write!(f, "agent frame failed to decode: {e}"),
            ServiceError::PoolDisconnected => {
                write!(f, "analysis pool disconnected with jobs outstanding")
            }
            ServiceError::UnsupportedBackpressure => {
                write!(f, "recovery requires BackpressurePolicy::Block (lossy eviction cannot be replayed deterministically)")
            }
            ServiceError::NotCheckpointable => {
                write!(f, "analyzer state is not serializable (opaque plug-in perf detector)")
            }
            ServiceError::Checkpoint(e) => write!(f, "checkpoint restore failed: {e}"),
            ServiceError::NondeterministicBudget => {
                write!(f, "recovery requires a deterministic analysis budget (JobBudget::WallClock cannot be replayed identically)")
            }
            ServiceError::Store(e) => write!(f, "durable state store failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Codec(e) => Some(e),
            ServiceError::Checkpoint(e) => Some(e),
            ServiceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ServiceError {
    fn from(e: CodecError) -> ServiceError {
        ServiceError::Codec(e)
    }
}

impl From<CheckpointError> for ServiceError {
    fn from(e: CheckpointError) -> ServiceError {
        ServiceError::Checkpoint(e)
    }
}

impl From<gretel_store::StoreError> for ServiceError {
    fn from(e: gretel_store::StoreError) -> ServiceError {
        ServiceError::Store(e)
    }
}

/// Resolve a raw `GRETEL_WORKERS` value to a pool width. `None` (variable
/// unset) and `Some(valid positive integer)` behave as documented on
/// [`run_service`]; anything else — unparseable text, zero — is rejected
/// with a warning on stderr and an explicit fall back to the machine
/// default, never silently treated as "unset".
fn parse_workers_env(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(0) => {
            eprintln!(
                "gretel: GRETEL_WORKERS=0 is not a valid pool width; \
                 falling back to the machine default"
            );
            None
        }
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!(
                "gretel: GRETEL_WORKERS={raw:?} is not a positive integer; \
                 falling back to the machine default"
            );
            None
        }
    }
}

/// Default analysis-pool width for [`run_service`]: the `GRETEL_WORKERS`
/// environment variable when set to a positive integer, otherwise the
/// machine's parallelism capped at 4 (a laptop-friendly default — set the
/// variable to use every core of a big box).
fn default_workers() -> usize {
    if let Some(n) = parse_workers_env(std::env::var("GRETEL_WORKERS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

/// Resolve the per-shard analysis-pool width for an `shards`-way sharded
/// pipeline (see [`crate::shard`]).
///
/// `raw_env` is the raw `GRETEL_WORKERS` value (the *total* worker budget
/// across all shards, same meaning as for [`run_service`]); `available` is
/// the machine parallelism. The result is clamped so the product
/// `shards × per-shard workers` can neither silently oversubscribe the
/// machine nor drop to zero:
///
/// * unset / `0` / unparseable → the unsharded default budget
///   (`min(available, 4)`), spread over the shards;
/// * a budget below the shard count would give some shard zero workers →
///   warn and give every shard one worker;
/// * a budget above `available` would oversubscribe → warn and clamp the
///   budget to `available` before dividing.
///
/// # Panics
///
/// Panics if `shards == 0` or `available == 0`.
pub fn resolve_shard_workers(shards: usize, raw_env: Option<&str>, available: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    assert!(available > 0, "need at least one core");
    let mut budget = parse_workers_env(raw_env).unwrap_or_else(|| available.min(4));
    if budget > available {
        eprintln!(
            "gretel: GRETEL_WORKERS={budget} oversubscribes the machine \
             ({available} cores) across {shards} shard(s); clamping to {available}"
        );
        budget = available;
    }
    if budget < shards {
        // Reached with the machine-default budget too, so don't claim the
        // env var was set.
        eprintln!(
            "gretel: worker budget {budget} is below the shard count \
             ({shards}); every shard gets one worker"
        );
        return 1;
    }
    budget / shards
}

/// What an agent does when its link to the analyzer is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the agent until the receiver catches up (lossless; the
    /// paper's TCP links behave this way).
    #[default]
    Block,
    /// Evict the oldest queued frame to make room (lossy but non-blocking;
    /// an overloaded tap sheds load). Every eviction is counted in
    /// [`ServiceStats::backpressure_drops`] and, because this policy
    /// stamps sequence numbers, surfaces at the receiver as a capture gap.
    DropOldest,
}

/// Configuration for [`run_service_cfg`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of each agent→receiver link (frames).
    pub channel_capacity: usize,
    /// Analysis-pool width; `None` uses `GRETEL_WORKERS` or the capped
    /// machine default (see [`ServiceConfig::effective_workers`]).
    pub workers: Option<usize>,
    /// Full-link behavior.
    pub backpressure: BackpressurePolicy,
    /// Optional seeded capture-plane impairment applied to every agent's
    /// frame stream. `None` runs the exact unimpaired legacy pipeline.
    pub impairment: Option<CaptureImpairment>,
    /// Receiver-side resequencer depth: how many out-of-order frames to
    /// park per agent before force-advancing past a hole.
    pub resequence_depth: usize,
    /// Frames packed per [`FrameBatch`] channel operation on each agent
    /// link (≥ 1). `1` is the per-message shape — one frame per send;
    /// larger values amortize channel synchronization and per-frame
    /// allocation across the batch. Purely a transport-granularity knob:
    /// the diagnosis stream is byte-identical for every value.
    pub ingest_batch: usize,
    /// Optional pipeline metrics registry: stage event counts and
    /// latencies, capture meters, and queue-depth gauges flow into it from
    /// every thread of the pipeline. `None` (the default) and
    /// [`gretel_obs::PipelineMetrics::disabled`] both leave the hot path
    /// untouched; metrics never influence the diagnoses.
    pub metrics: Option<std::sync::Arc<gretel_obs::PipelineMetrics>>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            channel_capacity: 64,
            workers: None,
            backpressure: BackpressurePolicy::Block,
            impairment: None,
            resequence_depth: 32,
            ingest_batch: 64,
            metrics: None,
        }
    }
}

impl ServiceConfig {
    /// The analysis-pool width this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_workers).max(1)
    }

    /// Whether frames carry per-agent sequence numbers in this
    /// configuration (any impairment, or a lossy backpressure policy —
    /// both need the receiver to detect what went missing).
    pub fn sequenced(&self) -> bool {
        self.impairment.is_some() || self.backpressure == BackpressurePolicy::DropOldest
    }
}

/// Transport-level statistics from one service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Frames shipped agent → analyzer.
    pub frames: u64,
    /// Encoded bytes shipped.
    pub bytes: u64,
    /// Agent→receiver channel operations (batch receives) the receiver
    /// performed. Equal to `frames` when [`ServiceConfig::ingest_batch`]
    /// is 1; divided by up to the batch size otherwise — the dispatch
    /// overhead the batched fast path amortizes.
    pub channel_ops: u64,
    /// Frames evicted by [`BackpressurePolicy::DropOldest`].
    pub backpressure_drops: u64,
    /// Merged capture-plane picture: injector-side counters (dropped,
    /// duplicated, reordered, stalled) plus receiver-side inference (gaps,
    /// lost, dup_discarded).
    pub capture: CaptureStats,
}

/// Run the full agents → receiver → analyzer pipeline over a captured
/// traffic log, returning all diagnoses plus transport and analyzer
/// statistics.
///
/// `channel_capacity` bounds each agent link (back-pressure, like the TCP
/// connections in the paper's deployment).
pub fn run_service(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    channel_capacity: usize,
) -> (Vec<Diagnosis>, ServiceStats, AnalyzerStats) {
    run_service_cfg(
        analyzer,
        nodes,
        traffic,
        &ServiceConfig { channel_capacity, ..ServiceConfig::default() },
    )
}

/// [`run_service`] with an explicit analysis-pool width.
///
/// Historical name: this predates tenant sharding and only widens the
/// worker pool of a single pipeline — it never partitioned anything. The
/// tenant-sharded pipeline lives in [`crate::shard`]; for a wider pool use
/// [`run_service_cfg`] with [`ServiceConfig::workers`], which is exactly
/// what this shim does. Keeping one underlying entry point means the
/// inline/threaded/pool-width byte-identity oracles all exercise the same
/// code path.
#[deprecated(
    since = "0.1.0",
    note = "worker pools are a ServiceConfig concern: use run_service_cfg with \
            ServiceConfig::workers; for tenant sharding see gretel_core::shard"
)]
pub fn run_service_sharded(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    channel_capacity: usize,
    workers: usize,
) -> (Vec<Diagnosis>, ServiceStats, AnalyzerStats) {
    run_service_cfg(
        analyzer,
        nodes,
        traffic,
        &ServiceConfig { channel_capacity, workers: Some(workers), ..ServiceConfig::default() },
    )
}

/// One agent's decoded stream at the receiver: batches are decoded
/// zero-copy out of their arena, resequenced (when sequenced) into
/// `(gap_before, message)` pairs, scanned for failure patterns in one
/// batch-wide pass, and buffered until the k-way merge consumes them.
struct AgentStream {
    reseq: Option<Resequencer>,
    ready: VecDeque<(u32, Message, FaultMark)>,
    done: bool,
}

impl AgentStream {
    /// Scan a run of released messages (one decoded batch's worth) and
    /// queue them for the merge. This is the batch-wide fault-scan pass:
    /// the SWAR scanners run back to back over the released messages
    /// while they are cache-hot, instead of interleaving with merge and
    /// window work per message. The scan is pure, so the marks are the
    /// ones inline ingest would have computed.
    fn admit(&mut self, released: impl IntoIterator<Item = (u32, Message)>) {
        for (gap, msg) in released {
            let mark = scan_message(&msg);
            self.ready.push_back((gap, msg, mark));
        }
    }

    /// Pull batches until at least one message is ready or the stream ends.
    fn refill(
        &mut self,
        rx: &Receiver<FrameBatch>,
        stats: &mut ServiceStats,
        metrics: Option<&gretel_obs::PipelineMetrics>,
    ) -> Result<(), ServiceError> {
        while self.ready.is_empty() && !self.done {
            match rx.recv() {
                Ok(batch) => {
                    stats.channel_ops += 1;
                    stats.frames += batch.frames() as u64;
                    stats.bytes += batch.byte_len() as u64;
                    let decoded = batch.decode_all()?;
                    match &mut self.reseq {
                        Some(r) => {
                            // One timing sample per batch, one counted
                            // event per frame: stage latencies show the
                            // batch-level dispatch cost while event counts
                            // stay per-item (see gretel-obs).
                            let n = decoded.len() as u64;
                            let mut released = Vec::with_capacity(decoded.len());
                            let t = gretel_obs::StageTimer::start(
                                metrics,
                                gretel_obs::Stage::Resequence,
                            );
                            for (msg, seq) in decoded {
                                released.extend(r.push(seq, msg));
                            }
                            t.finish();
                            if let Some(m) = metrics {
                                m.count(gretel_obs::Stage::Resequence, n);
                            }
                            self.admit(released);
                        }
                        None => self.admit(decoded.into_iter().map(|(msg, _)| (0, msg))),
                    }
                }
                Err(_) => {
                    self.done = true;
                    if let Some(r) = &mut self.reseq {
                        let released = r.flush();
                        self.admit(released);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Ship one frame batch under a backpressure policy. Returns `false` if
/// the receiver went away. `evict_rx` must be `Some` under
/// [`BackpressurePolicy::DropOldest`] and `None` under
/// [`BackpressurePolicy::Block`] — a blocking agent must not hold a
/// receiver clone, or its own handle would keep the link alive (and its
/// sends blocked forever) after the real receiver hung up.
pub(crate) fn ship_batch(
    batch: FrameBatch,
    tx: &Sender<FrameBatch>,
    evict_rx: Option<&Receiver<FrameBatch>>,
    policy: BackpressurePolicy,
    drops: &mut u64,
) -> bool {
    match policy {
        BackpressurePolicy::Block => tx.send(batch).is_ok(),
        BackpressurePolicy::DropOldest => {
            let evict_rx = evict_rx.expect("DropOldest requires an eviction handle");
            let mut batch = batch;
            loop {
                match tx.try_send(batch) {
                    Ok(()) => return true,
                    Err(TrySendError::Full(b)) => {
                        batch = b;
                        // Evict the oldest queued batch. The receiver may
                        // race us to it — then the queue has room anyway;
                        // yield and retry. Eviction granularity is the
                        // batch, but drops are accounted per frame so the
                        // capture arithmetic is batch-size independent.
                        if let Ok(evicted) = evict_rx.try_recv() {
                            *drops += evicted.frames() as u64;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
        }
    }
}

/// Ship one agent's (possibly impaired) pre-built batches under a
/// backpressure policy; see [`ship_batch`].
pub(crate) fn ship_batches(
    batches: Vec<FrameBatch>,
    tx: &Sender<FrameBatch>,
    evict_rx: Option<&Receiver<FrameBatch>>,
    policy: BackpressurePolicy,
    drops: &mut u64,
) -> bool {
    for batch in batches {
        if !ship_batch(batch, tx, evict_rx, policy, drops) {
            return false;
        }
    }
    true
}

/// The configurable pipeline: agents (optionally sequence-stamping and
/// impaired) → bounded links (optionally lossy) → resequencing receiver →
/// k-way merge → analyzer, with snapshot analysis on a worker pool.
///
/// With `cfg.impairment == None` and [`BackpressurePolicy::Block`] this is
/// exactly the legacy lossless pipeline: frames are unsequenced, the
/// resequencer is bypassed, and the diagnoses are byte-identical to inline
/// analysis. With impairment, receivers infer losses from per-agent
/// sequence numbers, feed them to [`Analyzer::note_capture_gap`], and every
/// diagnosis whose window spans a gap comes back tagged
/// [`crate::CaptureConfidence::Degraded`].
///
/// The per-message fast path (byte scan, latency pairing, window push)
/// stays on the receiver thread — it is stateful and cheap. Completed
/// snapshots are the expensive, stateless part (Algorithm 2 over every
/// claimed error, plus RCA); they ship as [`SnapshotJob`]s to the worker
/// pool. Each job carries a sequence number and the collected diagnoses are
/// re-ordered by it, so the output is identical to inline analysis
/// regardless of worker scheduling.
pub fn run_service_cfg(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &ServiceConfig,
) -> (Vec<Diagnosis>, ServiceStats, AnalyzerStats) {
    // In-process agents encode with the same codec the receiver decodes
    // with and the pool only exits once the job channel closes, so neither
    // error source can fire in this legacy shape.
    run_service_checked(analyzer, nodes, traffic, cfg)
        .expect("in-process pipeline cannot hit transport errors")
}

/// [`run_service_cfg`] with transport errors surfaced instead of panicking:
/// a frame that fails to decode or an analysis pool that vanishes
/// mid-stream comes back as a [`ServiceError`] so a supervising caller
/// (e.g. the crash-recovery service) can react.
pub fn run_service_checked(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &ServiceConfig,
) -> Result<(Vec<Diagnosis>, ServiceStats, AnalyzerStats), ServiceError> {
    assert!(cfg.channel_capacity > 0);
    assert!(cfg.ingest_batch >= 1, "a batch holds at least one frame");
    let workers = cfg.effective_workers();
    let sequenced = cfg.sequenced();
    let metrics = cfg.metrics.as_deref();
    let mut service_stats = ServiceStats::default();
    let mut diagnoses = Vec::new();

    let snapshot_analyzer = analyzer.snapshot_analyzer().with_metrics(metrics);
    let (job_tx, job_rx) = bounded::<(u64, SnapshotJob)>(cfg.channel_capacity);
    // Results are unbounded: the collector drains only after the merge
    // loop finishes, so a bounded link could wedge the pool (workers
    // blocked on full results ⇒ jobs pile up ⇒ receiver blocked).
    let (res_tx, res_rx) = crossbeam_channel::unbounded::<(u64, Vec<Diagnosis>)>();
    // Agents report their capture-side stats here at end of stream.
    let (stat_tx, stat_rx) = crossbeam_channel::unbounded::<(CaptureStats, u64)>();

    std::thread::scope(|scope| -> Result<(), ServiceError> {
        // The analysis pool: stateless workers over shared MPMC channels.
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                while let Ok((seq, job)) = job_rx.recv() {
                    if res_tx.send((seq, snapshot_analyzer.analyze(&job))).is_err() {
                        return; // collector gone
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);

        // One bounded link per agent (batches, not frames).
        let mut rxs: Vec<Receiver<FrameBatch>> = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let (tx, rx) = bounded::<FrameBatch>(cfg.channel_capacity);
            rxs.push(rx.clone());
            let agent = CaptureAgent::new(node);
            let stat_tx = stat_tx.clone();
            let impairment = cfg.impairment;
            let policy = cfg.backpressure;
            let ingest_batch = cfg.ingest_batch;
            scope.spawn(move || {
                // Under Block the agent must not hold a receiver handle —
                // see [`ship_batch`]; drop it before the first send.
                let evict_rx = (policy == BackpressurePolicy::DropOldest).then_some(rx);
                let mut capture = CaptureStats::default();
                let mut drops = 0u64;
                if sequenced {
                    // Whole-stream capture first: impairment coins key on
                    // per-agent frame indices, so the impairment must see
                    // the flat frame list before it is packed into arenas.
                    let frames = agent.capture_seq(traffic.iter(), 0);
                    let frames = match impairment {
                        Some(imp) => imp.apply(node, frames, &mut capture),
                        None => {
                            capture.frames += frames.len() as u64;
                            frames
                        }
                    };
                    let batches = batch_frames(&frames, ingest_batch);
                    ship_batches(batches, &tx, evict_rx.as_ref(), policy, &mut drops);
                } else {
                    // Legacy lossless path: stream capture, packing each
                    // batch arena as frames arrive.
                    let mut builder = FrameBatchBuilder::new(ingest_batch);
                    let mut alive = true;
                    for msg in traffic {
                        if agent.observes(msg) {
                            capture.frames += 1;
                            if let Some(batch) = builder.push(&gretel_netcap::encode(msg)) {
                                if !ship_batch(batch, &tx, evict_rx.as_ref(), policy, &mut drops)
                                {
                                    alive = false;
                                    break; // receiver gone
                                }
                            }
                        }
                    }
                    if alive {
                        if let Some(batch) = builder.finish() {
                            ship_batch(batch, &tx, evict_rx.as_ref(), policy, &mut drops);
                        }
                    }
                }
                let _ = stat_tx.send((capture, drops));
                // tx drops here, closing the stream.
            });
        }
        drop(stat_tx);

        // Event receiver: k-way merge on (ts, id). Each stream is already
        // ordered (the resequencer restores per-agent order under
        // impairment), so we only compare stream heads.
        let mut seq = 0u64;
        let mut streams: Vec<AgentStream> = rxs
            .iter()
            .map(|_| AgentStream {
                reseq: sequenced.then(|| Resequencer::new(cfg.resequence_depth)),
                ready: VecDeque::new(),
                done: false,
            })
            .collect();
        for (st, rx) in streams.iter_mut().zip(&rxs) {
            st.refill(rx, &mut service_stats, metrics)?;
        }
        loop {
            let mut best: Option<usize> = None;
            for (i, st) in streams.iter().enumerate() {
                if let Some((_, m, _)) = st.ready.front() {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let (_, bm, _) = streams[b].ready.front().expect("best is nonempty");
                            (m.ts_us, m.id) < (bm.ts_us, bm.id)
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (gap, msg, mark) =
                streams[i].ready.pop_front().expect("chosen head is nonempty");
            streams[i].refill(&rxs[i], &mut service_stats, metrics)?;
            if gap > 0 {
                analyzer.note_capture_gap(gap);
            }
            let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Ingest);
            let jobs = analyzer.ingest_marked(&msg, mark, metrics);
            t.finish();
            if let Some(m) = metrics {
                m.count(gretel_obs::Stage::Ingest, 1);
            }
            for job in jobs {
                if job_tx.send((seq, job)).is_err() {
                    return Err(ServiceError::PoolDisconnected);
                }
                seq += 1;
                if let Some(m) = metrics {
                    m.record_max(gretel_obs::Meter::JobQueueDepthMax, job_tx.len() as u64);
                }
            }
        }
        for st in &streams {
            if let Some(r) = &st.reseq {
                service_stats.capture.merge(&r.stats());
            }
        }
        for job in analyzer.finish_jobs_observed(metrics) {
            if job_tx.send((seq, job)).is_err() {
                return Err(ServiceError::PoolDisconnected);
            }
            seq += 1;
        }
        drop(job_tx); // pool drains and exits

        // Agent-side capture stats: every agent sends exactly once before
        // dropping its tx, and the merge loop only ends after all links
        // closed, so this drains without blocking indefinitely.
        while let Ok((capture, drops)) = stat_rx.recv() {
            service_stats.capture.merge(&capture);
            service_stats.backpressure_drops += drops;
        }

        // Deterministic merge: job order == the order inline analysis
        // would have produced, so sorting by sequence number restores it.
        let mut results: Vec<(u64, Vec<Diagnosis>)> = Vec::with_capacity(seq as usize);
        while let Ok(r) = res_rx.recv() {
            results.push(r);
        }
        let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Commit);
        results.sort_by_key(|&(s, _)| s);
        for (_, ds) in results {
            diagnoses.extend(ds);
        }
        t.finish();
        if let Some(m) = metrics {
            m.count(gretel_obs::Stage::Commit, diagnoses.len() as u64);
        }
        Ok(())
    })?;

    // One end-of-run flush: by now both halves of the capture picture
    // (injector counters, receiver inference) are merged.
    if let Some(m) = metrics {
        service_stats.capture.record_into(m);
        m.add(gretel_obs::Meter::BackpressureDrops, service_stats.backpressure_drops);
    }

    let analyzer_stats = analyzer.stats();
    Ok((diagnoses, service_stats, analyzer_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GretelConfig;
    use crate::fingerprint::FingerprintLibrary;
    use gretel_model::{Catalog, HttpMethod, OpSpecId, OperationSpec, Service, Workflows};
    use gretel_sim::{
        ApiFault, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
    };

    #[test]
    fn threaded_pipeline_matches_inline_analysis() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);

        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 2, ..Default::default() })
            .run(&refs);

        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };

        // Inline reference.
        let mut inline = Analyzer::new(&lib, gcfg);
        let expected = crate::analyzer::analyze_stream(&mut inline, exec.messages.iter());

        // Threaded pipeline.
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        let mut threaded = Analyzer::new(&lib, gcfg);
        let (got, svc, astats) = run_service(&mut threaded, &nodes, &exec.messages, 64);

        assert_eq!(got, expected, "threaded pipeline must be semantically identical");
        assert!(svc.frames > 0);
        assert!(svc.bytes > 0);
        assert_eq!(svc.backpressure_drops, 0);
        assert!(svc.capture.is_clean());
        // Relevance filter may drop MySQL/NTP traffic; everything relevant
        // is processed exactly once.
        assert!(astats.messages as usize <= exec.messages.len());
        assert_eq!(astats.messages, svc.frames);
    }

    #[test]
    fn sharded_pool_widths_all_match_inline_analysis() {
        // Multiple faults → multiple snapshot jobs in flight; every pool
        // width must reproduce the inline diagnosis sequence exactly.
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);

        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let put_file = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let plan = FaultPlan::none()
            .with_api_fault(ApiFault {
                api: ports_post,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 500, reason: None },
                abort_op: true,
            })
            .with_api_fault(ApiFault {
                api: put_file,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 503, reason: None },
                abort_op: true,
            });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec =
            Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 6, ..Default::default() })
                .run(&refs);

        let gcfg = GretelConfig { alpha: 48, ..GretelConfig::default() };
        let mut inline = Analyzer::new(&lib, gcfg);
        let expected = crate::analyzer::analyze_stream(&mut inline, exec.messages.iter());
        assert!(expected.len() >= 2, "want several diagnoses, got {}", expected.len());

        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        for workers in [1, 2, 4, 8] {
            let mut threaded = Analyzer::new(&lib, gcfg);
            // The deprecated shim must keep delegating to run_service_cfg
            // until it is removed outright.
            #[allow(deprecated)]
            let (got, _, astats) =
                run_service_sharded(&mut threaded, &nodes, &exec.messages, 32, workers);
            assert_eq!(got, expected, "pool width {workers}");
            assert_eq!(astats, inline.stats(), "pool width {workers}");
        }
    }

    #[test]
    fn empty_traffic_is_fine() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 1, 1);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 8, ..Default::default() });
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        let (diags, svc, _) = run_service(&mut analyzer, &nodes, &[], 4);
        assert!(diags.is_empty());
        assert_eq!(svc.frames, 0);
    }

    fn faulted_execution(seed: u64) -> (FingerprintLibrary, Deployment, Vec<Message>) {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed, ..Default::default() })
            .run(&refs);
        (lib, dep, exec.messages)
    }

    #[test]
    fn metrics_observe_the_pipeline_without_perturbing_it() {
        use gretel_obs::{Meter, PipelineMetrics, Stage};
        let (lib, dep, messages) = faulted_execution(2);
        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();

        let mut plain = Analyzer::new(&lib, gcfg);
        let (expected, _, _) = run_service(&mut plain, &nodes, &messages, 64);

        for enabled in [false, true] {
            let metrics = std::sync::Arc::new(if enabled {
                PipelineMetrics::enabled()
            } else {
                PipelineMetrics::disabled()
            });
            let cfg = ServiceConfig {
                impairment: Some(CaptureImpairment::none()),
                metrics: Some(metrics.clone()),
                ..ServiceConfig::default()
            };
            let mut observed = Analyzer::new(&lib, gcfg);
            let (got, svc, astats) = run_service_cfg(&mut observed, &nodes, &messages, &cfg);
            assert_eq!(got, expected, "metrics (enabled={enabled}) must not change diagnoses");

            if !enabled {
                assert_eq!(metrics.stage_events(Stage::Ingest), 0, "disabled registry records nothing");
                continue;
            }
            // Stage events line up with the run's own accounting.
            assert_eq!(metrics.stage_events(Stage::Ingest), astats.messages);
            assert_eq!(metrics.stage_events(Stage::Resequence), svc.frames);
            assert_eq!(metrics.stage_events(Stage::Window), astats.snapshots);
            assert_eq!(metrics.stage_events(Stage::Commit), got.len() as u64);
            assert!(metrics.stage_events(Stage::Detect) > 0, "faulted run detects");
            assert_eq!(metrics.meter(Meter::CaptureFrames), svc.capture.frames);
            assert_eq!(metrics.meter(Meter::BackpressureDrops), 0);
            // Latency histograms saw one sample per counted event.
            assert_eq!(metrics.stage_latency(Stage::Ingest).count, astats.messages);
            assert!(metrics.stage_latency(Stage::Detect).max_us >= metrics.stage_latency(Stage::Detect).p50_us);
        }
    }

    #[test]
    fn noop_impairment_reproduces_the_lossless_diagnoses() {
        let (lib, dep, messages) = faulted_execution(2);
        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();

        let mut plain = Analyzer::new(&lib, gcfg);
        let (expected, _, _) = run_service(&mut plain, &nodes, &messages, 64);

        // Sequence-stamped frames + resequencer + zero-rate impairment:
        // the extra machinery must be invisible in the output.
        let cfg = ServiceConfig {
            impairment: Some(CaptureImpairment::none()),
            ..ServiceConfig::default()
        };
        let mut seq = Analyzer::new(&lib, gcfg);
        let (got, svc, astats) = run_service_cfg(&mut seq, &nodes, &messages, &cfg);
        assert_eq!(got, expected);
        assert!(svc.capture.is_clean());
        assert_eq!(astats.capture_gaps, 0);
        assert!(got.iter().all(|d| d.confidence.is_exact()));
    }

    #[test]
    fn impaired_capture_degrades_but_does_not_lie() {
        let (lib, dep, messages) = faulted_execution(2);
        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        let cfg = ServiceConfig {
            impairment: Some(CaptureImpairment {
                drop_prob: 0.05,
                dup_prob: 0.02,
                reorder_prob: 0.05,
                reorder_span: 3,
                stall: None,
                seed: 11,
            }),
            ..ServiceConfig::default()
        };
        let mut analyzer = Analyzer::new(&lib, gcfg);
        let (diags, svc, astats) = run_service_cfg(&mut analyzer, &nodes, &messages, &cfg);
        assert!(svc.capture.dropped > 0, "5% drop over {} frames", svc.frames);
        assert_eq!(astats.lost_frames, svc.capture.lost);
        // Every diagnosis is either exact or admits its window's gaps.
        for d in &diags {
            if let crate::report::CaptureConfidence::Degraded { gaps, lost } = d.confidence {
                assert!(gaps > 0 && lost >= gaps, "gaps={gaps} lost={lost}");
            }
        }
    }

    #[test]
    fn drop_oldest_sheds_load_instead_of_blocking() {
        let (lib, dep, messages) = faulted_execution(2);
        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        // A tiny link under DropOldest: the run must complete (no wedge)
        // and account for every frame — shipped ones reach the analyzer,
        // evicted ones are counted, nothing disappears silently.
        let cfg = ServiceConfig {
            channel_capacity: 2,
            backpressure: BackpressurePolicy::DropOldest,
            ..ServiceConfig::default()
        };
        let mut analyzer = Analyzer::new(&lib, gcfg);
        let (_, svc, astats) = run_service_cfg(&mut analyzer, &nodes, &messages, &cfg);
        assert_eq!(svc.capture.frames, svc.frames + svc.backpressure_drops);
        // Evictions (if any) surface as receiver-side gaps via sequence
        // numbers; the analyzer saw exactly the frames that survived.
        assert_eq!(astats.messages, svc.frames - svc.capture.dup_discarded);
        assert_eq!(svc.capture.lost, svc.backpressure_drops);
    }

    #[test]
    fn workers_knob_and_env_override_resolve() {
        assert_eq!(ServiceConfig { workers: Some(7), ..Default::default() }.effective_workers(), 7);
        assert!(ServiceConfig::default().effective_workers() >= 1);
    }

    // parse_workers_env is tested against raw values, not the real
    // environment: tests run in parallel and the process environment is
    // shared mutable state.
    #[test]
    fn workers_env_valid_values_parse() {
        assert_eq!(parse_workers_env(None), None);
        assert_eq!(parse_workers_env(Some("8")), Some(8));
        assert_eq!(parse_workers_env(Some("  3 ")), Some(3));
    }

    #[test]
    fn workers_env_unparseable_value_falls_back_with_warning() {
        assert_eq!(parse_workers_env(Some("many")), None);
        assert_eq!(parse_workers_env(Some("")), None);
        assert_eq!(parse_workers_env(Some("-2")), None);
    }

    #[test]
    fn workers_env_zero_falls_back_with_warning() {
        assert_eq!(parse_workers_env(Some("0")), None);
        assert!(ServiceConfig::default().effective_workers() >= 1);
    }

    // resolve_shard_workers, like parse_workers_env above, is tested
    // against raw values rather than the real environment.
    #[test]
    fn shard_workers_zero_and_unparseable_fall_back_to_the_default_budget() {
        // Default budget on an 8-core box is min(8, 4) = 4, split 2 ways.
        assert_eq!(resolve_shard_workers(2, Some("0"), 8), 2);
        assert_eq!(resolve_shard_workers(2, Some("many"), 8), 2);
        assert_eq!(resolve_shard_workers(2, None, 8), 2);
        // ... and on a 2-core box the budget is 2.
        assert_eq!(resolve_shard_workers(2, Some("0"), 2), 1);
    }

    #[test]
    fn shard_workers_oversubscription_is_clamped() {
        // A 64-worker budget on 8 cores clamps to 8, split over 4 shards.
        assert_eq!(resolve_shard_workers(4, Some("64"), 8), 2);
        // Clamping can then trip the below-shard-count floor.
        assert_eq!(resolve_shard_workers(4, Some("64"), 2), 1);
    }

    #[test]
    fn shard_workers_never_drop_to_zero() {
        // Budget below the shard count: every shard still gets one worker.
        assert_eq!(resolve_shard_workers(16, Some("8"), 32), 1);
        assert_eq!(resolve_shard_workers(3, Some("2"), 8), 1);
        // Exact division stays exact.
        assert_eq!(resolve_shard_workers(4, Some("8"), 8), 2);
        for shards in 1..40 {
            assert!(resolve_shard_workers(shards, None, 4) >= 1, "shards={shards}");
        }
    }
}

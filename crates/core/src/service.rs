//! The distributed monitoring service (paper Fig 3), threaded.
//!
//! One capture-agent thread per node encodes its egress traffic into
//! frames and ships them over a bounded channel; the event receiver
//! performs a k-way merge (each agent's stream is in timestamp order, like
//! a TCP stream from Bro preserves order, §5.2), decodes frames, and
//! drives the [`Analyzer`]. This is the deployment shape the §7.4.2
//! overhead experiment measures.

use crate::analyzer::{Analyzer, AnalyzerStats, SnapshotJob};
use crate::report::Diagnosis;
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver};
use gretel_model::{Message, NodeId};
use gretel_netcap::{decode_one, CaptureAgent};

/// Default analysis-pool width for [`run_service`].
fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

/// Transport-level statistics from one service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Frames shipped agent → analyzer.
    pub frames: u64,
    /// Encoded bytes shipped.
    pub bytes: u64,
}

/// Run the full agents → receiver → analyzer pipeline over a captured
/// traffic log, returning all diagnoses plus transport and analyzer
/// statistics.
///
/// `channel_capacity` bounds each agent link (back-pressure, like the TCP
/// connections in the paper's deployment).
pub fn run_service(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    channel_capacity: usize,
) -> (Vec<Diagnosis>, ServiceStats, AnalyzerStats) {
    run_service_sharded(analyzer, nodes, traffic, channel_capacity, default_workers())
}

/// [`run_service`] with an explicit analysis-pool width.
///
/// The per-message fast path (byte scan, latency pairing, window push)
/// stays on the receiver thread — it is stateful and cheap. Completed
/// snapshots are the expensive, stateless part (Algorithm 2 over every
/// claimed error, plus RCA); they ship as [`SnapshotJob`]s to `workers`
/// analysis threads. Each job carries a sequence number and the collected
/// diagnoses are re-ordered by it, so the output is byte-identical to
/// inline analysis regardless of worker scheduling.
pub fn run_service_sharded(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    channel_capacity: usize,
    workers: usize,
) -> (Vec<Diagnosis>, ServiceStats, AnalyzerStats) {
    assert!(channel_capacity > 0);
    let workers = workers.max(1);
    let mut service_stats = ServiceStats::default();
    let mut diagnoses = Vec::new();

    let snapshot_analyzer = analyzer.snapshot_analyzer();
    let (job_tx, job_rx) = bounded::<(u64, SnapshotJob)>(channel_capacity);
    // Results are unbounded: the collector drains only after the merge
    // loop finishes, so a bounded link could wedge the pool (workers
    // blocked on full results ⇒ jobs pile up ⇒ receiver blocked).
    let (res_tx, res_rx) = crossbeam_channel::unbounded::<(u64, Vec<Diagnosis>)>();

    std::thread::scope(|scope| {
        // The analysis pool: stateless workers over shared MPMC channels.
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                while let Ok((seq, job)) = job_rx.recv() {
                    if res_tx.send((seq, snapshot_analyzer.analyze(&job))).is_err() {
                        return; // collector gone
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);

        // One bounded link per agent.
        let mut rxs: Vec<Receiver<Bytes>> = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let (tx, rx) = bounded::<Bytes>(channel_capacity);
            rxs.push(rx);
            let agent = CaptureAgent::new(node);
            scope.spawn(move || {
                for msg in traffic {
                    if agent.observes(msg) {
                        let frame = gretel_netcap::encode(msg);
                        if tx.send(frame).is_err() {
                            return; // receiver gone
                        }
                    }
                }
                // tx drops here, closing the stream.
            });
        }

        // Event receiver: k-way merge on (ts, id). Each stream is already
        // ordered, so we only compare stream heads.
        let mut seq = 0u64;
        let mut heads: Vec<Option<Message>> = Vec::with_capacity(rxs.len());
        for rx in &rxs {
            heads.push(recv_decode(rx, &mut service_stats));
        }
        loop {
            let mut best: Option<usize> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(m) = h {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let bm = heads[b].as_ref().expect("best is Some");
                            (m.ts_us, m.id) < (bm.ts_us, bm.id)
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let msg = heads[i].take().expect("chosen head is Some");
            heads[i] = recv_decode(&rxs[i], &mut service_stats);
            for job in analyzer.ingest(&msg) {
                job_tx.send((seq, job)).expect("analysis pool alive");
                seq += 1;
            }
        }
        for job in analyzer.finish_jobs() {
            job_tx.send((seq, job)).expect("analysis pool alive");
            seq += 1;
        }
        drop(job_tx); // pool drains and exits

        // Deterministic merge: job order == the order inline analysis
        // would have produced, so sorting by sequence number restores it.
        let mut results: Vec<(u64, Vec<Diagnosis>)> = Vec::with_capacity(seq as usize);
        while let Ok(r) = res_rx.recv() {
            results.push(r);
        }
        results.sort_by_key(|&(s, _)| s);
        for (_, ds) in results {
            diagnoses.extend(ds);
        }
    });

    let analyzer_stats = analyzer.stats();
    (diagnoses, service_stats, analyzer_stats)
}

fn recv_decode(rx: &Receiver<Bytes>, stats: &mut ServiceStats) -> Option<Message> {
    let frame = rx.recv().ok()?;
    stats.frames += 1;
    stats.bytes += frame.len() as u64;
    Some(decode_one(&frame).expect("agent frames decode"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GretelConfig;
    use crate::fingerprint::FingerprintLibrary;
    use gretel_model::{Catalog, HttpMethod, OpSpecId, OperationSpec, Service, Workflows};
    use gretel_sim::{
        ApiFault, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
    };

    #[test]
    fn threaded_pipeline_matches_inline_analysis() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);

        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 2, ..Default::default() })
            .run(&refs);

        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };

        // Inline reference.
        let mut inline = Analyzer::new(&lib, gcfg);
        let expected = crate::analyzer::analyze_stream(&mut inline, exec.messages.iter());

        // Threaded pipeline.
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        let mut threaded = Analyzer::new(&lib, gcfg);
        let (got, svc, astats) = run_service(&mut threaded, &nodes, &exec.messages, 64);

        assert_eq!(got, expected, "threaded pipeline must be semantically identical");
        assert!(svc.frames > 0);
        assert!(svc.bytes > 0);
        // Relevance filter may drop MySQL/NTP traffic; everything relevant
        // is processed exactly once.
        assert!(astats.messages as usize <= exec.messages.len());
        assert_eq!(astats.messages, svc.frames);
    }

    #[test]
    fn sharded_pool_widths_all_match_inline_analysis() {
        // Multiple faults → multiple snapshot jobs in flight; every pool
        // width must reproduce the inline diagnosis sequence exactly.
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);

        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let put_file = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let plan = FaultPlan::none()
            .with_api_fault(ApiFault {
                api: ports_post,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 500, reason: None },
                abort_op: true,
            })
            .with_api_fault(ApiFault {
                api: put_file,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 503, reason: None },
                abort_op: true,
            });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec =
            Runner::new(cat.clone(), &dep, &plan, RunConfig { seed: 6, ..Default::default() })
                .run(&refs);

        let gcfg = GretelConfig { alpha: 48, ..GretelConfig::default() };
        let mut inline = Analyzer::new(&lib, gcfg);
        let expected = crate::analyzer::analyze_stream(&mut inline, exec.messages.iter());
        assert!(expected.len() >= 2, "want several diagnoses, got {}", expected.len());

        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        for workers in [1, 2, 4, 8] {
            let mut threaded = Analyzer::new(&lib, gcfg);
            let (got, _, astats) =
                run_service_sharded(&mut threaded, &nodes, &exec.messages, 32, workers);
            assert_eq!(got, expected, "pool width {workers}");
            assert_eq!(astats, inline.stats(), "pool width {workers}");
        }
    }

    #[test]
    fn empty_traffic_is_fine() {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 1, 1);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 8, ..Default::default() });
        let nodes: Vec<NodeId> = dep.nodes().iter().map(|n| n.id).collect();
        let (diags, svc, _) = run_service(&mut analyzer, &nodes, &[], 4);
        assert!(diags.is_empty());
        assert_eq!(svc.frames, 0);
    }
}

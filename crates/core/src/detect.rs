//! Operation detection (Algorithm 2 + the context buffer of §5.3.1).
//!
//! Given a frozen snapshot and the offending API, GRETEL:
//!
//! 1. pulls the candidate set — operations whose fingerprint contains the
//!    offending API (`GET_POSSIBLE_OFFENDING_OPERATIONS`);
//! 2. truncates each candidate fingerprint at the last occurrence of the
//!    offending API (`TRUNCATE_OPERATION_FINGERPRINTS`) — operational
//!    faults abort the operation, so nothing after the fault is on the
//!    wire;
//! 3. matches candidates against a **context buffer**: a slice of the
//!    snapshot centred on the fault that starts at β₀ = c1·α messages and
//!    grows by δ = c2·α per side. The default policy stops at the
//!    earliest growth step where a substantial pattern completes (see
//!    [`GretelConfig::scored_slack`] and DESIGN.md §7); the paper's
//!    literal stop-on-θ-drop rule is available as an ablation
//!    (`scored_slack: None`), where θ = (N−n)/(N−1);
//! 4. for performance faults the operation completes normally, so the
//!    whole buffer is used and fingerprints are *not* truncated.

use crate::config::{theta, GretelConfig};
use crate::event::Event;
use crate::fingerprint::{CandidatePattern, FingerprintLibrary};
use crate::matcher::PositionIndex;
use crate::window::Snapshot;
use gretel_model::{ApiId, OpSpecId};

/// Result of one operation-detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// Operations the snapshot matched.
    pub matched: Vec<OpSpecId>,
    /// Precision θ = (N − n)/(N − 1).
    pub theta: f64,
    /// Final context-buffer size (messages) used.
    pub beta_used: usize,
    /// Candidate count before snapshot matching — what matching "with API
    /// error" alone would report (the baseline bars of Fig 7b/7c).
    pub candidates: usize,
    /// Pattern literals bridged by degraded-mode matching in the winning
    /// match (maximum over the reported operations). 0 whenever the
    /// capture around the fault was complete — exact matching never
    /// consumes misses.
    pub misses: usize,
}

/// Per-snapshot preprocessing shared by every detection over one frozen
/// snapshot: the noise-filtered API projection, the per-API occurrence
/// index over it, a prefix-count mapping event index → projection
/// position, and the non-noise events grouped by correlation id.
///
/// A snapshot frequently claims *many* error events (every unanalyzed
/// error in the window rides along — §5.3.1). Rebuilding the O(α)
/// projection per error made detection O(errors · α); building this once
/// per snapshot makes each detection sub-linear in the snapshot size.
pub struct SnapshotIndex {
    /// Noise-filtered API projection of the whole snapshot.
    apis: Vec<ApiId>,
    /// Per-API occurrence index over `apis`.
    index: PositionIndex,
    /// `prefix[i]` = number of non-noise events before index `i` — the
    /// projection position an event at `i` maps to.
    prefix: Vec<u32>,
    /// Non-noise event indices grouped by correlation id, in order.
    by_corr: crate::fasthash::FastMap<u64, Vec<u32>>,
    /// Capture-gap spans, aligned with the projection: `gap_prefix[j]` is
    /// the total frames inferred lost before projection position `j`
    /// (including gaps attributed to filtered-out noise events);
    /// `gap_prefix[apis.len()]` is the window total. Empty-projection
    /// windows still get the single-element total.
    gap_prefix: Vec<u32>,
}

impl SnapshotIndex {
    /// One O(snapshot) pass building every shared structure.
    pub fn new(events: &[Event]) -> SnapshotIndex {
        let mut apis = Vec::with_capacity(events.len());
        let mut prefix = Vec::with_capacity(events.len());
        let mut by_corr: crate::fasthash::FastMap<u64, Vec<u32>> = Default::default();
        let mut gap_prefix = Vec::with_capacity(events.len() + 1);
        let mut gap_cum: u32 = 0;
        for (i, e) in events.iter().enumerate() {
            prefix.push(apis.len() as u32);
            gap_cum = gap_cum.saturating_add(e.gap_before);
            if e.noise_api {
                continue;
            }
            gap_prefix.push(gap_cum);
            apis.push(e.api);
            if let Some(c) = e.corr {
                by_corr.entry(c).or_default().push(i as u32);
            }
        }
        gap_prefix.push(gap_cum);
        let index = PositionIndex::new(&apis);
        SnapshotIndex { apis, index, prefix, by_corr, gap_prefix }
    }

    /// The noise-filtered API projection.
    pub fn apis(&self) -> &[ApiId] {
        &self.apis
    }

    /// Non-noise event indices carrying correlation id `corr`, in order.
    pub fn corr_events(&self, corr: u64) -> &[u32] {
        self.by_corr.get(&corr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total frames inferred lost inside the snapshot window.
    pub fn lost_total(&self) -> u32 {
        *self.gap_prefix.last().unwrap_or(&0)
    }

    /// Frames inferred lost up to projection position `upto` — the gaps
    /// preceding symbols `0..=upto`. Saturates at the window total for
    /// out-of-range positions. This bounds how many pattern literals a
    /// capture gap can possibly have swallowed inside the anchored
    /// evidence region, which is what degraded matching uses as its miss
    /// budget.
    pub fn lost_before(&self, upto: usize) -> u32 {
        let j = upto.min(self.gap_prefix.len() - 1);
        self.gap_prefix[j]
    }
}

/// Operation detector bound to a fingerprint library and a configuration.
pub struct Detector<'a> {
    lib: &'a FingerprintLibrary,
    cfg: GretelConfig,
}

impl<'a> Detector<'a> {
    /// New detector.
    pub fn new(lib: &'a FingerprintLibrary, cfg: GretelConfig) -> Detector<'a> {
        Detector { lib, cfg }
    }

    /// The library in use.
    pub fn library(&self) -> &FingerprintLibrary {
        self.lib
    }

    /// The configuration in use.
    pub fn config(&self) -> &GretelConfig {
        &self.cfg
    }

    /// Algorithm 2 for an operational fault: the offending API aborted its
    /// operation. `events` is the frozen snapshot; `fault_index` the
    /// offending message's position within it.
    pub fn detect_operational(
        &self,
        events: &[Event],
        fault_index: usize,
        offending: ApiId,
    ) -> DetectionOutcome {
        let sidx = SnapshotIndex::new(events);
        self.detect_operational_indexed(events, &sidx, fault_index, offending)
    }

    /// [`Self::detect_operational`] against a prebuilt [`SnapshotIndex`] —
    /// the analyzer builds the index once per snapshot and runs every
    /// claimed error through it.
    pub fn detect_operational_indexed(
        &self,
        events: &[Event],
        sidx: &SnapshotIndex,
        fault_index: usize,
        offending: ApiId,
    ) -> DetectionOutcome {
        // All pattern slices come precomputed from the library's pattern
        // cache — nothing is derived (or allocated) per fault.
        let patterns = self.lib.candidate_patterns(offending, self.cfg.truncate);
        let candidates = self.lib.candidates(offending).len();
        let mut out = self.match_with_context(events, sidx, fault_index, &patterns);
        out.candidates = candidates;
        out
    }

    /// Convenience wrapper over a [`Snapshot`].
    pub fn detect_operational_snapshot(
        &self,
        snapshot: &Snapshot,
        offending: ApiId,
    ) -> DetectionOutcome {
        self.detect_operational(&snapshot.events, snapshot.fault_index, offending)
    }

    /// Detection for a performance fault: the operation proceeds to
    /// completion, so fingerprints are *not* truncated and the evidence
    /// extends on both sides of the anomalous API. The pattern is a
    /// bounded literal slice centred on the API (long operations exceed
    /// any finite window), matched over the whole context buffer (§5.3.1
    /// "Improving precision").
    pub fn detect_performance(&self, events: &[Event], offending: ApiId) -> DetectionOutcome {
        let sidx = SnapshotIndex::new(events);
        self.detect_performance_indexed(events, &sidx, offending)
    }

    /// [`Self::detect_performance`] against a prebuilt [`SnapshotIndex`].
    pub fn detect_performance_indexed(
        &self,
        events: &[Event],
        sidx: &SnapshotIndex,
        offending: ApiId,
    ) -> DetectionOutcome {
        let buffer = sidx.apis();
        let index = &sidx.index;
        // Tighter bound than the operational path: the anomaly sits
        // mid-operation and only nearby steps are reliably inside the
        // window. RPC symbols are kept — performance faults frequently
        // *are* RPC latencies (§3.1.2), so pruning would erase the anchor.
        let k = self.cfg.max_literals.map(|k| (k / 2).max(2)).unwrap_or(usize::MAX);
        let candidates = self.lib.candidates(offending);
        let mut matched: Vec<OpSpecId> = candidates
            .iter()
            .filter(|&&op| {
                self.lib
                    .centered_patterns(op, offending, k)
                    .iter()
                    .any(|pattern| index.contains_subsequence(pattern, 0, buffer.len()))
            })
            .copied()
            .collect();
        matched.sort();
        matched.dedup();
        DetectionOutcome {
            theta: theta(matched.len(), self.lib.len()),
            beta_used: events.len(),
            candidates: candidates.len(),
            matched,
            misses: 0,
        }
    }

    /// Apply the `max_literals` bound: keep the most recent `k` literals.
    fn bounded<'p>(&self, lits: &'p [ApiId]) -> &'p [ApiId] {
        match self.cfg.max_literals {
            Some(k) if lits.len() > k => &lits[lits.len() - k..],
            _ => lits,
        }
    }

    fn match_patterns(
        &self,
        patterns: &[CandidatePattern<'_>],
        index: &PositionIndex,
        lo: usize,
        hi: usize,
    ) -> Vec<OpSpecId> {
        let mut matched: Vec<OpSpecId> = if self.cfg.relaxed {
            patterns
                .iter()
                .filter(|p| {
                    index.contains_subsequence(
                        self.bounded(p.literals(self.cfg.prune_rpcs)),
                        lo,
                        hi,
                    )
                })
                .map(|p| p.op)
                .collect()
        } else {
            patterns
                .iter()
                .filter(|p| index.contains_subsequence(p.apis, lo, hi))
                .map(|p| p.op)
                .collect()
        };
        matched.sort();
        matched.dedup();
        matched
    }

    /// The context-buffer growth loop.
    ///
    /// Two policies:
    ///
    /// * `scored_slack = Some(slack)` (default) — **earliest completion
    ///   with a length floor and a grace period**, computed analytically:
    ///   for every candidate pattern the minimal half-width `h*` at which
    ///   its whole literal sequence is present (in order, anchored at the
    ///   fault — operational faults abort, so all evidence precedes the
    ///   fault) is derived by greedy backward matching over per-API
    ///   occurrence indexes. The search "stops" at the first growth step
    ///   where a pattern of at least `min_pattern` literals completes,
    ///   plus `grace_steps` further increments so longer patterns can
    ///   assemble; the longest complete candidates (within `slack`) are
    ///   reported. Equivalent to growing β by δ per side and re-matching,
    ///   but O(patterns · len · log) instead of O(patterns · β · steps).
    /// * `scored_slack = None` — the plain presence predicate driven by
    ///   the paper's stop-on-θ-drop rule (§5.3.1), with `grow_full`
    ///   optionally disabling the early stop (ablation path).
    fn match_with_context(
        &self,
        events: &[Event],
        sidx: &SnapshotIndex,
        fault_index: usize,
        patterns: &[CandidatePattern<'_>],
    ) -> DetectionOutcome {
        // When the deployment propagates correlation ids and the fault
        // message carries one, restrict the buffer to the faulty
        // operation's own messages — the §5.3.1 precision enhancement.
        let corr_filter = if self.cfg.use_correlation_ids {
            events.get(fault_index).and_then(|e| e.corr)
        } else {
            None
        };
        let h0 = (self.cfg.beta0() / 2).max(1);
        let delta = self.cfg.delta();

        // With a correlation-restricted buffer the evidence is exactly the
        // faulty operation's own message sequence, so matching can demand
        // *equality* of literal sequences instead of subsequence presence:
        // only candidates whose truncated fingerprint literals equal the
        // observed literals survive. Far stronger than presence matching —
        // this is precisely the precision gain §5.3.1 predicts.
        if let Some(corr) = corr_filter {
            // The operation's own messages come straight from the
            // snapshot index's corr groups; the fault (non-noise, same
            // corr) is one of them, so its projection position is its rank
            // among them.
            let cps = sidx.corr_events(corr);
            let filtered: Vec<ApiId> = cps.iter().map(|&ei| events[ei as usize].api).collect();
            let center = cps.partition_point(|&ei| (ei as usize) < fault_index);

            let catalog = self.lib.catalog();
            // The operation's own message sequence: collapse request/
            // response pairs (consecutive after the corr restriction) and
            // apply the same idempotent-repeat filter Algorithm 1 applied
            // when the fingerprint was learned, so both sides are in the
            // same normal form. Every symbol is reliable here — there is
            // no interleaving — so starred atoms participate too.
            let raw: Vec<ApiId> = dedup_consecutive(filtered.iter().copied());
            let buf_seq = crate::noise_filter::filter_noise(catalog, &raw);
            let buf_literals: Vec<ApiId> =
                buf_seq.iter().copied().filter(|&a| catalog.get(a).is_state_change()).collect();
            // Two conditions, both exploiting that every buffered symbol
            // genuinely belongs to the faulty operation:
            // 1. the observed state-change sequence is a contiguous
            //    *suffix* of the candidate's truncated literal sequence
            //    (the window holds a contiguous tail of the operation);
            // 2. the observed full sequence — reads included — embeds in
            //    the candidate's truncated atom sequence in order (reads
            //    may shift position due to idempotent-repeat pruning, but
            //    can never be foreign symbols).
            let mut exact: Vec<OpSpecId> = patterns
                .iter()
                .filter(|p| {
                    !buf_literals.is_empty()
                        && p.lits_all.ends_with(&buf_literals)
                        && crate::lcs::is_subsequence(&buf_seq, p.apis)
                })
                .map(|p| p.op)
                .collect();
            exact.sort();
            exact.dedup();
            if !exact.is_empty() {
                return DetectionOutcome {
                    theta: theta(exact.len(), self.lib.len()),
                    beta_used: filtered.len(),
                    candidates: patterns.len(),
                    matched: exact,
                    misses: 0,
                };
            }
            // Normal-form mismatch (e.g. the window clipped mid-pair):
            // fall through to subsequence matching over the (already
            // corr-restricted, and therefore small) buffer, with a local
            // index. The scored path is anchored at the fault, so it only
            // ever consults positions <= center — index exactly those.
            if let Some(slack) = self.cfg.scored_slack {
                let upper = (center + 1).min(filtered.len());
                let index = PositionIndex::new(&filtered[..upper]);
                // Budget with the whole window's losses: the corr
                // restriction hides which positions the gaps fell between.
                let budget = sidx.lost_total() as usize;
                return self
                    .match_scored(&filtered, &index, center, patterns, slack, h0, delta, budget);
            }
            let index = PositionIndex::new(&filtered);
            return self.match_presence(&filtered, &index, center, patterns, h0, delta);
        }

        // No corr restriction: the snapshot-wide projection and occurrence
        // index are shared across every detection in the snapshot. Both
        // query kinds bound their own search range, so the one full index
        // serves the anchored scored path and every presence growth step
        // alike.
        let filtered = sidx.apis();
        let center = sidx.prefix.get(fault_index).map(|&p| p as usize).unwrap_or(0);
        if let Some(slack) = self.cfg.scored_slack {
            // Degraded-mode budget: only losses inside the anchored
            // evidence region (positions up to the fault) can have
            // swallowed pattern literals.
            let budget = sidx.lost_before(center + 1) as usize;
            return self
                .match_scored(filtered, &sidx.index, center, patterns, slack, h0, delta, budget);
        }
        self.match_presence(filtered, &sidx.index, center, patterns, h0, delta)
    }

    /// Presence policy with the paper's θ-drop stop rule (iterative).
    /// Deliberately not gap-widened: this is the ablation path pinned to
    /// the paper's literal semantics, so degraded-mode matching applies to
    /// the scored policy only.
    fn match_presence(
        &self,
        filtered: &[ApiId],
        index: &PositionIndex,
        center: usize,
        patterns: &[CandidatePattern<'_>],
        h0: usize,
        delta: usize,
    ) -> DetectionOutcome {
        let n_events = filtered.len();
        let mut half = h0;
        let mut prev: Option<(Vec<OpSpecId>, usize)> = None;
        loop {
            let lo = center.saturating_sub(half);
            let hi = (center + half + 1).min(n_events);
            let beta_used = hi - lo;
            let covered = lo == 0 && hi == n_events;
            let matched = self.match_patterns(patterns, index, lo, hi);
            if !self.cfg.grow_full {
                if let Some((prev_matched, prev_beta)) = &prev {
                    if !prev_matched.is_empty() && matched.len() > prev_matched.len() {
                        return DetectionOutcome {
                            theta: theta(prev_matched.len(), self.lib.len()),
                            beta_used: *prev_beta,
                            candidates: patterns.len(),
                            matched: prev_matched.clone(),
                            misses: 0,
                        };
                    }
                }
            }
            if covered {
                return DetectionOutcome {
                    theta: theta(matched.len(), self.lib.len()),
                    beta_used,
                    candidates: patterns.len(),
                    matched,
                    misses: 0,
                };
            }
            prev = Some((matched, beta_used));
            half += delta;
        }
    }

    /// Analytic earliest-complete scoring (see [`Self::match_with_context`]).
    ///
    /// `miss_budget` is the degraded-mode widening: when the snapshot
    /// window spans capture gaps, a candidate whose literal sequence never
    /// completes exactly may still match by skipping up to that many
    /// literals (bounded per pattern at `len − 1` so at least one literal
    /// is real evidence). Exact completions are always preferred — a
    /// pattern is only retried with misses after exact matching fails, its
    /// effective length is discounted by the misses, and with
    /// `miss_budget == 0` (complete capture) this function is byte-for-
    /// byte the exact scorer.
    #[allow(clippy::too_many_arguments)]
    fn match_scored(
        &self,
        filtered: &[ApiId],
        index: &PositionIndex,
        center: usize,
        patterns: &[CandidatePattern<'_>],
        slack: usize,
        h0: usize,
        delta: usize,
        miss_budget: usize,
    ) -> DetectionOutcome {
        // Anchored at the fault: only positions <= center count as
        // evidence (operational faults abort, so nothing after the fault
        // belongs to the faulty operation).
        let upper = (center + 1).min(filtered.len());

        let mut long: Vec<(usize, usize, OpSpecId, usize)> = Vec::new(); // (h*, eff_len, op, misses)
        let mut short: Vec<(usize, OpSpecId, usize)> = Vec::new();
        for p in patterns {
            let pattern = self.bounded(p.literals(self.cfg.prune_rpcs));
            if pattern.is_empty() {
                continue;
            }
            // Greedy backward match: the minimal past half-width at which
            // the pattern is fully present, or None when it never
            // completes. Degraded mode retries with the miss budget only
            // after the exact match fails.
            let hit = index
                .min_anchored_half(pattern, center, upper)
                .map(|h| (h, 0usize))
                .or_else(|| {
                    if miss_budget == 0 {
                        return None;
                    }
                    let budget = miss_budget.min(pattern.len() - 1);
                    index.min_anchored_half_with_misses(pattern, center, upper, budget)
                });
            if let Some((h, misses)) = hit {
                // A bridged literal is absent evidence: score the pattern
                // by what was actually observed.
                let eff_len = pattern.len() - misses;
                if eff_len >= self.cfg.min_pattern {
                    long.push((h, eff_len, p.op, misses));
                } else {
                    short.push((h, p.op, misses));
                }
            }
        }

        if let Some(&(h_min, _, _, _)) = long.iter().min_by_key(|&&(h, _, _, _)| h) {
            // First growth step reaching h_min, plus the grace period.
            let k_first = h_min.saturating_sub(h0).div_ceil(delta.max(1));
            let h_stop = (h0 + (k_first + self.cfg.grace_steps) * delta).min(center.max(h0));
            let eligible: Vec<(usize, OpSpecId, usize)> = long
                .iter()
                .filter(|&&(h, _, _, _)| h <= h_stop)
                .map(|&(_, l, op, m)| (l, op, m))
                .collect();
            let max_len = eligible.iter().map(|&(l, _, _)| l).max().unwrap_or(0);
            let selected: Vec<(OpSpecId, usize)> = eligible
                .into_iter()
                .filter(|&(l, _, _)| l + slack >= max_len)
                .map(|(_, op, m)| (op, m))
                .collect();
            let (matched, misses) = collapse_by_op(selected);
            return DetectionOutcome {
                theta: theta(matched.len(), self.lib.len()),
                beta_used: (2 * h_stop + 1).min(filtered.len()),
                candidates: patterns.len(),
                matched,
                misses,
            };
        }

        // Nothing substantial ever completed: fall back to the trivially
        // complete candidates (ops for which the offending API is their
        // opening state change).
        let (matched, misses) = collapse_by_op(short.into_iter().map(|(_, op, m)| (op, m)).collect());
        DetectionOutcome {
            theta: theta(matched.len(), self.lib.len()),
            beta_used: filtered.len(),
            candidates: patterns.len(),
            matched,
            misses,
        }
    }
}

/// Deduplicate `(op, misses)` pairs by operation, keeping each operation's
/// cheapest match, and report the maximum misses any surviving operation
/// needed (how far degraded matching had to stretch).
fn collapse_by_op(mut pairs: Vec<(OpSpecId, usize)>) -> (Vec<OpSpecId>, usize) {
    pairs.sort();
    let mut matched: Vec<OpSpecId> = Vec::with_capacity(pairs.len());
    let mut worst = 0usize;
    for (op, m) in pairs {
        if matched.last() == Some(&op) {
            continue; // sorted: the kept entry has the smaller miss count
        }
        matched.push(op);
        worst = worst.max(m);
    }
    (matched, worst)
}

/// Collapse consecutive duplicate symbols (a serial operation's REST
/// request/response pairs and RPC call/reply pairs are adjacent in its
/// correlation-restricted stream).
// Deliberately NOT pre-reserved: the input is the corr-restricted stream
// (typically dozens of symbols) but the filter's size hint is the whole
// window — reserving the upper bound would allocate α-sized buffers per
// fault.
fn dedup_consecutive(iter: impl Iterator<Item = ApiId>) -> Vec<ApiId> {
    let mut out: Vec<ApiId> = Vec::new();
    for api in iter {
        if out.last() != Some(&api) {
            out.push(api);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultMark;
    use crate::fingerprint::FingerprintLibrary;
    use gretel_model::{Catalog, Direction, HttpMethod, MessageId, NodeId, Service, Workflows};
    use gretel_sim::Deployment;
    use std::sync::Arc;

    fn event(id: u64, api: ApiId, state_change: bool, is_rpc: bool) -> Event {
        Event {
            id: MessageId(id),
            ts: id,
            api,
            direction: Direction::Request,
            is_rpc,
            state_change,
            noise_api: false,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        }
    }

    fn library() -> (Arc<Catalog>, FingerprintLibrary) {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let specs = vec![
            wf.vm_create_spec(gretel_model::OpSpecId(0)),
            wf.image_upload_spec(gretel_model::OpSpecId(1)),
            wf.cinder_list_spec(gretel_model::OpSpecId(2)),
        ];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 17);
        (cat, lib)
    }

    fn snapshot_from(events: Vec<Event>, fault_index: usize) -> Snapshot {
        Snapshot { fault: events[fault_index], events, fault_index }
    }

    #[test]
    fn detects_vm_create_from_ports_fault() {
        let (cat, lib) = library();
        let detector = Detector::new(&lib, GretelConfig { alpha: 16, ..Default::default() });
        let spec_events: Vec<Event> = lib
            .get(gretel_model::OpSpecId(0))
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                event(i as u64, a.api, cat.get(a.api).is_state_change(), cat.get(a.api).is_rpc())
            })
            .collect();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let fault_index =
            spec_events.iter().position(|e| e.api == ports_post).expect("ports step present");
        // Operation aborted at the fault: nothing after it on the wire.
        let events: Vec<Event> = spec_events[..=fault_index].to_vec();
        let snap = snapshot_from(events, fault_index);

        let out = detector.detect_operational_snapshot(&snap, ports_post);
        assert_eq!(out.matched, vec![gretel_model::OpSpecId(0)]);
        assert!((out.theta - 1.0).abs() < 1e-9);
        assert!(out.candidates >= 1);
    }

    #[test]
    fn unrelated_operation_does_not_match() {
        let (cat, lib) = library();
        let detector = Detector::new(&lib, GretelConfig { alpha: 16, ..Default::default() });
        // Buffer holds only the image-upload sequence; fault on its PUT.
        let put_file = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let fp = lib.get(gretel_model::OpSpecId(1));
        let events: Vec<Event> = fp
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                event(i as u64, a.api, cat.get(a.api).is_state_change(), cat.get(a.api).is_rpc())
            })
            .collect();
        let fault_index = events.iter().position(|e| e.api == put_file).unwrap();
        let snap = snapshot_from(events[..=fault_index].to_vec(), fault_index);
        let out = detector.detect_operational_snapshot(&snap, put_file);
        assert_eq!(out.matched, vec![gretel_model::OpSpecId(1)]);
        // VM create is not even a candidate for the Glance PUT.
        assert!(!out.matched.contains(&gretel_model::OpSpecId(0)));
    }

    #[test]
    fn gap_marker_enables_degraded_matching_across_a_hole() {
        let (cat, lib) = library();
        // Keep RPC literals and drop the length floor: the vm-create
        // fingerprint's only unique mid-stream required literals are RPCs.
        let cfg = GretelConfig {
            alpha: 16,
            prune_rpcs: false,
            max_literals: None,
            min_pattern: 3,
            ..Default::default()
        };
        let detector = Detector::new(&lib, cfg);
        let fp = lib.get(gretel_model::OpSpecId(0));
        let spec_events: Vec<Event> = fp
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                event(i as u64, a.api, cat.get(a.api).is_state_change(), cat.get(a.api).is_rpc())
            })
            .collect();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let fault_index = spec_events.iter().position(|e| e.api == ports_post).unwrap();
        let mut events: Vec<Event> = spec_events[..=fault_index].to_vec();
        // Simulate a lost frame: remove a mid-stream *required* literal
        // (non-starred — starred atoms may be absent anyway) that occurs
        // exactly once in the fingerprint.
        let once =
            |api: gretel_model::ApiId| fp.atoms.iter().filter(|a| a.api == api).count() == 1;
        let hole = (1..fault_index)
            .rev()
            .find(|&i| !fp.atoms[i].starred && once(events[i].api))
            .expect("unique required literal");
        events.remove(hole);
        let fault_index = fault_index - 1;

        // Without a gap marker there is no miss budget: the truncated
        // fingerprint cannot be present and the match fails.
        let snap = snapshot_from(events.clone(), fault_index);
        let out = detector.detect_operational_snapshot(&snap, ports_post);
        assert!(out.matched.is_empty(), "no marker, no widening: {:?}", out.matched);
        assert_eq!(out.misses, 0);

        // The receiver noticed the loss: the event after the hole carries a
        // gap marker, funding one miss — degraded matching bridges it.
        events[hole].gap_before = 1;
        let snap = snapshot_from(events, fault_index);
        let out = detector.detect_operational_snapshot(&snap, ports_post);
        assert_eq!(out.matched, vec![gretel_model::OpSpecId(0)]);
        assert!(out.misses >= 1, "bridged the hole: misses={}", out.misses);
    }

    #[test]
    fn truncation_is_required_for_aborted_operations() {
        let (cat, lib) = library();
        // Without truncation, the full fingerprint (with steps after the
        // fault) cannot be present in an aborted trace.
        let cfg_no_trunc = GretelConfig { alpha: 16, truncate: false, ..Default::default() };
        let detector = Detector::new(&lib, cfg_no_trunc);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let fp = lib.get(gretel_model::OpSpecId(0));
        let events: Vec<Event> = fp
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                event(i as u64, a.api, cat.get(a.api).is_state_change(), cat.get(a.api).is_rpc())
            })
            .collect();
        let fault_index = events.iter().position(|e| e.api == ports_post).unwrap();
        let truncated_events = events[..=fault_index].to_vec();
        let snap = snapshot_from(truncated_events, fault_index);
        let out = detector.detect_operational_snapshot(&snap, ports_post);
        // The PUT attach after the fault never happened, so the
        // untruncated literal sequence is absent.
        assert!(out.matched.is_empty(), "ablation: no truncation → false negative");
    }

    #[test]
    fn performance_detection_uses_full_fingerprints() {
        let (cat, lib) = library();
        let detector = Detector::new(&lib, GretelConfig { alpha: 32, ..Default::default() });
        // Full successful vm-create trace; perf fault on the image GET.
        let fp = lib.get(gretel_model::OpSpecId(0));
        let events: Vec<Event> = fp
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                event(i as u64, a.api, cat.get(a.api).is_state_change(), cat.get(a.api).is_rpc())
            })
            .collect();
        let image_get = cat.rest_expect(Service::Glance, HttpMethod::Get, "/v2/images/{id}");
        let fault_index = events.iter().position(|e| e.api == image_get).unwrap();
        let snap = snapshot_from(events, fault_index);
        let out = detector.detect_performance(&snap.events, image_get);
        assert!(out.matched.contains(&gretel_model::OpSpecId(0)));
    }

    #[test]
    fn noise_events_are_excluded_from_buffers() {
        let (cat, lib) = library();
        let detector = Detector::new(&lib, GretelConfig { alpha: 16, ..Default::default() });
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let fp = lib.get(gretel_model::OpSpecId(0));
        let mut events: Vec<Event> = Vec::new();
        let noise_api = cat.noise_apis()[0];
        for (i, a) in fp.atoms.iter().enumerate() {
            // Interleave noise everywhere.
            let mut n = event(1000 + i as u64, noise_api, false, true);
            n.noise_api = true;
            events.push(n);
            events.push(event(
                i as u64,
                a.api,
                cat.get(a.api).is_state_change(),
                cat.get(a.api).is_rpc(),
            ));
        }
        let fault_index = events.iter().position(|e| e.api == ports_post).unwrap();
        let snap = snapshot_from(events[..=fault_index].to_vec(), fault_index);
        let out = detector.detect_operational_snapshot(&snap, ports_post);
        assert_eq!(out.matched, vec![gretel_model::OpSpecId(0)]);
    }

    #[test]
    fn candidates_counts_api_error_baseline() {
        let (cat, lib) = library();
        let detector = Detector::new(&lib, GretelConfig { alpha: 16, ..Default::default() });
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let fault = event(0, ports_post, true, false);
        let snap = snapshot_from(vec![fault], 0);
        let out = detector.detect_operational_snapshot(&snap, ports_post);
        assert_eq!(out.candidates, lib.candidates(ports_post).len());
    }
}

//! # gretel-core — the GRETEL fault localization system
//!
//! A from-scratch Rust implementation of GRETEL (CoNEXT '16): lightweight
//! fault localization for OpenStack using operational fingerprints learned
//! from integration tests and passively captured REST/RPC traffic.
//!
//! Pipeline (paper Fig 3):
//!
//! * offline: [`fingerprint`] learns one fingerprint per operation
//!   (Algorithm 1 — noise filtering via [`noise_filter`], trace
//!   intersection via [`lcs`]);
//! * online: [`analyzer`] scans payload bytes for errors ([`anomaly`]),
//!   pairs latencies and feeds level-shift detectors ([`perf`]), keeps the
//!   dual-buffer sliding window ([`window`]), detects the faulty operation
//!   (Algorithm 2 — [`detect`] + [`matcher`]) and runs root cause
//!   analysis (Algorithm 3 — [`rca`]);
//! * [`config`] holds the paper's thresholds (α, β, δ, c1, c2) and the
//!   precision metric θ; [`report`] renders diagnoses.
//!
//! The stage-by-stage walkthrough of how these modules compose into the
//! deployed pipeline lives in `ARCHITECTURE.md` at the repository root.
//!
//! # Example
//!
//! Scan a captured message for an error signature without running the
//! full analyzer:
//!
//! ```
//! use gretel_core::scan_rest_error;
//!
//! assert_eq!(scan_rest_error(b"HTTP/1.1 503 Service Unavailable"), Some(503));
//! assert_eq!(scan_rest_error(b"HTTP/1.1 200 OK"), None);
//! ```

#![deny(missing_docs)]

pub mod analyzer;
pub mod anomaly;
pub mod checkpoint;
pub mod config;
pub mod detect;
pub mod event;
pub mod explain;
pub mod fasthash;
pub mod fingerprint;
pub mod graph;
pub mod lcs;
pub mod matcher;
pub mod noise_filter;
pub mod perf;
pub mod rca;
pub mod recover;
pub mod report;
pub mod selfwatch;
pub mod service;
pub mod shard;
pub mod window;

pub use analyzer::{
    analyze_stream, Analyzer, AnalyzerStats, JobBudget, RcaContext, SnapshotAnalyzer, SnapshotJob,
};
pub use anomaly::{scan_message, scan_rest_error, scan_rpc_error, LatencyObs, LatencyPairer};
pub use checkpoint::{CheckpointError, Journal};
pub use config::{theta, GretelConfig};
pub use detect::{DetectionOutcome, Detector, SnapshotIndex};
pub use event::{Event, FaultMark};
pub use explain::{LiteralMatch, MatchExplanation};
pub use fasthash::{FastMap, FastSet};
pub use fingerprint::{
    generate_fingerprint, trace_of, Atom, CandidatePattern, CharacterizationStats, Fingerprint,
    FingerprintLibrary,
};
pub use graph::{attribute_cascades, Attribution, CascadeParams, EdgeStats, EvidenceHop, ServiceGraph};
pub use matcher::PositionIndex;
pub use perf::{PerfFault, PerfMonitor};
pub use rca::{CauseKind, RcaEngine, RootCause};
pub use recover::{
    run_service_durable, run_service_recoverable, AnalyzerChaos, DurableConfig, DurableOutcome,
    LibraryReload, RecoveryConfig, RecoveryStats, KIND_CHECKPOINT, KIND_DIAGNOSES, KIND_LIBRARY,
};
pub use report::{CaptureConfidence, Diagnosis, FaultKind};
pub use selfwatch::{self_watch_api, self_watch_stage, SelfWatch, SELF_WATCH_API_BASE};
#[allow(deprecated)] // re-exported so downstream deprecation warnings point here
pub use service::run_service_sharded;
pub use service::{
    resolve_shard_workers, run_service, run_service_cfg, run_service_checked, BackpressurePolicy,
    ServiceConfig, ServiceError, ServiceStats,
};
pub use shard::{
    canonical_order, encode_diagnoses, run_sharded, run_sharded_durable, ShardReport,
    ShardedConfig, ShardedOutcome,
};
pub use window::{SlidingWindow, Snapshot};

/// The durable state store the recoverable service persists to — see
/// [`store::Store`], [`store::MemStore`] and [`store::FileStore`].
pub use gretel_store as store;
